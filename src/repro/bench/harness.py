"""Experiment harness: runs algorithms, collects rows, renders tables.

Every table and figure of the paper has one experiment function that
returns :class:`ExperimentResult` objects — the same rows/series the
paper plots, regenerated on the analog datasets.  ``python -m repro.bench
<exp-id>`` renders them; the pytest-benchmark wrappers in ``benchmarks/``
run reduced versions and assert the qualitative shapes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence, Tuple

from repro.baselines import pscan, scan, scan_b, scanpp
from repro.core import AnySCAN, AnyScanConfig
from repro.errors import ExperimentError
from repro.graph.csr import Graph
from repro.result import Clustering
from repro.similarity.weighted import SimilarityConfig, SimilarityOracle
from repro.validation import check_eps_mu

__all__ = [
    "ExperimentResult",
    "AlgorithmRun",
    "run_algorithm",
    "ALGORITHMS",
]


@dataclass
class ExperimentResult:
    """One printable table (≈ one panel of a figure)."""

    exp_id: str
    title: str
    headers: Sequence[str]
    rows: List[Tuple] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *values) -> None:
        self.rows.append(tuple(values))

    def render(self) -> str:
        """Fixed-width text table."""
        columns = [str(h) for h in self.headers]
        formatted = [
            [_fmt(value) for value in row] for row in self.rows
        ]
        widths = [
            max(len(columns[i]), *(len(r[i]) for r in formatted), 1)
            if formatted
            else len(columns[i])
            for i in range(len(columns))
        ]
        lines = [f"== {self.exp_id}: {self.title} =="]
        lines.append(
            "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
        )
        lines.append("  ".join("-" * w for w in widths))
        for row in formatted:
            lines.append(
                "  ".join(row[i].ljust(widths[i]) for i in range(len(row)))
            )
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def column(self, name: str) -> List:
        """Values of one column by header name."""
        try:
            idx = list(self.headers).index(name)
        except ValueError as exc:
            raise ExperimentError(
                f"no column {name!r} in experiment {self.exp_id}"
            ) from exc
        return [row[idx] for row in self.rows]


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    if isinstance(value, int):
        return f"{value:,d}"
    return str(value)


# ----------------------------------------------------------------------
# uniform algorithm drivers
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AlgorithmRun:
    """Outcome of one algorithm on one graph/parameter combination."""

    name: str
    clustering: Clustering
    seconds: float
    work_units: float
    sigma_evaluations: int
    extra: Dict[str, float] = field(default_factory=dict)


def _run_scan(graph: Graph, mu: int, eps: float, seed: int) -> AlgorithmRun:
    oracle = SimilarityOracle(graph, SimilarityConfig(pruning=False))
    started = time.perf_counter()
    result = scan(graph, mu, eps, oracle=oracle, seed=seed)
    elapsed = time.perf_counter() - started
    c = oracle.counters
    return AlgorithmRun(
        "SCAN", result, elapsed, c.work_units, c.sigma_evaluations
    )


def _run_scan_b(graph: Graph, mu: int, eps: float, seed: int) -> AlgorithmRun:
    oracle = SimilarityOracle(graph, SimilarityConfig(pruning=True))
    started = time.perf_counter()
    result = scan_b(graph, mu, eps, oracle=oracle, seed=seed)
    elapsed = time.perf_counter() - started
    c = oracle.counters
    return AlgorithmRun(
        "SCAN-B", result, elapsed, c.work_units, c.sigma_evaluations,
        extra={"pruned": float(c.pruned_lemma5)},
    )


def _run_pscan(graph: Graph, mu: int, eps: float, seed: int) -> AlgorithmRun:
    oracle = SimilarityOracle(graph, SimilarityConfig(pruning=True))
    stats: Dict[str, int] = {}
    started = time.perf_counter()
    result = pscan(graph, mu, eps, oracle=oracle, stats=stats)
    elapsed = time.perf_counter() - started
    c = oracle.counters
    return AlgorithmRun(
        "pSCAN", result, elapsed, c.work_units, c.sigma_evaluations,
        extra={k: float(v) for k, v in stats.items()},
    )


def _run_scanpp(graph: Graph, mu: int, eps: float, seed: int) -> AlgorithmRun:
    oracle = SimilarityOracle(graph, SimilarityConfig(pruning=False))
    stats: Dict[str, float] = {}
    started = time.perf_counter()
    result = scanpp(graph, mu, eps, oracle=oracle, seed=seed, stats=stats)
    elapsed = time.perf_counter() - started
    c = oracle.counters
    return AlgorithmRun(
        "SCAN++", result, elapsed, c.work_units, c.sigma_evaluations,
        extra=dict(stats),
    )


def _run_anyscan(graph: Graph, mu: int, eps: float, seed: int) -> AlgorithmRun:
    # Block size ~|V|/10, mirroring the paper's α=8192 on million-vertex
    # graphs; a block covering the whole graph would defeat Step 1's
    # savings (every vertex would be range-queried before any is claimed).
    block = max(min(2048, graph.num_vertices // 10), 64)
    config = AnyScanConfig(
        mu=mu, epsilon=eps, seed=seed, record_costs=False,
        alpha=block, beta=block,
    )
    algo = AnySCAN(graph, config)
    started = time.perf_counter()
    result = algo.run()
    elapsed = time.perf_counter() - started
    c = algo.oracle.counters
    stats = algo.statistics()
    return AlgorithmRun(
        "anySCAN", result, elapsed, c.work_units, c.sigma_evaluations,
        extra={
            "supernodes": float(stats["num_supernodes"]),
            "unions": float(stats["union_calls"]),
        },
    )


#: Uniform drivers keyed by display name (the paper's Figure 5/6 lineup).
ALGORITHMS: Dict[str, Callable[[Graph, int, float, int], AlgorithmRun]] = {
    "SCAN": _run_scan,
    "SCAN-B": _run_scan_b,
    "SCAN++": _run_scanpp,
    "pSCAN": _run_pscan,
    "anySCAN": _run_anyscan,
}


def run_algorithm(
    name: str, graph: Graph, mu: int, epsilon: float, *, seed: int = 0
) -> AlgorithmRun:
    """Run one of the registered algorithms with uniform instrumentation."""
    check_eps_mu(mu=mu, epsilon=epsilon)
    driver = ALGORITHMS.get(name)
    if driver is None:
        raise ExperimentError(
            f"unknown algorithm {name!r}; available: {sorted(ALGORITHMS)}"
        )
    return driver(graph, mu, epsilon, seed)
