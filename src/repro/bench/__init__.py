"""Benchmark harness: datasets, experiment registry, table rendering."""

from repro.bench.datasets import DATASETS, dataset_names, load_dataset
from repro.bench.experiments import EXPERIMENTS, run_experiment
from repro.bench.harness import ALGORITHMS, AlgorithmRun, ExperimentResult, run_algorithm

__all__ = [
    "DATASETS",
    "load_dataset",
    "dataset_names",
    "EXPERIMENTS",
    "run_experiment",
    "ExperimentResult",
    "AlgorithmRun",
    "ALGORITHMS",
    "run_algorithm",
]
