"""Batched σ-kernel throughput and the interactive re-clustering payoff.

Two claims back the kernel/index layers (DESIGN.md):

1. **Throughput** — computing σ for a batch of pairs through the
   segmented CSR kernels (:mod:`repro.similarity.kernels`) is ≥5× faster
   than the per-pair scalar path on a bench-scale LFR graph, because the
   sorted-merge intersections collapse into a handful of whole-array
   numpy passes.
2. **Interactivity** — once an :class:`~repro.similarity.index.EdgeSimilarityIndex`
   holds σ for every edge, a second (ε, μ) clustering query performs
   (near) zero σ evaluations: the σ phase becomes a comparison against a
   stored array.

Besides the usual tables, the experiment writes ``BENCH_kernels.json``
(to ``$REPRO_BENCH_DIR`` or the working directory) so CI can archive the
measured numbers per commit.
"""

from __future__ import annotations

import json
import os
import time
from typing import List

import numpy as np

from repro.bench.harness import ExperimentResult
from repro.core.backend_scan import parallel_scan
from repro.graph.csr import Graph
from repro.graph.generators.lfr import LFRParams, lfr_graph
from repro.similarity.index import EdgeSimilarityIndex, IndexedOracle
from repro.similarity.weighted import SimilarityConfig, SimilarityOracle

__all__ = ["kernels"]

_EPS_FIRST, _MU_FIRST = 0.5, 4
_EPS_SECOND, _MU_SECOND = 0.65, 3


def _bench_graph(quick: bool) -> Graph:
    if quick:
        params = LFRParams(n=350, average_degree=8, max_degree=30, seed=3)
    else:
        # ≥10k vertices: the acceptance bar for the ≥5x throughput claim.
        params = LFRParams(n=12_000, average_degree=14, max_degree=80, seed=3)
    graph, _ = lfr_graph(params)
    return graph


def _forward_pairs(graph: Graph) -> tuple[np.ndarray, np.ndarray]:
    owners = np.repeat(
        np.arange(graph.num_vertices, dtype=np.int64),
        np.diff(graph.indptr),
    )
    mask = owners < graph.indices
    return owners[mask], graph.indices[mask].astype(np.int64, copy=False)


def _time(fn) -> tuple[float, object]:
    started = time.perf_counter()
    out = fn()
    return time.perf_counter() - started, out


def _best_of(fn, repeats: int = 3) -> tuple[float, object]:
    """Best-of-N timing: discards first-call page-fault/allocator costs."""
    best, out = _time(fn)
    for _ in range(repeats - 1):
        elapsed, out = _time(fn)
        best = min(best, elapsed)
    return best, out


def kernels(scale: str = "bench", quick: bool = False) -> List[ExperimentResult]:
    """σ-kernel throughput + index-backed re-clustering, with JSON output."""
    graph = _bench_graph(quick)
    config = SimilarityConfig(pruning=False)
    us, vs = _forward_pairs(graph)
    npairs = us.shape[0]

    # -- throughput: scalar loop vs batched kernel vs index lookup ------
    scalar_oracle = SimilarityOracle(graph, config)
    scalar_s, scalar_vals = _time(
        lambda: np.asarray(
            [
                scalar_oracle.sigma_unrecorded(int(u), int(v))
                for u, v in zip(us, vs)
            ],
            dtype=np.float64,
        )
    )
    batch_oracle = SimilarityOracle(graph, config)
    batch_oracle.edge_keys  # isolate the probe-structure build from timing
    batched_s, batched_vals = _best_of(
        lambda: batch_oracle.sigma_pairs_unrecorded(us, vs)
    )
    if not np.allclose(scalar_vals, batched_vals, atol=1e-12):
        raise AssertionError("batched kernel disagrees with scalar sigma")

    build_s, index = _time(lambda: EdgeSimilarityIndex.build(graph, config))
    lookup_s, looked = _best_of(lambda: index.lookup(us, vs)[0])
    if not np.allclose(looked, batched_vals, atol=1e-12):
        raise AssertionError("index lookup disagrees with batched sigma")

    speedup = scalar_s / batched_s if batched_s > 0 else float("inf")
    throughput = ExperimentResult(
        exp_id="kernels",
        title=(
            f"sigma-kernel throughput (n={graph.num_vertices:,}, "
            f"m={graph.num_edges:,}, {npairs:,} forward edges)"
        ),
        headers=["path", "seconds", "pairs/s", "speedup vs scalar"],
    )
    throughput.add_row("scalar per-pair", scalar_s, npairs / scalar_s, 1.0)
    throughput.add_row(
        "batched kernel", batched_s, npairs / batched_s, speedup
    )
    throughput.add_row(
        "index lookup",
        lookup_s,
        npairs / lookup_s if lookup_s > 0 else float("inf"),
        scalar_s / lookup_s if lookup_s > 0 else float("inf"),
    )
    throughput.notes.append(
        f"index build (all {graph.indices.shape[0]:,} directed slots): "
        f"{build_s:.3f}s"
    )
    if not quick:
        throughput.notes.append(
            "acceptance: batched speedup >= 5x on this >=10k-vertex LFR graph"
        )

    # -- interactivity: second (eps, mu) query answers from the index ---
    first_oracle = SimilarityOracle(graph, config)
    first_s, first_result = _time(
        lambda: parallel_scan(
            graph,
            _MU_FIRST,
            _EPS_FIRST,
            backend="thread",
            workers=1,
            config=config,
        )
    )
    # The no-index cost of the σ phase: one full pass of range queries.
    for v in range(graph.num_vertices):
        first_oracle.eps_neighborhood(v, _EPS_FIRST)
    first_evals = first_oracle.counters.sigma_evaluations

    indexed = IndexedOracle(index, config=config)
    second_s, second_result = _time(
        lambda: parallel_scan(
            graph, _MU_SECOND, _EPS_SECOND, index=index, config=config
        )
    )
    # Replay the second query's σ phase through the counting oracle.
    for v in range(graph.num_vertices):
        indexed.eps_neighborhood(v, _EPS_SECOND)
    second_evals = indexed.counters.sigma_evaluations

    interactive = ExperimentResult(
        exp_id="kernels",
        title="interactive re-clustering: sigma evaluations per query",
        headers=["query", "sigma evals", "seconds", "clusters"],
    )
    interactive.add_row(
        f"first (eps={_EPS_FIRST}, mu={_MU_FIRST}), no index",
        first_evals,
        first_s,
        first_result.num_clusters,
    )
    interactive.add_row(
        f"second (eps={_EPS_SECOND}, mu={_MU_SECOND}), via index",
        second_evals,
        second_s,
        second_result.num_clusters,
    )
    interactive.notes.append(
        "acceptance: the indexed query performs (near) zero sigma "
        "evaluations — re-clustering is a threshold pass over stored sigma"
    )

    payload = {
        "quick": bool(quick),
        "graph": {
            "n": int(graph.num_vertices),
            "m": int(graph.num_edges),
            "forward_pairs": int(npairs),
        },
        "scalar_pairs_per_s": npairs / scalar_s,
        "batched_pairs_per_s": npairs / batched_s,
        "speedup": speedup,
        "index_build_s": build_s,
        "index_lookup_s": lookup_s,
        "first_query_sigma_evals": int(first_evals),
        "second_query_sigma_evals": int(second_evals),
        "first_query_s": first_s,
        "second_query_s": second_s,
    }
    out_dir = os.environ.get("REPRO_BENCH_DIR", ".")
    out_path = os.path.join(out_dir, "BENCH_kernels.json")
    with open(out_path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    throughput.notes.append(f"json written to {out_path}")

    return [throughput, interactive]
