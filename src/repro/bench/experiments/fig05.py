"""Figure 5: anytime NMI/runtime curves of anySCAN vs. batch baselines.

For each dataset and ε ∈ {0.5, 0.6}: trace anySCAN's NMI against SCAN's
final result over its anytime iterations, and report every batch
algorithm's final cost as the horizontal reference lines the paper draws.
"""

from __future__ import annotations

from typing import List

from repro.anytime import AnytimeRunner
from repro.bench.datasets import load_dataset
from repro.bench.harness import ALGORITHMS, ExperimentResult, run_algorithm
from repro.core import AnySCAN, AnyScanConfig

__all__ = ["fig5"]

_DATASETS = ["GR01", "GR02", "GR03", "GR04"]
_EPSILONS = [0.5, 0.6]
_MU = 5


def fig5(scale: str = "bench", quick: bool = False) -> List[ExperimentResult]:
    datasets = _DATASETS[:2] if quick else _DATASETS
    epsilons = _EPSILONS[:1] if quick else _EPSILONS
    results: List[ExperimentResult] = []
    for name in datasets:
        graph = load_dataset(name, "tiny" if quick else scale)
        for eps in epsilons:
            results.append(_trace_one(graph, name, eps, quick))
    return results


def _trace_one(graph, name: str, eps: float, quick: bool) -> ExperimentResult:
    result = ExperimentResult(
        exp_id="fig5",
        title=f"anytime NMI curve, {name}, μ={_MU}, ε={eps}",
        headers=["iteration", "step", "work-units", "seconds", "NMI"],
    )
    reference = run_algorithm("SCAN", graph, _MU, eps)
    alpha = beta = max(graph.num_vertices // 12, 64)
    algo = AnySCAN(
        graph,
        AnyScanConfig(
            mu=_MU, epsilon=eps, alpha=alpha, beta=beta, record_costs=False
        ),
    )
    runner = AnytimeRunner(algo)
    trace = runner.trace_against(reference.clustering.labels)
    for point in trace:
        result.add_row(
            point.iteration,
            point.step,
            point.work_units,
            point.wall_time,
            point.quality,
        )
    # The batch baselines as horizontal lines (their total cost + NMI=1).
    for alg in ALGORITHMS:
        if alg == "anySCAN":
            continue
        run = run_algorithm(alg, graph, _MU, eps)
        result.notes.append(
            f"batch {alg}: work={run.work_units:,.0f}, "
            f"seconds={run.seconds:.2f}, σ-evals={run.sigma_evaluations:,d}"
        )
    half = trace.first_reaching(0.5)
    if half is not None:
        final_work = trace.total_work
        result.notes.append(
            f"NMI≥0.5 reached after {half.work_units:,.0f} work units "
            f"({100 * half.work_units / max(final_work, 1):.1f}% of the run)"
        )
    return result
