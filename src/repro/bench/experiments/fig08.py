"""Figure 8: effect of μ, ε (anytime quality) and block sizes α=β (cost).

Left panels: anytime NMI after a fixed work budget for different μ and ε
on GR01 — lower μ and lower ε reach good approximations earlier.  Right
panel: the final total cost as α=β sweeps over {256, 2048, 8192}.
"""

from __future__ import annotations

from typing import List

from repro.anytime import AnytimeRunner
from repro.bench.datasets import load_dataset
from repro.bench.harness import ExperimentResult, run_algorithm
from repro.core import AnySCAN, AnyScanConfig

__all__ = ["fig8"]


def _trace(graph, mu: int, eps: float, alpha: int, beta: int):
    reference = run_algorithm("SCAN", graph, mu, eps)
    algo = AnySCAN(
        graph,
        AnyScanConfig(
            mu=mu, epsilon=eps, alpha=alpha, beta=beta, record_costs=False
        ),
    )
    return AnytimeRunner(algo).trace_against(reference.clustering.labels)


def fig8(scale: str = "bench", quick: bool = False) -> List[ExperimentResult]:
    use_scale = "tiny" if quick else scale
    graph = load_dataset("GR01", use_scale)
    block = max(graph.num_vertices // 12, 64)

    eps_panel = ExperimentResult(
        exp_id="fig8",
        title="GR01: anytime NMI at work-budget fractions, per ε (μ=5)",
        headers=["ε", "NMI@25%", "NMI@50%", "NMI@75%", "final NMI"],
    )
    epsilons = [0.2, 0.5, 0.8] if quick else [0.2, 0.4, 0.5, 0.6, 0.8]
    for eps in epsilons:
        trace = _trace(graph, 5, eps, block, block)
        total = trace.total_work
        eps_panel.add_row(
            eps,
            trace.quality_at_work(0.25 * total),
            trace.quality_at_work(0.50 * total),
            trace.quality_at_work(0.75 * total),
            trace.final_quality,
        )

    mu_panel = ExperimentResult(
        exp_id="fig8",
        title="GR01: anytime NMI at work-budget fractions, per μ (ε=0.5)",
        headers=["μ", "NMI@25%", "NMI@50%", "NMI@75%", "final NMI"],
    )
    mus = [2, 10] if quick else [2, 5, 10, 15]
    for mu in mus:
        trace = _trace(graph, mu, 0.5, block, block)
        total = trace.total_work
        mu_panel.add_row(
            mu,
            trace.quality_at_work(0.25 * total),
            trace.quality_at_work(0.50 * total),
            trace.quality_at_work(0.75 * total),
            trace.final_quality,
        )

    block_panel = ExperimentResult(
        exp_id="fig8",
        title="GR01: final total cost vs block size α=β (μ=5, ε=0.5)",
        headers=["α=β", "work-units", "iterations", "σ-evals"],
    )
    sizes = [64, 512] if quick else [256, 2048, 8192]
    for size in sizes:
        algo = AnySCAN(
            graph,
            AnyScanConfig(
                mu=5, epsilon=0.5, alpha=size, beta=size, record_costs=False
            ),
        )
        algo.run()
        stats = algo.statistics()
        block_panel.add_row(
            size,
            float(stats["work_units"]),
            algo.snapshot().iteration,
            int(stats["sigma_evaluations"]),
        )
    block_panel.notes.append(
        "expected: cost varies only mildly with block size (paper: "
        "'performance of anySCAN is very stable w.r.t. α and β')"
    )
    return [eps_panel, mu_panel, block_panel]
