"""Seeded local-query cost vs whole-graph clustering (DESIGN.md §12).

The ``repro.local`` claim: ``local_cluster(graph, seed, ε, μ)`` touches
σ rows proportional to the **answer** (the seed's cluster plus its
one-hop boundary), not to the graph — so interactive per-vertex queries
stay cheap no matter how large |E| grows.  This experiment groups query
seeds by the size of the cluster the reference assigns them, then runs
each seed through the three σ tiers:

* ``cluster-index`` — qualifying prefixes off the GS*-style index;
  σ evaluations are **asserted zero**;
* ``edge-index`` — σ lookups over stored values; also zero evaluations;
* ``oracle`` — σ computed on demand over touched edges only.

Each answer is asserted byte-identical to the seed's cluster in a
whole-graph :func:`parallel_scan`, whose latency is the comparison
line.  Writes ``BENCH_local_queries.json`` (to ``$REPRO_BENCH_DIR`` or
the working directory) so CI archives the numbers per commit.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, List

import numpy as np

from repro.bench.harness import ExperimentResult
from repro.core import parallel_scan
from repro.graph.generators.lfr import LFRParams, lfr_graph
from repro.local import local_cluster
from repro.similarity.gsindex import ClusteringIndex

__all__ = ["local_queries"]

_EPSILON = 0.5
_MU = 3
_TIERS = ("cluster-index", "edge-index", "oracle")


def _percentile(values: List[float], q: float) -> float:
    return float(np.percentile(np.asarray(values, dtype=np.float64), q))


def local_queries(
    scale: str = "bench", quick: bool = False
) -> List[ExperimentResult]:
    """Touched edges + latency per σ tier, bucketed by cluster size."""
    if quick:
        params = LFRParams(n=400, average_degree=8, max_degree=30, seed=11)
        seeds_per_bucket = 4
    else:
        params = LFRParams(
            n=8_000, average_degree=12, max_degree=80, seed=11
        )
        seeds_per_bucket = 8
    graph, _ = lfr_graph(params)

    # Whole-graph comparison line (and the differential reference).
    t0 = time.perf_counter()
    reference = parallel_scan(graph, _MU, _EPSILON, seed=0)
    global_ms = (time.perf_counter() - t0) * 1e3

    started = time.perf_counter()
    index = ClusteringIndex.build(graph)
    build_seconds = time.perf_counter() - started

    # Bucket query seeds by the size of the cluster they belong to —
    # the independent variable the local-work claim is about.  The
    # non-member bucket (hubs/outliers: empty answer) rides along.
    labels = np.asarray(reference.labels)
    sizes = {
        int(cid): int((labels == cid).sum())
        for cid in np.unique(labels[labels >= 0])
    }
    ordered = sorted(sizes, key=sizes.__getitem__)
    buckets: Dict[str, List[int]] = {}
    if ordered:
        picks = {
            "small": ordered[0],
            "median": ordered[len(ordered) // 2],
            "large": ordered[-1],
        }
        for tag, cid in picks.items():
            members = np.flatnonzero(labels == cid)
            step = max(1, len(members) // seeds_per_bucket)
            buckets[f"{tag} ({sizes[cid]})"] = [
                int(v) for v in members[::step][:seeds_per_bucket]
            ]
    non_members = np.flatnonzero(labels < 0)
    if non_members.size:
        step = max(1, len(non_members) // seeds_per_bucket)
        buckets["non-member (0)"] = [
            int(v) for v in non_members[::step][:seeds_per_bucket]
        ]

    tier_kwargs = {
        "cluster-index": {"cluster_index": index},
        "edge-index": {"edge_index": index.edge},
        "oracle": {},
    }

    table = ExperimentResult(
        exp_id="local_queries",
        title=(
            f"seeded local query cost (LFR n={graph.num_vertices:,}, "
            f"m={graph.num_edges:,}; whole-graph parallel_scan "
            f"{global_ms:.1f} ms; index built in {build_seconds:.2f}s)"
        ),
        headers=[
            "cluster bucket",
            "tier",
            "touched edges (mean)",
            "σ-evals (mean)",
            "p50 ms",
            "p99 ms",
            "vs whole-graph",
        ],
    )
    json_rows: List[Dict[str, object]] = []

    for bucket, seeds in buckets.items():
        for tier in _TIERS:
            touched: List[int] = []
            evals: List[int] = []
            latencies: List[float] = []
            for seed in seeds:
                t0 = time.perf_counter()
                result = local_cluster(
                    graph, seed, _EPSILON, _MU, **tier_kwargs[tier]
                )
                latencies.append((time.perf_counter() - t0) * 1e3)
                if result.stats.tier != tier:
                    raise AssertionError(
                        f"requested tier {tier!r} but "
                        f"{result.stats.tier!r} answered"
                    )
                if tier != "oracle" and result.stats.sigma_evaluations:
                    raise AssertionError(
                        f"{tier} performed "
                        f"{result.stats.sigma_evaluations} σ evaluations "
                        f"at seed {seed}; the lookup-only contract is "
                        "broken"
                    )
                want = np.flatnonzero(labels == labels[seed])
                if labels[seed] < 0:
                    want = want[:0]
                if not np.array_equal(result.members, want):
                    raise AssertionError(
                        f"local answer at seed {seed} ({tier}) diverged "
                        "from the whole-graph reference"
                    )
                touched.append(int(result.stats.touched_edges))
                evals.append(int(result.stats.sigma_evaluations))
            p50 = _percentile(latencies, 50)
            p99 = _percentile(latencies, 99)
            table.add_row(
                bucket,
                tier,
                float(np.mean(touched)),
                float(np.mean(evals)),
                p50,
                p99,
                global_ms / p50 if p50 > 0 else float("inf"),
            )
            json_rows.append(
                {
                    "bucket": bucket,
                    "tier": tier,
                    "num_seeds": len(seeds),
                    "touched_edges_mean": float(np.mean(touched)),
                    "sigma_evaluations_mean": float(np.mean(evals)),
                    "p50_ms": p50,
                    "p99_ms": p99,
                    "speedup_vs_global_p50": (
                        global_ms / p50 if p50 > 0 else float("inf")
                    ),
                }
            )

    table.notes.append(
        "every answer is asserted byte-identical to the seed's cluster "
        "in the whole-graph parallel_scan; index tiers are asserted to "
        "perform zero σ evaluations"
    )
    table.notes.append(
        "touched edges grows with the cluster bucket, not with |E| — "
        "the output-proportional contract"
    )

    payload = {
        "quick": bool(quick),
        "graph": {
            "n": int(graph.num_vertices),
            "m": int(graph.num_edges),
        },
        "epsilon": _EPSILON,
        "mu": _MU,
        "global_parallel_scan_ms": global_ms,
        "index_build_seconds": build_seconds,
        "rows": json_rows,
    }
    out_dir = os.environ.get("REPRO_BENCH_DIR", ".")
    out_path = os.path.join(out_dir, "BENCH_local_queries.json")
    with open(out_path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    table.notes.append(f"json written to {out_path}")
    return [table]
