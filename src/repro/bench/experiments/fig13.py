"""Figure 13: effect of μ, ε, and block size on parallel scalability (GR01)."""

from __future__ import annotations

from typing import List

from repro.bench.datasets import load_dataset
from repro.bench.harness import ExperimentResult
from repro.bench.experiments.fig10 import parallel_run

__all__ = ["fig13"]

_THREADS = [4, 8, 16]


def fig13(scale: str = "bench", quick: bool = False) -> List[ExperimentResult]:
    use_scale = "tiny" if quick else scale
    graph = load_dataset("GR01", use_scale)

    eps_panel = ExperimentResult(
        exp_id="fig13",
        title="GR01: speedup vs ε (μ=5)",
        headers=["ε"] + [f"t={t}" for t in _THREADS],
    )
    for eps in ([0.4, 0.7] if quick else [0.3, 0.5, 0.7]):
        par = parallel_run(graph, eps=eps)
        s = par.speedups(_THREADS)
        eps_panel.add_row(eps, *(s[t] for t in _THREADS))

    mu_panel = ExperimentResult(
        exp_id="fig13",
        title="GR01: speedup vs μ (ε=0.5)",
        headers=["μ"] + [f"t={t}" for t in _THREADS],
    )
    for mu in ([2, 10] if quick else [2, 5, 10, 15]):
        par = parallel_run(graph, mu=mu)
        s = par.speedups(_THREADS)
        mu_panel.add_row(mu, *(s[t] for t in _THREADS))

    block_panel = ExperimentResult(
        exp_id="fig13",
        title="GR01: speedup vs block size α=β (μ=5, ε=0.5)",
        headers=["α=β"] + [f"t={t}" for t in _THREADS],
    )
    n = graph.num_vertices
    sizes = [n // 32, n // 4] if quick else [n // 32, n // 8, n // 2]
    for size in sizes:
        par = parallel_run(graph, alpha=max(size, 32))
        s = par.speedups(_THREADS)
        block_panel.add_row(max(size, 32), *(s[t] for t in _THREADS))
    block_panel.notes.append(
        "expected: larger blocks give each thread more work per barrier "
        "and therefore better scalability"
    )
    return [eps_panel, mu_panel, block_panel]
