"""Figure 9: pSCAN vs anySCAN on synthetic LFR graphs.

Left: runtime as the average degree grows (LFR01–LFR05).
Right: runtime as the clustering coefficient grows (LFR11–LFR15).
"""

from __future__ import annotations

from typing import List

from repro.bench.datasets import load_dataset
from repro.bench.harness import ExperimentResult, run_algorithm
from repro.graph.stats import average_clustering, average_degree

__all__ = ["fig9"]


def _panel(names: List[str], x_label: str, scale: str) -> ExperimentResult:
    panel = ExperimentResult(
        exp_id="fig9",
        title=f"LFR sweep vs {x_label} (μ=5, ε=0.5) [work units]",
        headers=["dataset", x_label, "pSCAN", "anySCAN", "ratio p/a"],
    )
    for name in names:
        graph = load_dataset(name, scale)
        if x_label == "d̄":
            x = average_degree(graph)
        else:
            x = average_clustering(graph, sample=1200, seed=0)
        p = run_algorithm("pSCAN", graph, 5, 0.5)
        a = run_algorithm("anySCAN", graph, 5, 0.5)
        panel.add_row(
            name, x, p.work_units, a.work_units,
            p.work_units / max(a.work_units, 1.0),
        )
    return panel


def fig9(scale: str = "bench", quick: bool = False) -> List[ExperimentResult]:
    use_scale = "tiny" if quick else scale
    degree_names = ["LFR01", "LFR03", "LFR05"] if quick else [
        "LFR01", "LFR02", "LFR03", "LFR04", "LFR05"
    ]
    cc_names = ["LFR11", "LFR13", "LFR15"] if quick else [
        "LFR11", "LFR12", "LFR13", "LFR14", "LFR15"
    ]
    left = _panel(degree_names, "d̄", use_scale)
    right = _panel(cc_names, "c", use_scale)
    right.notes.append(
        "expected: cost decreases as clustering coefficient rises, and "
        "anySCAN's advantage over pSCAN grows on denser, better-separated "
        "graphs"
    )
    return [left, right]
