"""Measured σ-phase speedups on real backends vs the simulator's prediction.

Figures 10–12 are reproduced on the *simulated* multicore machine; this
experiment times the same embarrassingly parallel σ-evaluation phase for
real — once on the thread backend and once on the shared-memory process
backend — and prints the simulator's predicted curve beside them.  On a
GIL-bound interpreter the thread row stays flat while the process row
should track the prediction (>1.8x at 4 workers on a 4-core machine for
the bench-scale graph).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.bench.harness import ExperimentResult
from repro.core.parallel import measured_sigma_speedups
from repro.graph.csr import Graph
from repro.graph.generators.random_graphs import gnm_random_graph
from repro.parallel.costs import IterationCosts, ParallelBlock
from repro.parallel.processes import shared_memory_available
from repro.parallel.simulator import speedup_curve

__all__ = ["speedup"]

_EPSILON = 0.5


def _sigma_phase_costs(graph: Graph) -> IterationCosts:
    """Per-vertex range-query costs as one parallel block.

    A range query on p merges p's adjacency list against each neighbor's,
    so its cost is deg(p) plus the degrees of all its neighbors — the
    same unit the cost log charges for σ evaluations.
    """
    degrees = np.diff(graph.indptr).astype(np.float64)
    neighbor_deg = degrees[graph.indices]
    # Sum of neighbor degrees per vertex; reduceat needs non-empty slices,
    # so guard isolated vertices with a mask.
    sums = np.zeros(graph.num_vertices, dtype=np.float64)
    nonempty = degrees > 0
    if nonempty.any():
        starts = graph.indptr[:-1][nonempty]
        sums[nonempty] = np.add.reduceat(neighbor_deg, starts)
    block = ParallelBlock(name="sigma/range-queries")
    block.task_costs = [float(c) for c in degrees * degrees + sums]
    record = IterationCosts(step="sigma", index=0)
    record.blocks.append(block)
    return record


def _sample_vertices(graph: Graph, limit: int) -> Sequence[int] | None:
    if graph.num_vertices <= limit:
        return None
    rng = np.random.default_rng(0)
    return [int(v) for v in rng.choice(graph.num_vertices, limit, False)]


def speedup(scale: str = "bench", quick: bool = False) -> List[ExperimentResult]:
    """Measured wall-clock speedup curves next to the simulated prediction."""
    if quick:
        graph = gnm_random_graph(300, 900, seed=7)
        workers = [1, 2]
        vertices = None
        repeats = 2  # best-of-2 discards the lazy pool spin-up
    else:
        # >=200k edges: large enough that per-task work dominates the
        # pool's serialization overhead on a multi-core machine.
        graph = gnm_random_graph(60_000, 240_000, seed=7)
        workers = [1, 2, 4, 8]
        vertices = _sample_vertices(graph, 4_000)
        repeats = 3

    table = ExperimentResult(
        exp_id="speedup",
        title=(
            f"measured sigma-phase speedup (n={graph.num_vertices:,}, "
            f"m={graph.num_edges:,}, eps={_EPSILON})"
        ),
        headers=["backend"] + [f"t={t}" for t in workers],
    )

    for name in ("process", "thread"):
        if name == "process" and not shared_memory_available():
            table.notes.append(
                "process backend unavailable (shared memory disabled); "
                "its row fell back to threads"
            )
        rows = measured_sigma_speedups(
            graph,
            workers,
            epsilon=_EPSILON,
            backend=name,
            vertices=vertices,
            repeats=repeats,
        )
        kinds = {r.kind for r in rows}
        label = name if kinds == {name} else f"{name}->{'/'.join(sorted(kinds))}"
        table.add_row(label, *(r.speedup for r in rows))

    predicted = speedup_curve([_sigma_phase_costs(graph)], workers)
    table.add_row("simulated", *(predicted[t] for t in workers))

    table.notes.append(
        "expected: process row > 1.8x at t=4 on a 4-core machine; thread "
        "row ~flat under the GIL; simulated row is the machine model's "
        "prediction for the same per-vertex cost distribution"
    )
    return [table]
