"""Figure 11: anySCAN speedups vs the ideal parallel algorithm."""

from __future__ import annotations

from typing import List

from repro.bench.datasets import load_dataset
from repro.bench.harness import ExperimentResult
from repro.bench.experiments.fig10 import parallel_run
from repro.core.parallel import ideal_speedups

__all__ = ["fig11"]

_DATASETS = ["GR01", "GR02", "GR03", "GR04"]
_THREADS = [2, 4, 8, 16]


def fig11(scale: str = "bench", quick: bool = False) -> List[ExperimentResult]:
    use_scale = "tiny" if quick else scale
    datasets = _DATASETS[:2] if quick else _DATASETS
    panel = ExperimentResult(
        exp_id="fig11",
        title="speedups: anySCAN vs the ideal algorithm (μ=5, ε=0.5)",
        headers=["dataset", "algorithm"] + [f"t={t}" for t in _THREADS],
    )
    for name in datasets:
        graph = load_dataset(name, use_scale)
        par = parallel_run(graph)
        any_speedups = par.speedups(_THREADS)
        ideal = ideal_speedups(graph, _THREADS)
        panel.add_row(name, "anySCAN", *(any_speedups[t] for t in _THREADS))
        panel.add_row(name, "ideal", *(ideal[t] for t in _THREADS))
    panel.notes.append(
        "expected: anySCAN tracks the ideal algorithm closely; both "
        "degrade together on graphs with skewed degrees (load imbalance)"
    )
    return [panel]
