"""Clustering-index query latency vs the anySCAN path.

The GS*-style index claim (DESIGN.md §10): after one σ pass at build
time, **any** (ε, μ) query is answered by a binary search over the core
order plus a union-find sweep over the σ-sorted adjacency — zero σ
evaluations per query, byte-identical labels to the sequential
reference.  This experiment builds a :class:`ClusteringIndex` once,
then replays a grid of (ε, μ) queries through three paths:

* ``index`` — ``ClusteringIndex.query``; σ-evaluations per query are
  read from the index's own counters and **asserted to be zero**;
* ``anyscan`` — a fresh :class:`AnySCAN` run per query (the anytime
  engine, σ computed on demand with pruning);
* ``scan`` — the sequential reference, for a latency floor sanity line.

Writes ``BENCH_index_queries.json`` (to ``$REPRO_BENCH_DIR`` or the
working directory) so CI archives the numbers per commit.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, List

import numpy as np

from repro.baselines import scan
from repro.bench.harness import ExperimentResult
from repro.core import AnySCAN, AnyScanConfig
from repro.graph.generators.lfr import LFRParams, lfr_graph
from repro.similarity.gsindex import ClusteringIndex

__all__ = ["index_queries"]

# The (ε, μ) exploration grid an interactive user would sweep.
_GRID = (
    (0.35, 2),
    (0.45, 3),
    (0.50, 4),
    (0.55, 5),
    (0.60, 4),
    (0.65, 8),
    (0.70, 3),
    (0.80, 6),
)


def index_queries(
    scale: str = "bench", quick: bool = False
) -> List[ExperimentResult]:
    """σ-evals-per-query (must be 0) and latency, index vs anySCAN."""
    if quick:
        params = LFRParams(n=400, average_degree=8, max_degree=30, seed=11)
        grid = _GRID[:4]
        repeats = 2
    else:
        params = LFRParams(
            n=8_000, average_degree=12, max_degree=80, seed=11
        )
        grid = _GRID
        repeats = 3
    graph, _ = lfr_graph(params)

    started = time.perf_counter()
    index = ClusteringIndex.build(graph)
    build_seconds = time.perf_counter() - started

    table = ExperimentResult(
        exp_id="index_queries",
        title=(
            f"any-(ε, μ) query latency (LFR n={graph.num_vertices:,}, "
            f"m={graph.num_edges:,}; index built once in "
            f"{build_seconds:.2f}s)"
        ),
        headers=[
            "epsilon",
            "mu",
            "index ms",
            "index σ-evals",
            "anyscan ms",
            "anyscan σ-evals",
            "scan ms",
            "speedup vs anyscan",
        ],
    )
    json_rows: List[Dict[str, object]] = []

    for epsilon, mu in grid:
        # -- index path: best-of-repeats, σ-evals from the counters ----
        index_seconds = []
        for _ in range(repeats):
            t0 = time.perf_counter()
            indexed = index.query(epsilon, mu, seed=0)
            index_seconds.append(time.perf_counter() - t0)
            evals = int(index.last_query["sigma_evaluations"])
            if evals != 0:
                raise AssertionError(
                    f"index query at (ε={epsilon}, μ={mu}) performed "
                    f"{evals} σ evaluations; the zero-σ contract is broken"
                )
        index_ms = min(index_seconds) * 1e3

        # -- anySCAN path: fresh run, σ computed on demand --------------
        t0 = time.perf_counter()
        algo = AnySCAN(
            graph, AnyScanConfig(mu=mu, epsilon=epsilon, seed=0)
        )
        anyscan_result = algo.run()
        anyscan_ms = (time.perf_counter() - t0) * 1e3
        anyscan_evals = int(algo.statistics()["sigma_evaluations"])

        # -- sequential reference: latency floor + conformance ----------
        t0 = time.perf_counter()
        reference = scan(graph, mu, epsilon, seed=0)
        scan_ms = (time.perf_counter() - t0) * 1e3
        if not np.array_equal(indexed.labels, reference.labels):
            raise AssertionError(
                f"index query at (ε={epsilon}, μ={mu}) diverged from "
                "the sequential reference"
            )

        speedup = anyscan_ms / index_ms if index_ms > 0 else float("inf")
        table.add_row(
            epsilon, mu, index_ms, 0, anyscan_ms, anyscan_evals,
            scan_ms, speedup,
        )
        json_rows.append(
            {
                "epsilon": float(epsilon),
                "mu": int(mu),
                "index_ms": index_ms,
                "index_sigma_evaluations": 0,
                "anyscan_ms": anyscan_ms,
                "anyscan_sigma_evaluations": anyscan_evals,
                "scan_ms": scan_ms,
                "speedup_vs_anyscan": speedup,
                "num_clusters": int(anyscan_result.num_clusters),
            }
        )

    table.notes.append(
        "index σ-evals is asserted zero per query (read from "
        "similarity counters); labels are asserted byte-identical to "
        "the sequential reference at every grid point"
    )
    table.notes.append(
        f"index build cost is paid once ({build_seconds:.2f}s), then "
        f"amortized over every query; latency is best of {repeats}"
    )

    payload = {
        "quick": bool(quick),
        "graph": {
            "n": int(graph.num_vertices),
            "m": int(graph.num_edges),
        },
        "build_seconds": build_seconds,
        "mu_cap": int(index.mu_cap),
        "rows": json_rows,
    }
    out_dir = os.environ.get("REPRO_BENCH_DIR", ".")
    out_path = os.path.join(out_dir, "BENCH_index_queries.json")
    with open(out_path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    table.notes.append(f"json written to {out_path}")
    return [table]
