"""Figure 6: final runtimes of all algorithms vs. ε (top) and μ (bottom)."""

from __future__ import annotations

from typing import List

from repro.bench.datasets import load_dataset
from repro.bench.harness import ALGORITHMS, ExperimentResult, run_algorithm

__all__ = ["fig6"]

_DATASETS = ["GR01", "GR02", "GR03", "GR04", "GR05"]
_EPSILONS = [0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8]
_MUS = [2, 5, 10, 15, 20]


def fig6(scale: str = "bench", quick: bool = False) -> List[ExperimentResult]:
    datasets = _DATASETS[:2] if quick else _DATASETS
    epsilons = [0.3, 0.5, 0.7] if quick else _EPSILONS
    mus = [2, 5, 10] if quick else _MUS
    use_scale = "tiny" if quick else scale
    results: List[ExperimentResult] = []
    for name in datasets:
        graph = load_dataset(name, use_scale)
        eps_panel = ExperimentResult(
            exp_id="fig6",
            title=f"final cost vs ε (μ=5), {name} [work units]",
            headers=["ε"] + list(ALGORITHMS),
        )
        for eps in epsilons:
            row = [eps]
            for alg in ALGORITHMS:
                row.append(run_algorithm(alg, graph, 5, eps).work_units)
            eps_panel.add_row(*row)
        results.append(eps_panel)

        mu_panel = ExperimentResult(
            exp_id="fig6",
            title=f"final cost vs μ (ε=0.5), {name} [work units]",
            headers=["μ"] + list(ALGORITHMS),
        )
        for mu in mus:
            row = [mu]
            for alg in ALGORITHMS:
                row.append(run_algorithm(alg, graph, mu, 0.5).work_units)
            mu_panel.add_row(*row)
        results.append(mu_panel)
    return results
