"""Tables I and II: dataset statistics (analog vs. paper)."""

from __future__ import annotations

from typing import List

from repro.bench.datasets import DATASETS, dataset_names, load_dataset
from repro.bench.harness import ExperimentResult
from repro.graph.stats import summarize

__all__ = ["tab1", "tab2"]


def _dataset_rows(kind: str, scale: str) -> ExperimentResult:
    exp_id = "tab1" if kind == "real" else "tab2"
    title = (
        "Table I analogs: real-graph regimes"
        if kind == "real"
        else "Table II analogs: LFR benchmark graphs"
    )
    result = ExperimentResult(
        exp_id=exp_id,
        title=title,
        headers=[
            "Id", "stands for", "|V|", "|E|", "d̄", "c",
            "paper d̄", "paper c",
        ],
    )
    for name in dataset_names(kind):
        spec = DATASETS[name]
        graph = load_dataset(name, scale)
        m = summarize(graph, clustering_sample=1500, seed=0)
        result.add_row(
            spec.name,
            spec.paper_name,
            m.num_vertices,
            m.num_edges,
            m.average_degree,
            m.average_clustering,
            spec.paper_avg_degree,
            spec.paper_clustering,
        )
    result.notes.append(
        "analogs are scaled down ~1000x; they match the paper's degree/"
        "clustering regime, not its absolute sizes (DESIGN.md §3)"
    )
    return result


def tab1(scale: str = "bench", quick: bool = False) -> List[ExperimentResult]:
    """Table I: the five real-graph analogs."""
    return [_dataset_rows("real", "tiny" if quick else scale)]


def tab2(scale: str = "bench", quick: bool = False) -> List[ExperimentResult]:
    """Table II: the ten LFR analogs (degree sweep + clustering sweep)."""
    return [_dataset_rows("lfr", "tiny" if quick else scale)]
