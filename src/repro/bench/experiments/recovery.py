"""Crash-recovery costs: WAL replay rate and cold-restart latency.

The durability plane's claim (DESIGN.md §13): recovery is replay, so
its cost is linear in the journal tail — and checkpoints exist exactly
to bound that tail.  This experiment measures both halves:

* **replay** — journal a stream of edge-update batches against a
  durable :class:`~repro.service.store.GraphStore`, then time
  :meth:`~repro.service.durability.DurabilityManager.recover` twice:
  once over the full WAL (no checkpoint, the worst case) and once from
  a checkpoint plus a short tail (the steady state).  Reported as
  replayed mutations/s and edges/s.
* **cold restart** — SIGKILL-style cost from the operator's seat: spawn
  a real ``repro serve --data-dir … --recover`` subprocess over the
  same journal and time from ``exec`` to the first completed clustering
  answer over HTTP.

Writes ``BENCH_recovery.json`` (to ``$REPRO_BENCH_DIR`` or the working
directory) so CI archives the numbers per commit.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
import time
from typing import Dict, List

import numpy as np

from repro.bench.harness import ExperimentResult
from repro.graph.generators.random_graphs import gnm_random_graph
from repro.service.client import ServiceClient
from repro.service.durability import DurabilityManager
from repro.service.store import GraphStore
from repro.similarity.weighted import SimilarityConfig

__all__ = ["recovery"]

_GRAPH = "bench"


def _planned_inserts(graph, count, per_batch, seed=0):
    """``count`` batches of fresh, pairwise-distinct non-edges."""
    rng = np.random.default_rng(seed)
    n = graph.num_vertices
    existing = set()
    for u in range(n):
        for v in graph.indices[graph.indptr[u]:graph.indptr[u + 1]]:
            existing.add((min(u, int(v)), max(u, int(v))))
    batches = []
    while len(batches) < count:
        batch = []
        while len(batch) < per_batch:
            u, v = int(rng.integers(n)), int(rng.integers(n))
            key = (min(u, v), max(u, v))
            if u == v or key in existing:
                continue
            existing.add(key)
            batch.append([key[0], key[1], 1.0])
        batches.append(batch)
    return batches


def _journal_stream(data_dir, graph, batches):
    """Build a durable store and journal every batch; returns nothing —
    the artifact is the WAL (and whatever checkpoints the cadence cut)."""
    manager = DurabilityManager(data_dir, checkpoint_every=1_000_000_000)
    store = manager.recover().store
    store.attach_journal(manager)
    store.add("g", graph, similarity=SimilarityConfig())
    for batch in batches:
        store.update_edges("g", insert=batch)
    manager.close()
    return store


def _timed_recover(data_dir) -> Dict[str, object]:
    manager = DurabilityManager(data_dir)
    started = time.perf_counter()
    state = manager.recover()
    elapsed = time.perf_counter() - started
    manager.close()
    return {
        "seconds": elapsed,
        "replayed_records": int(state.replayed_records),
        "replayed_mutations": int(state.replayed_mutations),
        "checkpoint_seq": int(state.checkpoint_seq),
        "fingerprint": state.store.get("g").fingerprint,
    }


def _spawn_serve(args):
    """A real ``repro serve`` subprocess (console script not installed,
    so go through ``repro.cli`` with the library on the path)."""
    import repro

    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [
            os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__))),
            env.get("PYTHONPATH", ""),
        ]
    )
    code = (
        "import sys; from repro.cli import main; "
        "sys.exit(main(['serve'] + sys.argv[1:]))"
    )
    return subprocess.Popen(
        [sys.executable, "-c", code, *args],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
        env=env,
    )


def recovery(scale: str = "bench", quick: bool = False) -> List[ExperimentResult]:
    """WAL replay throughput and cold-restart-to-first-answer latency."""
    if quick:
        graph = gnm_random_graph(400, 1_600, seed=11)
        batch_count, per_batch, tail_count = 40, 5, 8
    else:
        graph = gnm_random_graph(4_000, 24_000, seed=11)
        batch_count, per_batch, tail_count = 400, 10, 40
    batches = _planned_inserts(graph, batch_count, per_batch)

    table = ExperimentResult(
        exp_id="recovery",
        title=(
            f"crash recovery (gnm n={graph.num_vertices:,}, "
            f"m={graph.num_edges:,}, {batch_count} journaled batches of "
            f"{per_batch} edges)"
        ),
        headers=[
            "phase",
            "records",
            "edge ops",
            "seconds",
            "records/s",
            "edge ops/s",
        ],
    )
    payload: Dict[str, object] = {
        "quick": bool(quick),
        "graph": {
            "n": int(graph.num_vertices),
            "m": int(graph.num_edges),
        },
        "batches": batch_count,
        "edges_per_batch": per_batch,
    }

    def add_replay_row(phase: str, timing: Dict[str, object]) -> None:
        # ``replayed_mutations`` counts edge operations — the initial
        # ``add_graph`` contributes its full edge list, each update
        # batch its inserts.
        records = int(timing["replayed_records"])
        edge_ops = int(timing["replayed_mutations"])
        seconds = float(timing["seconds"])
        table.add_row(
            phase, records, edge_ops, seconds,
            records / seconds if seconds > 0 else 0.0,
            edge_ops / seconds if seconds > 0 else 0.0,
        )
        payload[phase.replace("-", "_")] = {
            **timing,
            "records_per_second": (
                records / seconds if seconds > 0 else 0.0
            ),
            "edges_per_second": edge_ops / seconds if seconds > 0 else 0.0,
        }

    with tempfile.TemporaryDirectory(prefix="repro-bench-recovery-") as root:
        # ---- worst case: the whole history replays from the WAL ----
        wal_dir = os.path.join(root, "wal-only")
        live = _journal_stream(wal_dir, graph, batches)
        timing = _timed_recover(wal_dir)
        assert timing["fingerprint"] == live.get("g").fingerprint
        del timing["fingerprint"]
        add_replay_row("wal-replay", timing)

        # ---- steady state: checkpoint plus a short journal tail ----
        ckpt_dir = os.path.join(root, "checkpointed")
        manager = DurabilityManager(ckpt_dir, checkpoint_every=1_000_000_000)
        store = manager.recover().store
        store.attach_journal(manager)
        store.add("g", graph, similarity=SimilarityConfig())
        for batch in batches[: batch_count - tail_count]:
            store.update_edges("g", insert=batch)
        entries, wal_seq = store.checkpoint_snapshot()
        manager.checkpoint(
            {"entries": entries, "wal_seq": wal_seq,
             "job_blobs": (), "update_keys": ()}
        )
        for batch in batches[batch_count - tail_count:]:
            store.update_edges("g", insert=batch)
        manager.close()
        timing = _timed_recover(ckpt_dir)
        assert timing["fingerprint"] == store.get("g").fingerprint
        del timing["fingerprint"]
        add_replay_row("checkpoint-tail", timing)

        # ---- operator view: exec → recovery → first HTTP answer ----
        started = time.perf_counter()
        proc = _spawn_serve(
            ["--port", "0", "--workers", "1",
             "--data-dir", wal_dir, "--recover"]
        )
        try:
            line = proc.stdout.readline().strip()
            if not line.startswith("serving on "):
                raise RuntimeError(f"server failed to start: {line!r}")
            ready = time.perf_counter() - started
            client = ServiceClient(
                line.removeprefix("serving on "), timeout=300.0
            )
            body = client.cluster("g", 2, 0.5, wait=300.0, labels=False)
            if body.get("state") != "done":
                raise RuntimeError(f"first answer never completed: {body}")
            first_answer = time.perf_counter() - started
            client.shutdown()
            proc.wait(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)
            proc.stdout.close()
        table.add_row(
            "cold-restart", batch_count + 1,
            graph.num_edges + batch_count * per_batch,
            first_answer, 0.0, 0.0,
        )
        payload["cold_restart"] = {
            "ready_seconds": ready,
            "first_answer_seconds": first_answer,
        }
        table.notes.append(
            f"cold restart: recovery + listen in {ready:.3f}s, first "
            f"clustering answer at {first_answer:.3f}s after exec"
        )

    table.notes.append(
        "wal-replay recovers the full history from the journal; "
        "checkpoint-tail loads the newest checkpoint and replays "
        f"only the last {tail_count} batches"
    )
    out_dir = os.environ.get("REPRO_BENCH_DIR", ".")
    out_path = os.path.join(out_dir, "BENCH_recovery.json")
    with open(out_path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    table.notes.append(f"json written to {out_path}")
    return [table]
