"""Service throughput/latency under concurrent clients.

The service layer's claim (DESIGN.md §8, §11): once a graph's σ index
and result cache are warm, interactive clustering queries are
wire-bound — the server sustains high query throughput with low tail
latency, and repeat queries perform **zero** σ evaluations.  This
experiment stands up a real :class:`~repro.service.server.ClusteringServer`
(HTTP over localhost), drives it with concurrent stdlib clients at ≥2
concurrency levels, and reports sustained throughput plus exact
client-side p50/p99 latency per level for two request mixes:

* ``cached`` — repeat (ε, μ) queries answered from the LRU result
  cache (the steady state of a dashboard polling fixed settings);
* ``indexed-job`` — distinct (ε, μ) per request, each scheduled as an
  anytime job whose σ phase is threshold passes over the prebuilt
  index (the interactive-exploration state).

Both mixes then repeat against a **multi-process fleet** (``repro
serve --processes N`` machinery): N worker processes sharing the graph
and its indexes zero-copy through named shared-memory segments, load
balanced by ``SO_REUSEPORT``.  Every row carries ``process_count`` /
``worker_count`` / ``cpu_count`` so the single-vs-fleet comparison is
interpretable: on a multi-core runner the 4-shard indexed mix should
sustain ≥2× the single-process aggregate throughput; on a 1-CPU
container the fleet rows measure only the coordination overhead.

Writes ``BENCH_service.json`` (to ``$REPRO_BENCH_DIR`` or the working
directory) so CI archives the numbers per commit.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Callable, Dict, List, Optional, Tuple

from repro.bench.harness import ExperimentResult
from repro.graph.generators.lfr import LFRParams, lfr_graph
from repro.service.client import ServiceClient
from repro.service.server import ClusteringServer

__all__ = ["service"]

_GRAPH = "bench"
# Warmed (ε, μ) settings the cached mix cycles over.
_WARM = ((0.5, 4), (0.6, 3), (0.65, 5), (0.7, 2))

#: Shard count for the fleet section (the acceptance comparison point).
_FLEET_PROCESSES = 4


def _percentile(samples: List[float], p: float) -> float:
    """Exact percentile by nearest-rank over the sorted samples."""
    ordered = sorted(samples)
    rank = max(1, int(round(p / 100.0 * len(ordered))))
    return ordered[rank - 1]


def _drive(
    url: str,
    concurrency: int,
    requests_per_client: int,
    make_call,
    warmup: Optional[Callable[[ServiceClient], None]] = None,
) -> Tuple[float, List[float]]:
    """Run ``make_call(client, i)`` from ``concurrency`` threads.

    Returns (wall seconds, per-request latencies).  Each worker keeps
    its own latency list; they are merged after the join, so no shared
    state is written concurrently.  ``warmup`` runs per client *before*
    the start barrier — against a fleet, the keep-alive connection pins
    the client to one shard, so warming through it warms exactly the
    shard the timed requests will hit.
    """
    buckets: List[List[float]] = [[] for _ in range(concurrency)]
    barrier = threading.Barrier(concurrency + 1)

    def worker(slot: int) -> None:
        client = ServiceClient(url, timeout=120.0)
        if warmup is not None:
            warmup(client)
        barrier.wait()
        for i in range(requests_per_client):
            started = time.perf_counter()
            make_call(client, slot * requests_per_client + i)
            buckets[slot].append(time.perf_counter() - started)

    threads = [
        threading.Thread(target=worker, args=(slot,), daemon=True)
        for slot in range(concurrency)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    return elapsed, [sample for bucket in buckets for sample in bucket]


def _warm_cache(client: ServiceClient) -> None:
    for epsilon, mu in _WARM:
        client.cluster(_GRAPH, mu, epsilon, wait=300.0, labels=False)


def _cached_call(client: ServiceClient, i: int) -> None:
    epsilon, mu = _WARM[i % len(_WARM)]
    body = client.cluster(_GRAPH, mu, epsilon, labels=False)
    if not body.get("cached"):
        raise AssertionError(
            "warm query missed the cache; bench is mismeasuring"
        )


def _job_call(client: ServiceClient, i: int) -> None:
    epsilon = 0.30 + 0.004 * (i % 100)
    mu = 2 + (i % 5)
    body = client.cluster(_GRAPH, mu, epsilon, wait=300.0, labels=False)
    if body.get("state") != "done":
        raise AssertionError(f"job did not finish in time: {body}")


def service(scale: str = "bench", quick: bool = False) -> List[ExperimentResult]:
    """Concurrent-client throughput and p50/p99 latency over HTTP."""
    if quick:
        params = LFRParams(n=300, average_degree=8, max_degree=30, seed=7)
        single_levels = (1, _FLEET_PROCESSES)
        fleet_levels = (_FLEET_PROCESSES,)
        cached_requests = 40
        job_requests = 3
    else:
        params = LFRParams(
            n=4_000, average_degree=12, max_degree=60, seed=7
        )
        single_levels = (1, _FLEET_PROCESSES, 8)
        fleet_levels = (_FLEET_PROCESSES, 8)
        cached_requests = 300
        job_requests = 8
    graph, _ = lfr_graph(params)
    scheduler_workers = 2
    cpu_count = os.cpu_count() or 1

    table = ExperimentResult(
        exp_id="service",
        title=(
            f"service throughput (LFR n={graph.num_vertices:,}, "
            f"m={graph.num_edges:,}, σ index + result cache warm, "
            f"{cpu_count} cpus)"
        ),
        headers=[
            "mix",
            "procs",
            "concurrency",
            "requests",
            "throughput req/s",
            "p50 ms",
            "p99 ms",
        ],
    )
    json_levels: List[Dict[str, object]] = []

    def run_mix(
        url: str,
        mix: str,
        process_count: int,
        concurrency: int,
        requests_per_client: int,
        make_call,
        warmup=None,
    ) -> Dict[str, object]:
        elapsed, latencies = _drive(
            url, concurrency, requests_per_client, make_call, warmup
        )
        throughput = len(latencies) / elapsed if elapsed > 0 else 0.0
        p50 = _percentile(latencies, 50.0) * 1e3
        p99 = _percentile(latencies, 99.0) * 1e3
        table.add_row(
            mix, process_count, concurrency, len(latencies),
            throughput, p50, p99,
        )
        row: Dict[str, object] = {
            "mix": mix,
            "process_count": process_count,
            "worker_count": scheduler_workers,
            "cpu_count": cpu_count,
            "concurrency": concurrency,
            "requests": len(latencies),
            "throughput_rps": throughput,
            "p50_ms": p50,
            "p99_ms": p99,
        }
        json_levels.append(row)
        return row

    # ------------------------------------------------------------------
    # single-process server (the baseline configuration)
    # ------------------------------------------------------------------
    single_indexed_c4: Optional[Dict[str, object]] = None
    with ClusteringServer(
        workers=scheduler_workers, slice_iterations=4
    ) as server:
        client = ServiceClient(server.url, timeout=120.0)
        client.load_graph(_GRAPH, graph=graph, build_index=True)
        _warm_cache(client)  # fill the cache once

        for concurrency in single_levels:
            run_mix(
                server.url, "cached", 1, concurrency,
                cached_requests, _cached_call,
            )
            row = run_mix(
                server.url, "indexed-job", 1, concurrency,
                job_requests, _job_call,
            )
            if concurrency == _FLEET_PROCESSES:
                single_indexed_c4 = row
        metrics = client.metrics()

    # ------------------------------------------------------------------
    # multi-process fleet: N shards, zero-copy shared store
    # ------------------------------------------------------------------
    from repro.service.fleet import ServiceSupervisor
    from repro.service.server import ClusteringService

    fleet_indexed_c4: Optional[Dict[str, object]] = None
    writer = ClusteringService(
        workers=scheduler_workers, slice_iterations=4
    )
    supervisor = ServiceSupervisor(
        writer,
        processes=_FLEET_PROCESSES,
        worker_options={
            "workers": scheduler_workers,
            "slice_iterations": 4,
        },
    )
    try:
        supervisor.start().wait_ready()
        client = ServiceClient(supervisor.url, timeout=120.0)
        client.load_graph(_GRAPH, graph=graph, build_index=True)
        for concurrency in fleet_levels:
            # Cache warming is per-shard: each drive client warms the
            # shard its keep-alive connection pinned it to.
            run_mix(
                supervisor.url, "cached", _FLEET_PROCESSES, concurrency,
                cached_requests, _cached_call, warmup=_warm_cache,
            )
            row = run_mix(
                supervisor.url, "indexed-job", _FLEET_PROCESSES,
                concurrency, job_requests, _job_call,
            )
            if concurrency == _FLEET_PROCESSES:
                fleet_indexed_c4 = row
        fleet_metrics = client.fleet_metrics()
    finally:
        supervisor.close()
        writer.close()

    counters = dict(metrics.get("counters", {}))
    table.notes.append(
        "cached mix asserts every request is a cache hit "
        f"(hits={counters.get('cache_hits', 0)}, "
        f"sigma_evaluations={counters.get('sigma_evaluations', 0)} "
        "total across all jobs)"
    )
    table.notes.append(
        "indexed-job mix runs one anytime job per request over the "
        "prebuilt edge-similarity index"
    )
    speedup = None
    if single_indexed_c4 and fleet_indexed_c4:
        base = float(single_indexed_c4["throughput_rps"])  # type: ignore[arg-type]
        if base > 0:
            speedup = float(fleet_indexed_c4["throughput_rps"]) / base  # type: ignore[arg-type]
            table.notes.append(
                f"fleet speedup (indexed-job, c={_FLEET_PROCESSES}, "
                f"{_FLEET_PROCESSES} shards vs 1 process): "
                f"{speedup:.2f}x on {cpu_count} cpus"
                + (
                    " — needs >=4 cores to show the >=2x criterion"
                    if cpu_count < 4
                    else ""
                )
            )

    payload = {
        "quick": bool(quick),
        "graph": {
            "n": int(graph.num_vertices),
            "m": int(graph.num_edges),
        },
        "cpu_count": cpu_count,
        "fleet_processes": _FLEET_PROCESSES,
        "fleet_speedup_indexed": speedup,
        "levels": json_levels,
        "counters": counters,
        "fleet_counters": dict(fleet_metrics.get("counters", {})),
    }
    out_dir = os.environ.get("REPRO_BENCH_DIR", ".")
    out_path = os.path.join(out_dir, "BENCH_service.json")
    with open(out_path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    table.notes.append(f"json written to {out_path}")
    return [table]
