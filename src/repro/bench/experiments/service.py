"""Service throughput/latency under concurrent clients.

The service layer's claim (DESIGN.md §8): once a graph's σ index and
result cache are warm, interactive clustering queries are wire-bound —
the server sustains high query throughput with low tail latency, and
repeat queries perform **zero** σ evaluations.  This experiment stands
up a real :class:`~repro.service.server.ClusteringServer` (HTTP over
localhost), drives it with concurrent stdlib clients at ≥2 concurrency
levels, and reports sustained throughput plus exact client-side
p50/p99 latency per level for two request mixes:

* ``cached`` — repeat (ε, μ) queries answered from the LRU result
  cache (the steady state of a dashboard polling fixed settings);
* ``indexed-job`` — distinct (ε, μ) per request, each scheduled as an
  anytime job whose σ phase is threshold passes over the prebuilt
  index (the interactive-exploration state).

Writes ``BENCH_service.json`` (to ``$REPRO_BENCH_DIR`` or the working
directory) so CI archives the numbers per commit.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Dict, List, Tuple

from repro.bench.harness import ExperimentResult
from repro.graph.generators.lfr import LFRParams, lfr_graph
from repro.service.client import ServiceClient
from repro.service.server import ClusteringServer

__all__ = ["service"]

_GRAPH = "bench"
# Warmed (ε, μ) settings the cached mix cycles over.
_WARM = ((0.5, 4), (0.6, 3), (0.65, 5), (0.7, 2))


def _percentile(samples: List[float], p: float) -> float:
    """Exact percentile by nearest-rank over the sorted samples."""
    ordered = sorted(samples)
    rank = max(1, int(round(p / 100.0 * len(ordered))))
    return ordered[rank - 1]


def _drive(
    url: str,
    concurrency: int,
    requests_per_client: int,
    make_call,
) -> Tuple[float, List[float]]:
    """Run ``make_call(client, i)`` from ``concurrency`` threads.

    Returns (wall seconds, per-request latencies).  Each worker keeps
    its own latency list; they are merged after the join, so no shared
    state is written concurrently.
    """
    buckets: List[List[float]] = [[] for _ in range(concurrency)]
    barrier = threading.Barrier(concurrency + 1)

    def worker(slot: int) -> None:
        client = ServiceClient(url, timeout=120.0)
        barrier.wait()
        for i in range(requests_per_client):
            started = time.perf_counter()
            make_call(client, slot * requests_per_client + i)
            buckets[slot].append(time.perf_counter() - started)

    threads = [
        threading.Thread(target=worker, args=(slot,), daemon=True)
        for slot in range(concurrency)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    return elapsed, [sample for bucket in buckets for sample in bucket]


def service(scale: str = "bench", quick: bool = False) -> List[ExperimentResult]:
    """Concurrent-client throughput and p50/p99 latency over HTTP."""
    if quick:
        params = LFRParams(n=300, average_degree=8, max_degree=30, seed=7)
        levels = (1, 2)
        cached_requests = 40
        job_requests = 3
    else:
        params = LFRParams(
            n=4_000, average_degree=12, max_degree=60, seed=7
        )
        levels = (1, 4, 8)
        cached_requests = 300
        job_requests = 8
    graph, _ = lfr_graph(params)

    table = ExperimentResult(
        exp_id="service",
        title=(
            f"service throughput (LFR n={graph.num_vertices:,}, "
            f"m={graph.num_edges:,}, σ index + result cache warm)"
        ),
        headers=[
            "mix",
            "concurrency",
            "requests",
            "throughput req/s",
            "p50 ms",
            "p99 ms",
        ],
    )
    json_levels: List[Dict[str, object]] = []

    with ClusteringServer(workers=2, slice_iterations=4) as server:
        client = ServiceClient(server.url, timeout=120.0)
        client.load_graph(_GRAPH, graph=graph, build_index=True)
        for epsilon, mu in _WARM:  # fill the cache once
            client.cluster(_GRAPH, mu, epsilon, wait=300.0, labels=False)

        for concurrency in levels:
            # -- cached mix: repeat queries, zero σ work ----------------
            def cached_call(c: ServiceClient, i: int) -> None:
                epsilon, mu = _WARM[i % len(_WARM)]
                body = c.cluster(_GRAPH, mu, epsilon, labels=False)
                if not body.get("cached"):
                    raise AssertionError(
                        "warm query missed the cache; bench is mismeasuring"
                    )

            elapsed, latencies = _drive(
                server.url, concurrency, cached_requests, cached_call
            )
            throughput = len(latencies) / elapsed if elapsed > 0 else 0.0
            p50 = _percentile(latencies, 50.0) * 1e3
            p99 = _percentile(latencies, 99.0) * 1e3
            table.add_row(
                "cached", concurrency, len(latencies), throughput, p50, p99
            )
            json_levels.append(
                {
                    "mix": "cached",
                    "concurrency": concurrency,
                    "requests": len(latencies),
                    "throughput_rps": throughput,
                    "p50_ms": p50,
                    "p99_ms": p99,
                }
            )

            # -- indexed-job mix: distinct (ε, μ) anytime jobs ----------
            def job_call(c: ServiceClient, i: int) -> None:
                epsilon = 0.30 + 0.004 * (i % 100)
                mu = 2 + (i % 5)
                body = c.cluster(
                    _GRAPH, mu, epsilon, wait=300.0, labels=False
                )
                if body.get("state") != "done":
                    raise AssertionError(
                        f"job did not finish in time: {body}"
                    )

            elapsed, latencies = _drive(
                server.url, concurrency, job_requests, job_call
            )
            throughput = len(latencies) / elapsed if elapsed > 0 else 0.0
            p50 = _percentile(latencies, 50.0) * 1e3
            p99 = _percentile(latencies, 99.0) * 1e3
            table.add_row(
                "indexed-job",
                concurrency,
                len(latencies),
                throughput,
                p50,
                p99,
            )
            json_levels.append(
                {
                    "mix": "indexed-job",
                    "concurrency": concurrency,
                    "requests": len(latencies),
                    "throughput_rps": throughput,
                    "p50_ms": p50,
                    "p99_ms": p99,
                }
            )

        metrics = client.metrics()

    counters = dict(metrics.get("counters", {}))
    table.notes.append(
        "cached mix asserts every request is a cache hit "
        f"(hits={counters.get('cache_hits', 0)}, "
        f"sigma_evaluations={counters.get('sigma_evaluations', 0)} "
        "total across all jobs)"
    )
    table.notes.append(
        "indexed-job mix runs one anytime job per request over the "
        "prebuilt edge-similarity index"
    )

    payload = {
        "quick": bool(quick),
        "graph": {
            "n": int(graph.num_vertices),
            "m": int(graph.num_edges),
        },
        "levels": json_levels,
        "counters": counters,
    }
    out_dir = os.environ.get("REPRO_BENCH_DIR", ".")
    out_path = os.path.join(out_dir, "BENCH_service.json")
    with open(out_path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    table.notes.append(f"json written to {out_path}")
    return [table]
