"""Extension experiments beyond the paper's evaluation.

* ``ext_explorer`` — interactive parameter exploration: one σ-table
  precompute vs. re-running pSCAN for every (μ, ε) probe.
* ``ext_dynamic`` — incremental SCAN under an edge stream vs. periodic
  batch re-clustering.

Both quantify capabilities the paper motivates (interactivity; the
dynamic-network setting of its related work) but does not evaluate.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.bench.datasets import load_dataset
from repro.bench.harness import ExperimentResult, run_algorithm
from repro.core.explorer import ParameterExplorer
from repro.dynamic import AdjacencyGraph, DynamicSCAN

__all__ = ["ext_explorer", "ext_dynamic"]


def ext_explorer(
    scale: str = "bench", quick: bool = False
) -> List[ExperimentResult]:
    """Cost of a (μ, ε) grid: explorer vs. per-setting pSCAN runs."""
    use_scale = "tiny" if quick else scale
    graph = load_dataset("GR02", use_scale)
    mus = [3, 5] if quick else [3, 5, 8]
    epsilons = [0.4, 0.6] if quick else [0.3, 0.4, 0.5, 0.6, 0.7]

    explorer = ParameterExplorer(graph)
    panel = ExperimentResult(
        exp_id="ext_explorer",
        title=f"(μ, ε) grid on GR02: σ work per approach "
        f"({len(mus)}×{len(epsilons)} settings)",
        headers=["approach", "σ evaluations", "work-units"],
    )
    # Explorer: one precompute, every query free.
    for mu in mus:
        for eps in epsilons:
            explorer.clustering_at(mu, eps)
    panel.add_row(
        "ParameterExplorer",
        explorer.oracle.counters.sigma_evaluations,
        explorer.oracle.counters.work_units,
    )
    # Baseline: a fresh pSCAN per setting.
    total_evals = 0
    total_work = 0.0
    for mu in mus:
        for eps in epsilons:
            run = run_algorithm("pSCAN", graph, mu, eps)
            total_evals += run.sigma_evaluations
            total_work += run.work_units
    panel.add_row("pSCAN per setting", total_evals, total_work)
    panel.notes.append(
        "explorer answers every additional (μ, ε) probe with zero σ work"
    )
    return [panel]


def ext_dynamic(
    scale: str = "bench", quick: bool = False
) -> List[ExperimentResult]:
    """Edge-stream maintenance: incremental σ repairs vs batch re-runs."""
    use_scale = "tiny" if quick else scale
    graph = load_dataset("GR02", use_scale)
    edges = list(graph.edges())
    rng = np.random.default_rng(0)
    rng.shuffle(edges)
    stream = edges[: len(edges) // 4]  # the "new arrivals"
    base_edges = edges[len(edges) // 4 :]

    base = AdjacencyGraph(graph.num_vertices)
    for u, v, w in base_edges:
        base.add_edge(u, v, w)
    dyn = DynamicSCAN(base, 5, 0.5)
    init_cost = dyn.sigma_recomputations

    for u, v, w in stream:
        dyn.add_edge(u, v, w)
    incremental = dyn.sigma_recomputations - init_cost
    final = dyn.clustering()

    batch_run = run_algorithm("SCAN", graph, 5, 0.5)
    panel = ExperimentResult(
        exp_id="ext_dynamic",
        title=f"GR02: {len(stream):,d} edge insertions (μ=5, ε=0.5)",
        headers=["approach", "σ evaluations", "result clusters"],
    )
    panel.add_row(
        "incremental (fresh after every edge)", incremental,
        final.num_clusters,
    )
    panel.add_row(
        "batch SCAN once (final state only)",
        batch_run.sigma_evaluations,
        batch_run.clustering.num_clusters,
    )
    panel.add_row(
        "batch SCAN per edge (equivalent freshness)",
        batch_run.sigma_evaluations * len(stream),
        batch_run.clustering.num_clusters,
    )
    panel.notes.append(
        "per-update σ cost is O(deg(u) + deg(v)); the relabel on read is "
        "σ-free"
    )
    return [panel]
