"""Figure 12: Union-operation counts — anySCAN (per step) vs pSCAN vs |V|."""

from __future__ import annotations

from typing import Dict, List

from repro.bench.datasets import load_dataset
from repro.bench.harness import ExperimentResult
from repro.core import AnySCAN, AnyScanConfig
from repro.baselines import pscan
from repro.similarity.weighted import SimilarityConfig, SimilarityOracle

__all__ = ["fig12"]

_DATASETS = ["GR01", "GR02", "GR03", "GR04"]


def fig12(scale: str = "bench", quick: bool = False) -> List[ExperimentResult]:
    use_scale = "tiny" if quick else scale
    datasets = _DATASETS[:2] if quick else _DATASETS
    panel = ExperimentResult(
        exp_id="fig12",
        title="Union operations (μ=5, ε=0.5)",
        headers=[
            "dataset", "|V|", "pSCAN unions",
            "anySCAN unions", "step1", "step2", "step3",
            "|V| / anySCAN",
        ],
    )
    for name in datasets:
        graph = load_dataset(name, use_scale)
        stats: Dict[str, int] = {}
        pscan(
            graph, 5, 0.5,
            oracle=SimilarityOracle(graph, SimilarityConfig()),
            stats=stats,
        )
        algo = AnySCAN(
            graph, AnyScanConfig(mu=5, epsilon=0.5, record_costs=False,
                                 alpha=2048, beta=2048)
        )
        algo.run()
        astats = algo.statistics()
        by_step = astats["union_calls_by_step"]
        total = int(astats["union_calls"])
        panel.add_row(
            name,
            graph.num_vertices,
            int(stats["union_calls"]),
            total,
            int(by_step.get("step1", 0)),
            int(by_step.get("step2", 0)),
            int(by_step.get("step3", 0)),
            graph.num_vertices / max(total, 1),
        )
    panel.notes.append(
        "expected: anySCAN ≪ pSCAN ≪ |V|, with most anySCAN unions "
        "executed sequentially in Step 1 (outside critical sections)"
    )
    return [panel]
