"""Experiment registry: one entry per paper table/figure plus ablations."""

from typing import Callable, Dict, List

from repro.bench.experiments.ablations import (
    ablation_pruning,
    ablation_schedule,
    ablation_sorting,
)
from repro.bench.experiments.extensions import ext_dynamic, ext_explorer
from repro.bench.experiments.fig05 import fig5
from repro.bench.experiments.fig06 import fig6
from repro.bench.experiments.fig07 import fig7
from repro.bench.experiments.fig08 import fig8
from repro.bench.experiments.fig09 import fig9
from repro.bench.experiments.fig10 import fig10
from repro.bench.experiments.fig11 import fig11
from repro.bench.experiments.fig12 import fig12
from repro.bench.experiments.fig13 import fig13
from repro.bench.experiments.fig14 import fig14
from repro.bench.experiments.index_queries import index_queries
from repro.bench.experiments.kernels import kernels
from repro.bench.experiments.local_queries import local_queries
from repro.bench.experiments.recovery import recovery
from repro.bench.experiments.service import service
from repro.bench.experiments.speedup import speedup
from repro.bench.experiments.tables import tab1, tab2
from repro.bench.harness import ExperimentResult

__all__ = ["EXPERIMENTS", "run_experiment"]

#: Every reproducible artifact, keyed by experiment id.
EXPERIMENTS: Dict[str, Callable[..., List[ExperimentResult]]] = {
    "tab1": tab1,
    "tab2": tab2,
    "fig5": fig5,
    "fig6": fig6,
    "fig7": fig7,
    "fig8": fig8,
    "fig9": fig9,
    "fig10": fig10,
    "fig11": fig11,
    "fig12": fig12,
    "fig13": fig13,
    "fig14": fig14,
    "speedup": speedup,
    "kernels": kernels,
    "service": service,
    "recovery": recovery,
    "index_queries": index_queries,
    "local_queries": local_queries,
    "ablation_pruning": ablation_pruning,
    "ablation_sorting": ablation_sorting,
    "ablation_schedule": ablation_schedule,
    "ext_explorer": ext_explorer,
    "ext_dynamic": ext_dynamic,
}


def run_experiment(
    exp_id: str, *, scale: str = "bench", quick: bool = False
) -> List[ExperimentResult]:
    """Run one experiment by id and return its result tables."""
    from repro.errors import ExperimentError

    fn = EXPERIMENTS.get(exp_id)
    if fn is None:
        raise ExperimentError(
            f"unknown experiment {exp_id!r}; available: {sorted(EXPERIMENTS)}"
        )
    return fn(scale=scale, quick=quick)
