"""Ablation benches for the design choices DESIGN.md calls out.

* ``ablation_pruning`` — Lemma 5 filter + early exit on/off.
* ``ablation_sorting`` — Step 2/3 candidate sorting on/off.
* ``ablation_schedule`` — dynamic vs static scheduling in the simulator.
"""

from __future__ import annotations

from typing import List

from repro.bench.datasets import load_dataset
from repro.bench.harness import ExperimentResult
from repro.core import AnySCAN, AnyScanConfig
from repro.core.parallel import ParallelAnySCAN
from repro.parallel.simulator import MachineSpec
from repro.similarity.weighted import SimilarityConfig

__all__ = ["ablation_pruning", "ablation_sorting", "ablation_schedule"]

_MU, _EPS = 5, 0.5


def _run_config(graph, config: AnyScanConfig) -> dict:
    algo = AnySCAN(graph, config)
    algo.run()
    return algo.statistics()


def ablation_pruning(
    scale: str = "bench", quick: bool = False
) -> List[ExperimentResult]:
    """Section III-D optimizations: how much work does Lemma 5 save?"""
    use_scale = "tiny" if quick else scale
    panel = ExperimentResult(
        exp_id="ablation_pruning",
        title="anySCAN with/without Lemma 5 pruning (μ=5, ε=0.5)",
        headers=[
            "dataset", "pruning", "work-units", "σ-evals",
            "lemma5 prunes", "early exits",
        ],
    )
    for name in ["GR01", "GR02"] if quick else ["GR01", "GR02", "GR03"]:
        graph = load_dataset(name, use_scale)
        for pruning in (True, False):
            stats = _run_config(
                graph,
                AnyScanConfig(
                    mu=_MU, epsilon=_EPS, record_costs=False,
                    alpha=2048, beta=2048,
                    similarity=SimilarityConfig(pruning=pruning),
                ),
            )
            panel.add_row(
                name,
                "on" if pruning else "off",
                float(stats["work_units"]),
                int(stats["sigma_evaluations"]),
                int(stats["pruned_lemma5"]),
                int(stats["early_exits"]),
            )
    return [panel]


def ablation_sorting(
    scale: str = "bench", quick: bool = False
) -> List[ExperimentResult]:
    """Does sorting S (by |SN|) and T (by degree) save core checks?"""
    use_scale = "tiny" if quick else scale
    panel = ExperimentResult(
        exp_id="ablation_sorting",
        title="Step 2/3 candidate sorting on/off (μ=5, ε=0.5)",
        headers=["dataset", "sorting", "work-units", "σ-evals", "unions"],
    )
    for name in ["GR01"] if quick else ["GR01", "GR04"]:
        graph = load_dataset(name, use_scale)
        for sort in (True, False):
            stats = _run_config(
                graph,
                AnyScanConfig(
                    mu=_MU, epsilon=_EPS, record_costs=False,
                    alpha=2048, beta=2048, sort_candidates=sort,
                ),
            )
            panel.add_row(
                name,
                "on" if sort else "off",
                float(stats["work_units"]),
                int(stats["sigma_evaluations"]),
                int(stats["union_calls"]),
            )
    return [panel]


def ablation_schedule(
    scale: str = "bench", quick: bool = False
) -> List[ExperimentResult]:
    """Dynamic vs static OpenMP scheduling under skewed task costs."""
    use_scale = "tiny" if quick else scale
    panel = ExperimentResult(
        exp_id="ablation_schedule",
        title="simulator scheduling policy: final speedup at 8/16 threads",
        headers=["dataset", "schedule", "t=8", "t=16"],
    )
    for name in ["GR02"] if quick else ["GR02", "GR05"]:
        graph = load_dataset(name, use_scale)
        for schedule in ("dynamic", "static"):
            par = ParallelAnySCAN(
                graph,
                AnyScanConfig(
                    mu=_MU, epsilon=_EPS,
                    alpha=max(graph.num_vertices // 8, 128),
                    beta=max(graph.num_vertices // 8, 128),
                ),
                machine=MachineSpec(threads=1, schedule=schedule),
            )
            par.run()
            s = par.speedups([8, 16])
            panel.add_row(name, schedule, s[8], s[16])
    panel.notes.append(
        "expected: dynamic scheduling beats static on skewed-degree "
        "graphs (the reason Figure 4 uses schedule(dynamic))"
    )
    return [panel]
