"""Figure 10: anytime cumulative runtimes per thread count + final speedups.

Left: cumulative simulated runtime after each anytime iteration for 1–16
threads.  Right: final speedup over the single-thread run.
"""

from __future__ import annotations

from typing import List

from repro.bench.datasets import load_dataset
from repro.bench.harness import ExperimentResult
from repro.core import AnyScanConfig
from repro.core.parallel import ParallelAnySCAN
from repro.validation import check_eps_mu

__all__ = ["fig10", "parallel_run"]

_DATASETS = ["GR01", "GR02", "GR03", "GR04"]
_THREADS = [1, 2, 4, 8, 16]


def parallel_run(graph, *, mu: int = 5, eps: float = 0.5, seed: int = 0,
                 alpha: int | None = None) -> ParallelAnySCAN:
    """One executed ParallelAnySCAN with the multicore default block size."""
    check_eps_mu(mu=mu, epsilon=eps)
    block = alpha if alpha is not None else max(graph.num_vertices // 8, 128)
    par = ParallelAnySCAN(
        graph,
        AnyScanConfig(mu=mu, epsilon=eps, alpha=block, beta=block, seed=seed),
    )
    par.run()
    return par


def fig10(scale: str = "bench", quick: bool = False) -> List[ExperimentResult]:
    use_scale = "tiny" if quick else scale
    datasets = _DATASETS[:2] if quick else _DATASETS
    results: List[ExperimentResult] = []

    final = ExperimentResult(
        exp_id="fig10",
        title="final speedup vs threads (μ=5, ε=0.5)",
        headers=["dataset"] + [f"t={t}" for t in _THREADS],
    )
    for name in datasets:
        graph = load_dataset(name, use_scale)
        par = parallel_run(graph)

        cumulative = ExperimentResult(
            exp_id="fig10",
            title=f"{name}: cumulative simulated time per iteration",
            headers=["iteration", "step"] + [f"t={t}" for t in _THREADS],
        )
        reports = {t: par.report(t) for t in _THREADS}
        for i, step in enumerate(reports[1].steps):
            cumulative.add_row(
                i, step, *(reports[t].time_at_iteration(i) for t in _THREADS)
            )
        results.append(cumulative)

        speedups = par.speedups(_THREADS)
        final.add_row(name, *(speedups[t] for t in _THREADS))
    final.notes.append(
        "expected: near-linear for dense graphs; degradation past 8 "
        "threads from the NUMA penalty; sparser graphs scale worse"
    )
    results.append(final)
    return results
