"""Figure 7: σ-evaluation counts per algorithm and vertex composition.

Left panel: number of structural-similarity evaluations for every
algorithm on every dataset (SCAN++ split into true vs. sharing).  Right
panel: how many vertices end up cores, borders, and hubs/outliers.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.bench.datasets import load_dataset
from repro.bench.harness import ALGORITHMS, ExperimentResult, run_algorithm
from repro.result import VertexRole

__all__ = ["fig7"]

_DATASETS = ["GR01", "GR02", "GR03", "GR04", "GR05"]
_MU, _EPS = 5, 0.5


def fig7(scale: str = "bench", quick: bool = False) -> List[ExperimentResult]:
    datasets = _DATASETS[:2] if quick else _DATASETS
    use_scale = "tiny" if quick else scale

    counts = ExperimentResult(
        exp_id="fig7",
        title=f"σ evaluations per algorithm (μ={_MU}, ε={_EPS})",
        headers=["dataset"]
        + list(ALGORITHMS)
        + ["SCAN++ true", "SCAN++ sharing"],
    )
    composition = ExperimentResult(
        exp_id="fig7",
        title="vertex composition (cores / borders / hubs+outliers)",
        headers=["dataset", "cores", "borders", "hubs+outliers"],
    )
    for name in datasets:
        graph = load_dataset(name, use_scale)
        row = [name]
        scanpp_true = scanpp_sharing = 0.0
        reference = None
        for alg in ALGORITHMS:
            run = run_algorithm(alg, graph, _MU, _EPS)
            row.append(run.sigma_evaluations)
            if alg == "SCAN++":
                scanpp_true = run.extra.get("true_evaluations", 0.0)
                scanpp_sharing = run.extra.get("sharing_evaluations", 0.0)
            if alg == "SCAN":
                reference = run.clustering
        row.extend([int(scanpp_true), int(scanpp_sharing)])
        counts.add_row(*row)

        assert reference is not None and reference.roles is not None
        roles = reference.roles
        composition.add_row(
            name,
            int(np.sum(roles == int(VertexRole.CORE))),
            int(np.sum(roles == int(VertexRole.BORDER))),
            int(
                np.sum(
                    (roles == int(VertexRole.HUB))
                    | (roles == int(VertexRole.OUTLIER))
                )
            ),
        )
    counts.notes.append(
        "expected shape: anySCAN ≈ pSCAN ≪ SCAN; SCAN++ sharing "
        "correlates with the number of cores"
    )
    return [counts, composition]
