"""Figure 14: parallel scalability on the synthetic LFR sweeps."""

from __future__ import annotations

from typing import List

from repro.bench.datasets import load_dataset
from repro.bench.harness import ExperimentResult
from repro.bench.experiments.fig10 import parallel_run
from repro.graph.stats import average_clustering, average_degree

__all__ = ["fig14"]

_THREADS = [4, 8, 16]


def _panel(names: List[str], x_label: str, scale: str) -> ExperimentResult:
    panel = ExperimentResult(
        exp_id="fig14",
        title=f"LFR scalability vs {x_label} (μ=5, ε=0.5)",
        headers=["dataset", x_label] + [f"t={t}" for t in _THREADS],
    )
    for name in names:
        graph = load_dataset(name, scale)
        x = (
            average_degree(graph)
            if x_label == "d̄"
            else average_clustering(graph, sample=1200, seed=0)
        )
        par = parallel_run(graph)
        s = par.speedups(_THREADS)
        panel.add_row(name, x, *(s[t] for t in _THREADS))
    return panel


def fig14(scale: str = "bench", quick: bool = False) -> List[ExperimentResult]:
    use_scale = "tiny" if quick else scale
    degree_names = ["LFR01", "LFR05"] if quick else [
        "LFR01", "LFR02", "LFR03", "LFR04", "LFR05"
    ]
    cc_names = ["LFR11", "LFR15"] if quick else [
        "LFR11", "LFR12", "LFR13", "LFR14", "LFR15"
    ]
    left = _panel(degree_names, "d̄", use_scale)
    right = _panel(cc_names, "c", use_scale)
    left.notes.append(
        "expected: scalability improves with average degree (more work "
        "per task) and mildly degrades with clustering coefficient "
        "(more Step 2/3 conflicts)"
    )
    return [left, right]
