"""Plain-text charts for the bench CLI.

The harness prints tables; for the curve-shaped artifacts (Figure 5's
NMI-over-time, Figure 10's speedups) a picture helps.  These renderers
draw dependency-free ASCII charts sized for a terminal.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.errors import ExperimentError

__all__ = ["sparkline", "line_chart", "bar_chart"]

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """One-line sparkline of a numeric series."""
    values = [float(v) for v in values]
    if not values:
        return ""
    lo, hi = min(values), max(values)
    span = hi - lo
    if span <= 0:
        return _SPARK_LEVELS[0] * len(values)
    out = []
    for v in values:
        idx = int((v - lo) / span * (len(_SPARK_LEVELS) - 1))
        out.append(_SPARK_LEVELS[idx])
    return "".join(out)


def bar_chart(
    rows: Sequence[Tuple[str, float]],
    *,
    width: int = 40,
    unit: str = "",
) -> str:
    """Horizontal bar chart: one labeled bar per (label, value) row."""
    if not rows:
        return "(no data)"
    if width < 1:
        raise ExperimentError("width must be positive")
    peak = max(value for _, value in rows)
    label_width = max(len(label) for label, _ in rows)
    lines: List[str] = []
    for label, value in rows:
        filled = int(round(width * value / peak)) if peak > 0 else 0
        bar = "█" * filled
        lines.append(
            f"{label:<{label_width}s} {bar:<{width}s} {value:,.2f}{unit}"
        )
    return "\n".join(lines)


def line_chart(
    xs: Sequence[float],
    ys: Sequence[float],
    *,
    width: int = 60,
    height: int = 12,
    x_label: str = "",
    y_label: str = "",
) -> str:
    """ASCII scatter/line chart of y over x.

    Points map to a ``height``×``width`` character grid; the y axis is
    annotated with the min/max, the x axis with its range.
    """
    if len(xs) != len(ys):
        raise ExperimentError("xs and ys must be parallel")
    if not xs:
        return "(no data)"
    if width < 2 or height < 2:
        raise ExperimentError("chart must be at least 2x2")
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for x, y in zip(xs, ys):
        col = int((float(x) - x_lo) / x_span * (width - 1))
        row = int((float(y) - y_lo) / y_span * (height - 1))
        grid[height - 1 - row][col] = "•"
    lines: List[str] = []
    top_label = f"{y_hi:,.3g}"
    bottom_label = f"{y_lo:,.3g}"
    margin = max(len(top_label), len(bottom_label), len(y_label))
    for i, row_chars in enumerate(grid):
        if i == 0:
            prefix = top_label.rjust(margin)
        elif i == height - 1:
            prefix = bottom_label.rjust(margin)
        elif i == height // 2 and y_label:
            prefix = y_label.rjust(margin)
        else:
            prefix = " " * margin
        lines.append(f"{prefix} │{''.join(row_chars)}")
    axis = " " * margin + " └" + "─" * width
    lines.append(axis)
    x_caption = f"{x_lo:,.3g} … {x_hi:,.3g}"
    if x_label:
        x_caption += f"  ({x_label})"
    lines.append(" " * (margin + 2) + x_caption)
    return "\n".join(lines)
