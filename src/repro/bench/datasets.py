"""Dataset registry: scaled-down analogs of the paper's graphs.

The paper evaluates on five real graphs (Table I) and ten LFR graphs
(Table II).  Neither is available offline, so this registry generates
synthetic analogs matched on each dataset's *regime* — average degree and
clustering coefficient band, degree skew — at a size a pure-Python
implementation can sweep (see DESIGN.md §3).  Every analog records the
paper's original statistics next to its own measured ones, and the
``tab1``/``tab2`` experiments print both.

Graphs are deterministic given the name and scale, and cached on disk
(``.bench_cache/``) so repeated bench runs don't regenerate them.
"""

from __future__ import annotations

import os
import tempfile
import zipfile
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ExperimentError
from repro.graph.csr import Graph
from repro.graph.generators.lfr import LFRParams, lfr_graph, tune_clustering
from repro.graph.generators.random_graphs import relaxed_caveman_graph
from repro.graph.generators.rmat import rmat_graph
from repro.graph.stats import summarize

__all__ = ["DatasetSpec", "DATASETS", "load_dataset", "dataset_names", "clear_cache"]

_CACHE_DIR = Path(__file__).resolve().parents[3] / ".bench_cache"

#: Size multiplier per scale; "tiny" is for tests, "bench" for the harness.
_SCALES = {"tiny": 0.25, "bench": 1.0, "large": 3.0}


@dataclass(frozen=True)
class DatasetSpec:
    """One analog dataset and the paper row it stands in for."""

    name: str
    paper_name: str
    paper_vertices: int
    paper_edges: int
    paper_avg_degree: float
    paper_clustering: float
    description: str
    factory: Callable[[float], Graph]

    def build(self, scale: str = "bench") -> Graph:
        if scale not in _SCALES:
            raise ExperimentError(
                f"unknown scale {scale!r}; use one of {sorted(_SCALES)}"
            )
        return self.factory(_SCALES[scale])


def _lfr(
    scale_factor: float,
    *,
    n: int,
    avg_deg: float,
    max_deg: int,
    mixing: float,
    seed: int,
    clustering_target: float | None = None,
) -> Graph:
    size = max(int(n * scale_factor), 200)
    params = LFRParams(
        n=size,
        average_degree=avg_deg,
        # Keep the tail realizable at small scales: the largest community
        # must fit the largest internal degree.
        max_degree=min(max_deg, max(size // 5, int(2 * avg_deg))),
        mixing=mixing,
        seed=seed,
    )
    graph, _ = lfr_graph(params)
    if clustering_target is not None:
        # Configuration-model communities are triangle-poor; the
        # degree-preserving triad rewiring moves the clustering
        # coefficient into the paper dataset's regime (DESIGN.md §3).
        graph = tune_clustering(
            graph,
            clustering_target,
            seed=seed,
            max_swaps=10 * graph.num_edges,
            sample=500,
        )
    return graph


def _gr01(scale_factor: float) -> Graph:
    # ego-Gplus: dense overlapping social circles, very high clustering.
    num_cliques = max(int(56 * scale_factor), 8)
    return relaxed_caveman_graph(num_cliques, 36, 0.18, seed=101)


def _gr02(scale_factor: float) -> Graph:
    # soc-LiveJournal1: sparse, moderate clustering, skewed degrees.
    return _lfr(
        scale_factor, n=4200, avg_deg=14, max_deg=35, mixing=0.18,
        seed=102, clustering_target=0.27,
    )


def _gr03(scale_factor: float) -> Graph:
    # soc-Pokec: sparse, *low* clustering coefficient.
    return _lfr(
        scale_factor, n=4200, avg_deg=18, max_deg=40, mixing=0.25,
        seed=103, clustering_target=0.16,
    )


def _gr04(scale_factor: float) -> Graph:
    # com-Orkut: denser, medium clustering.
    return _lfr(
        scale_factor, n=2800, avg_deg=38, max_deg=64, mixing=0.20, seed=104
    )


def _gr05(scale_factor: float) -> Graph:
    # kron_g500-logn21: stochastic Kronecker; heavy-tailed, high degree.
    scale = 11 if scale_factor >= 1.0 else 10
    if scale_factor >= 3.0:
        scale = 12
    return rmat_graph(scale, 14, seed=105, noise=0.15)


def _make_lfr_degree_spec(index: int, avg_deg: float) -> DatasetSpec:
    paper_edges = int(1_000_000 * avg_deg / 2 * 4.45)  # rough Table II scale
    return DatasetSpec(
        name=f"LFR0{index}",
        paper_name=f"LFR0{index}",
        paper_vertices=1_000_000,
        paper_edges=paper_edges,
        paper_avg_degree=44.567 + (index - 1) * 5.1,
        paper_clustering=0.40,
        description=f"LFR degree sweep point {index} (d̄ target {avg_deg})",
        factory=lambda s, d=avg_deg, i=index: _lfr(
            s, n=3000, avg_deg=d, max_deg=int(2.5 * d), mixing=0.18,
            seed=200 + i, clustering_target=0.25,
        ),
    )


def _make_lfr_cc_spec(index: int, cc_target: float, paper_cc: float) -> DatasetSpec:
    return DatasetSpec(
        name=f"LFR1{index}",
        paper_name=f"LFR1{index}",
        paper_vertices=1_000_000,
        paper_edges=25_064_820,
        paper_avg_degree=50.129,
        paper_clustering=paper_cc,
        description=(
            f"LFR clustering-coefficient sweep point {index} "
            f"(triad-tuned toward c≈{cc_target}; paper c={paper_cc})"
        ),
        factory=lambda s, t=cc_target, i=index: _lfr(
            s, n=3000, avg_deg=14, max_deg=40, mixing=0.22,
            seed=300 + i, clustering_target=t,
        ),
    )


DATASETS: Dict[str, DatasetSpec] = {
    "GR01": DatasetSpec(
        name="GR01",
        paper_name="ego-Gplus",
        paper_vertices=107_614,
        paper_edges=13_673_453,
        paper_avg_degree=127.06,
        paper_clustering=0.4901,
        description="dense overlapping social circles (relaxed caveman)",
        factory=_gr01,
    ),
    "GR02": DatasetSpec(
        name="GR02",
        paper_name="soc-LiveJournal1",
        paper_vertices=4_847_571,
        paper_edges=68_993_773,
        paper_avg_degree=14.23,
        paper_clustering=0.2742,
        description="sparse skewed social graph (LFR, low mixing)",
        factory=_gr02,
    ),
    "GR03": DatasetSpec(
        name="GR03",
        paper_name="soc-Pokec",
        paper_vertices=1_632_803,
        paper_edges=30_622_564,
        paper_avg_degree=18.75,
        paper_clustering=0.1094,
        description="sparse low-clustering social graph (LFR, high mixing)",
        factory=_gr03,
    ),
    "GR04": DatasetSpec(
        name="GR04",
        paper_name="com-Orkut",
        paper_vertices=3_072_441,
        paper_edges=117_185_083,
        paper_avg_degree=38.14,
        paper_clustering=0.1666,
        description="denser community graph (LFR)",
        factory=_gr04,
    ),
    "GR05": DatasetSpec(
        name="GR05",
        paper_name="kron_g500-logn21",
        paper_vertices=2_097_152,
        paper_edges=182_082_942,
        paper_avg_degree=86.82,
        paper_clustering=0.1649,
        description="stochastic Kronecker / R-MAT heavy tail",
        factory=_gr05,
    ),
}

for _i, _d in enumerate([10.0, 12.0, 14.0, 16.0, 18.0], start=1):
    _spec = _make_lfr_degree_spec(_i, _d)
    DATASETS[_spec.name] = _spec
for _i, (_t, _cc) in enumerate(
    [(0.08, 0.2012), (0.13, 0.3029), (0.18, 0.4168), (0.23, 0.5012), (0.28, 0.6003)],
    start=1,
):
    _spec = _make_lfr_cc_spec(_i, _t, _cc)
    DATASETS[_spec.name] = _spec


def dataset_names(kind: str = "all") -> List[str]:
    """Names in the registry: ``"real"`` (GR), ``"lfr"``, or ``"all"``."""
    if kind == "real":
        return [n for n in DATASETS if n.startswith("GR")]
    if kind == "lfr":
        return [n for n in DATASETS if n.startswith("LFR")]
    if kind == "all":
        return list(DATASETS)
    raise ExperimentError(f"unknown dataset kind {kind!r}")


def load_dataset(name: str, scale: str = "bench") -> Graph:
    """Build (or load from cache) one analog dataset."""
    spec = DATASETS.get(name)
    if spec is None:
        raise ExperimentError(
            f"unknown dataset {name!r}; available: {sorted(DATASETS)}"
        )
    cache_file = _CACHE_DIR / f"{name}-{scale}.npz"
    graph = _load_cached(cache_file)
    if graph is not None:
        return graph
    graph = spec.build(scale)
    _store_cached(cache_file, graph)
    return graph


def _load_cached(cache_file: Path) -> Optional[Graph]:
    """Read one cache entry, treating any corruption as a miss."""
    if not cache_file.exists():
        return None
    try:
        with np.load(cache_file) as data:
            return Graph(
                data["indptr"], data["indices"], data["weights"],
                validate=False,
            )
    except (zipfile.BadZipFile, OSError, KeyError, ValueError, EOFError):
        # Truncated download, interrupted write, wrong schema: rebuild.
        try:
            cache_file.unlink()
        except OSError:
            pass
        return None


def _store_cached(cache_file: Path, graph: Graph) -> None:
    """Best-effort cache write; atomic so readers never see half a file."""
    try:
        _CACHE_DIR.mkdir(exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=_CACHE_DIR, prefix=cache_file.stem, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                np.savez_compressed(
                    handle,
                    indptr=graph.indptr,
                    indices=graph.indices,
                    weights=graph.weights,
                )
            os.replace(tmp_name, cache_file)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
    except OSError:
        pass  # caching is best-effort


def clear_cache() -> None:
    """Delete all cached dataset files."""
    if _CACHE_DIR.exists():
        for path in _CACHE_DIR.glob("*.npz"):
            path.unlink()


def dataset_table(scale: str = "bench", kind: str = "real") -> List[Tuple]:
    """Rows of (name, paper stats, measured stats) for the tab1/tab2 benches."""
    rows = []
    for name in dataset_names(kind):
        spec = DATASETS[name]
        graph = load_dataset(name, scale)
        measured = summarize(graph, clustering_sample=1500, seed=0)
        rows.append((spec, measured))
    return rows
