"""CLI for regenerating the paper's tables and figures.

Usage::

    python -m repro.bench fig5            # one experiment at bench scale
    python -m repro.bench all --quick     # everything, reduced size
    python -m repro.bench --list          # available experiment ids
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.bench.experiments import EXPERIMENTS, run_experiment
from repro.errors import BenchError, ExperimentError


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the anySCAN paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        default=None,
        help="experiment id (e.g. fig5, tab1, ablation_pruning) or 'all'",
    )
    parser.add_argument(
        "--scale",
        choices=["tiny", "bench", "large"],
        default="bench",
        help="dataset scale (default: bench)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="reduced parameter grids and tiny datasets",
    )
    parser.add_argument(
        "--list", action="store_true", help="list experiment ids and exit"
    )
    parser.add_argument(
        "--chart",
        action="store_true",
        help="render ASCII charts for curve-shaped tables (NMI curves, "
        "speedups)",
    )
    args = parser.parse_args(argv)

    if args.list or args.experiment is None:
        print("available experiments:")
        for exp_id in EXPERIMENTS:
            print(f"  {exp_id}")
        return 0

    ids = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for exp_id in ids:
        started = time.perf_counter()
        try:
            results = run_experiment(exp_id, scale=args.scale, quick=args.quick)
            for result in results:
                print(result.render())
                if args.chart:
                    chart = _chart_for(result)
                    if chart:
                        print(chart)
                print()
        except ExperimentError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        print(
            f"[{exp_id} finished in {time.perf_counter() - started:.1f}s]\n"
        )
    return 0


def _chart_for(result) -> str | None:
    """Pick an ASCII chart matching the table's shape, if any."""
    from repro.bench.charts import line_chart, sparkline

    headers = list(result.headers)
    if not result.rows:
        return None
    if "NMI" in headers and "work-units" in headers:
        xs = result.column("work-units")
        ys = result.column("NMI")
        return line_chart(
            xs, ys, width=60, height=10,
            x_label="work units", y_label="NMI",
        )
    thread_cols = [h for h in headers if str(h).startswith("t=")]
    if thread_cols and len(result.rows) >= 1:
        lines = []
        for row_num, row in enumerate(result.rows, start=1):
            if len(row) != len(headers):
                # dict(zip(...)) would silently drop or misalign cells.
                raise BenchError(
                    f"table {result.title!r} row {row_num} has "
                    f"{len(row)} cell(s) but {len(headers)} header(s); "
                    f"cannot chart a ragged table"
                )
            by_name = dict(zip(headers, row))
            series = [float(by_name[c]) for c in thread_cols]
            label = " ".join(
                str(by_name[h]) for h in headers if h not in thread_cols
            )
            lines.append(f"  {sparkline(series)}  {label}")
        return "speedup trend over " + ", ".join(thread_cols) + ":\n" + \
            "\n".join(lines)
    return None


if __name__ == "__main__":
    raise SystemExit(main())
