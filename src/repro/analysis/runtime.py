"""Runtime sanitizers — the dynamic half of rules R1 and R7.

The static rules in :mod:`repro.analysis` prove the *shape* of worker
code; this module cross-checks the *behaviour*:

* :class:`ShadowArray` / :class:`ShadowWriteLog` (R1): wrap a shared
  numpy array, run the workload on a real backend, and ask the log for
  races.  A **simulated race** is any array cell written by two or
  more distinct threads where not every write went through a declared
  atomic/critical helper — under the GIL such writes happen to
  serialize, but on a free-threaded build (or after a C rewrite of the
  kernels) they are genuine data races, which is exactly what the
  paper's one-atomic/one-critical budget rules out.

* :class:`LockOrderWatch` (R7): record the lock-acquisition order DAG
  as the program actually runs.  Wrap each lock with
  :meth:`LockOrderWatch.wrap` (or arm the declared helpers via
  :func:`repro.parallel.sync.set_lock_order_watch`) and every
  ``A-held-while-acquiring-B`` event becomes an edge; a cycle in that
  graph is a potential ABBA deadlock even if this run got lucky with
  timing.  ``strict=True`` raises :class:`LockOrderViolation` at the
  acquisition that would close the cycle.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.parallel.sync import in_guarded_section

__all__ = [
    "WriteRecord",
    "Race",
    "ShadowWriteLog",
    "ShadowArray",
    "LockOrderViolation",
    "LockOrderWatch",
    "WatchedLock",
]


@dataclass(frozen=True)
class WriteRecord:
    """One observed write to a shadowed array."""

    array: str
    index: object
    thread_id: int
    guarded: bool


@dataclass(frozen=True)
class Race:
    """One cell with multi-thread writes not fully guarded."""

    array: str
    index: object
    thread_ids: Tuple[int, ...]
    unguarded_writes: int

    def describe(self) -> str:
        return (
            f"{self.array}[{self.index!r}] written by "
            f"{len(self.thread_ids)} threads with "
            f"{self.unguarded_writes} unguarded write(s)"
        )


class ShadowWriteLog:
    """Thread-safe log of writes across any number of shadow arrays."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._records: List[WriteRecord] = []

    def record(self, array: str, index: object, guarded: bool) -> None:
        record = WriteRecord(
            array=array,
            index=index,
            thread_id=threading.get_ident(),
            guarded=guarded,
        )
        with self._lock:
            self._records.append(record)

    @property
    def records(self) -> List[WriteRecord]:
        with self._lock:
            return list(self._records)

    def races(self) -> List[Race]:
        """Cells written by ≥2 threads with at least one unguarded write."""
        cells: Dict[Tuple[str, object], List[WriteRecord]] = {}
        for record in self.records:
            cells.setdefault((record.array, record.index), []).append(record)
        out: List[Race] = []
        for (array, index), writes in sorted(
            cells.items(), key=lambda item: (item[0][0], repr(item[0][1]))
        ):
            threads = tuple(sorted({w.thread_id for w in writes}))
            unguarded = sum(1 for w in writes if not w.guarded)
            if len(threads) >= 2 and unguarded:
                out.append(
                    Race(
                        array=array,
                        index=index,
                        thread_ids=threads,
                        unguarded_writes=unguarded,
                    )
                )
        return out

    def assert_race_free(self) -> None:
        races = self.races()
        if races:
            details = "; ".join(race.describe() for race in races)
            raise AssertionError(f"unguarded concurrent writes: {details}")


def _canonical(index: object) -> object:
    """Hashable, stable form of a numpy/py index expression."""
    if isinstance(index, tuple):
        return tuple(_canonical(part) for part in index)
    if isinstance(index, slice):
        return ("slice", index.start, index.stop, index.step)
    if isinstance(index, np.ndarray):
        return ("array",) + tuple(index.ravel().tolist())
    if isinstance(index, (np.integer, np.bool_)):
        return index.item()
    return index


class ShadowArray:
    """Numpy array wrapper that records every ``__setitem__``.

    Reads pass straight through; writes are logged with the calling
    thread and whether a declared atomic/critical helper was active
    (:func:`repro.parallel.sync.in_guarded_section`).  The wrapper is
    intentionally *not* an ndarray subclass so that only explicit
    element writes are observable — exactly the events the R1 budget
    talks about.
    """

    def __init__(
        self,
        array: np.ndarray,
        log: ShadowWriteLog,
        name: str = "shared",
    ) -> None:
        self.array = array
        self.log = log
        self.name = name

    def __getitem__(self, index):
        return self.array[index]

    def __setitem__(self, index, value) -> None:
        self.log.record(self.name, _canonical(index), in_guarded_section())
        self.array[index] = value

    def __len__(self) -> int:
        return len(self.array)

    def __array__(self, dtype=None):
        return np.asarray(self.array, dtype=dtype)

    @property
    def shape(self):
        return self.array.shape

    @property
    def dtype(self):
        return self.array.dtype


class LockOrderViolation(RuntimeError):
    """A lock acquisition closed a cycle in the acquisition-order graph."""


class LockOrderWatch:
    """Runtime lock-order sanitizer — the dynamic half of rule R7.

    Each thread keeps a stack of watched locks it currently holds;
    acquiring lock ``B`` while holding ``A`` adds the directed edge
    ``A → B`` to a process-wide graph.  The graph must stay acyclic:
    a cycle means two code paths disagree about acquisition order, so
    the right interleaving deadlocks — even if the observed run did
    not.  With ``strict=True`` the acquisition that would close a
    cycle raises :class:`LockOrderViolation` immediately (before
    blocking on the lock); otherwise violations accumulate and
    :meth:`assert_acyclic` reports them at the end of the run.

    ``threading.Condition`` wait/notify re-acquisition of the *same*
    lock carries no ordering information and is deliberately invisible
    to the watch (see :class:`WatchedLock`).
    """

    def __init__(self, strict: bool = False) -> None:
        self.strict = strict
        self._mutex = threading.Lock()
        #: first lock name -> {second lock name -> first-observed site}
        self._edges: Dict[str, Dict[str, str]] = {}
        self._held = threading.local()
        self.violations: List[str] = []

    # -- lock instrumentation -------------------------------------------
    def wrap(self, lock, name: str) -> "WatchedLock":
        """Proxy ``lock`` so its acquire/release report to this watch."""
        return WatchedLock(lock, name, self)

    def _stack(self) -> List[str]:
        stack = getattr(self._held, "stack", None)
        if stack is None:
            stack = []
            self._held.stack = stack
        return stack

    def notify_acquire(self, name: str) -> None:
        """Record edges held-locks→``name``; raise in strict mode on cycle.

        Called *before* blocking on the lock so a strict watch fails
        fast instead of deadlocking the test that armed it.
        """
        stack = self._stack()
        cycle: Optional[List[str]] = None
        message = ""
        with self._mutex:
            inserted: List[str] = []
            for held in stack:
                if held == name:
                    continue  # re-entrant acquire: no ordering info
                seconds = self._edges.setdefault(held, {})
                if name not in seconds:
                    seconds[name] = self._call_site()
                    inserted.append(held)
            cycle = self._find_cycle_through(name)
            if cycle is not None:
                message = (
                    "lock-order cycle "
                    + " -> ".join(cycle)
                    + " (held: "
                    + (", ".join(stack) or "none")
                    + f"; acquiring: {name})"
                )
                if message not in self.violations:
                    self.violations.append(message)
                # Roll back the edges that closed the cycle: the
                # violation is recorded, and keeping the graph acyclic
                # means one bad ordering reports once instead of
                # tripping every later touch of the locks involved.
                for held in inserted:
                    self._edges[held].pop(name, None)
        if cycle is not None and self.strict:
            raise LockOrderViolation(message)
        stack.append(name)

    def notify_release(self, name: str) -> None:
        stack = self._stack()
        for i in range(len(stack) - 1, -1, -1):
            if stack[i] == name:
                del stack[i]
                break

    # -- graph queries ---------------------------------------------------
    def edges(self) -> Set[Tuple[str, str]]:
        with self._mutex:
            return {
                (first, second)
                for first, seconds in self._edges.items()
                for second in seconds
            }

    def assert_acyclic(self) -> None:
        """Raise :class:`LockOrderViolation` if any cycle was observed."""
        with self._mutex:
            violations = list(self.violations)
        if violations:
            raise LockOrderViolation("; ".join(violations))

    def _call_site(self) -> str:
        # Cheap placeholder: thread name is enough to tell two worker
        # populations apart in a report; a full stack walk would cost
        # more than the locks being watched.
        return threading.current_thread().name

    def _find_cycle_through(self, name: str) -> Optional[List[str]]:
        """A cycle containing ``name`` in the edge graph, if any."""
        # Graphs here are a handful of nodes; a DFS per acquire is
        # cheaper than maintaining an incremental SCC structure.
        path: List[str] = []
        on_path: Set[str] = set()
        visited: Set[str] = set()

        def dfs(node: str) -> Optional[List[str]]:
            path.append(node)
            on_path.add(node)
            for succ in self._edges.get(node, ()):
                if succ == name and len(path) > 0 and node != name:
                    if path[0] == name:
                        return path + [name]
                if succ in on_path:
                    continue
                if succ in visited:
                    continue
                found = dfs(succ)
                if found is not None:
                    return found
            path.pop()
            on_path.discard(node)
            visited.add(node)
            return None

        return dfs(name)


class WatchedLock:
    """Explicit-delegation lock proxy reporting to a :class:`LockOrderWatch`.

    Only ``acquire``/``release``/``locked`` and the context-manager
    protocol are proxied — deliberately no ``__getattr__`` fallback.
    When the underlying lock exposes ``threading.Condition``'s private
    hooks (``_is_owned``, ``_release_save``, ``_acquire_restore``) they
    are re-exported unwrapped, so a Condition built on a watched RLock
    waits and notifies without the watch seeing the same-lock
    re-acquire (which carries no ordering information anyway).
    """

    def __init__(self, lock, name: str, watch: LockOrderWatch) -> None:
        self.lock = lock
        self.name = name
        self.watch = watch
        for hook in ("_is_owned", "_release_save", "_acquire_restore"):
            inner = getattr(lock, hook, None)
            if inner is not None:
                setattr(self, hook, inner)

    def acquire(self, *args, **kwargs):
        self.watch.notify_acquire(self.name)
        try:
            acquired = self.lock.acquire(*args, **kwargs)
        except BaseException:
            self.watch.notify_release(self.name)
            raise
        if not acquired:
            # Non-blocking attempt that lost: we never held it.
            self.watch.notify_release(self.name)
        return acquired

    def release(self) -> None:
        self.lock.release()
        self.watch.notify_release(self.name)

    def locked(self) -> bool:
        locked = getattr(self.lock, "locked", None)
        return bool(locked()) if locked is not None else False

    def __enter__(self):
        self.acquire()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.release()

    def __repr__(self) -> str:
        return f"WatchedLock({self.name!r}, {self.lock!r})"
