"""Runtime shadow-write checker — the dynamic half of rule R1.

The static rule in :mod:`repro.analysis.rules.concurrency` proves the
*shape* of worker code; this module cross-checks the *behaviour*:
wrap a shared numpy array in :class:`ShadowArray`, run the workload on
a real :class:`~repro.parallel.threads.ThreadBackend`, and ask the
:class:`ShadowWriteLog` for races.  A **simulated race** is any array
cell written by two or more distinct threads where not every write
went through a declared atomic/critical helper — under the GIL such
writes happen to serialize, but on a free-threaded build (or after a C
rewrite of the kernels) they are genuine data races, which is exactly
what the paper's one-atomic/one-critical budget rules out.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.parallel.sync import in_guarded_section

__all__ = ["WriteRecord", "Race", "ShadowWriteLog", "ShadowArray"]


@dataclass(frozen=True)
class WriteRecord:
    """One observed write to a shadowed array."""

    array: str
    index: object
    thread_id: int
    guarded: bool


@dataclass(frozen=True)
class Race:
    """One cell with multi-thread writes not fully guarded."""

    array: str
    index: object
    thread_ids: Tuple[int, ...]
    unguarded_writes: int

    def describe(self) -> str:
        return (
            f"{self.array}[{self.index!r}] written by "
            f"{len(self.thread_ids)} threads with "
            f"{self.unguarded_writes} unguarded write(s)"
        )


class ShadowWriteLog:
    """Thread-safe log of writes across any number of shadow arrays."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._records: List[WriteRecord] = []

    def record(self, array: str, index: object, guarded: bool) -> None:
        record = WriteRecord(
            array=array,
            index=index,
            thread_id=threading.get_ident(),
            guarded=guarded,
        )
        with self._lock:
            self._records.append(record)

    @property
    def records(self) -> List[WriteRecord]:
        with self._lock:
            return list(self._records)

    def races(self) -> List[Race]:
        """Cells written by ≥2 threads with at least one unguarded write."""
        cells: Dict[Tuple[str, object], List[WriteRecord]] = {}
        for record in self.records:
            cells.setdefault((record.array, record.index), []).append(record)
        out: List[Race] = []
        for (array, index), writes in sorted(
            cells.items(), key=lambda item: (item[0][0], repr(item[0][1]))
        ):
            threads = tuple(sorted({w.thread_id for w in writes}))
            unguarded = sum(1 for w in writes if not w.guarded)
            if len(threads) >= 2 and unguarded:
                out.append(
                    Race(
                        array=array,
                        index=index,
                        thread_ids=threads,
                        unguarded_writes=unguarded,
                    )
                )
        return out

    def assert_race_free(self) -> None:
        races = self.races()
        if races:
            details = "; ".join(race.describe() for race in races)
            raise AssertionError(f"unguarded concurrent writes: {details}")


def _canonical(index: object) -> object:
    """Hashable, stable form of a numpy/py index expression."""
    if isinstance(index, tuple):
        return tuple(_canonical(part) for part in index)
    if isinstance(index, slice):
        return ("slice", index.start, index.stop, index.step)
    if isinstance(index, np.ndarray):
        return ("array",) + tuple(index.ravel().tolist())
    if isinstance(index, (np.integer, np.bool_)):
        return index.item()
    return index


class ShadowArray:
    """Numpy array wrapper that records every ``__setitem__``.

    Reads pass straight through; writes are logged with the calling
    thread and whether a declared atomic/critical helper was active
    (:func:`repro.parallel.sync.in_guarded_section`).  The wrapper is
    intentionally *not* an ndarray subclass so that only explicit
    element writes are observable — exactly the events the R1 budget
    talks about.
    """

    def __init__(
        self,
        array: np.ndarray,
        log: ShadowWriteLog,
        name: str = "shared",
    ) -> None:
        self.array = array
        self.log = log
        self.name = name

    def __getitem__(self, index):
        return self.array[index]

    def __setitem__(self, index, value) -> None:
        self.log.record(self.name, _canonical(index), in_guarded_section())
        self.array[index] = value

    def __len__(self) -> int:
        return len(self.array)

    def __array__(self, dtype=None):
        return np.asarray(self.array, dtype=dtype)

    @property
    def shape(self):
        return self.array.shape

    @property
    def dtype(self):
        return self.array.dtype
