"""The interprocedural rule pack: R6 (races), R7 (lock order), R8 (leaks).

These are :class:`~repro.analysis.dataflow.program.ProgramRule`s — they
see the whole program at once, unlike the per-module R1–R5.  Rule ids
are stable and documented in DESIGN.md §7; suppress findings with the
same ``# repro: allow[R6]`` pragma mechanism as the per-module pack.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Type

from repro.analysis.config import AnalysisConfig
from repro.analysis.dataflow.concurrency import analyze_concurrency
from repro.analysis.dataflow.lifecycle import analyze_lifecycles
from repro.analysis.dataflow.program import Program, ProgramRule
from repro.analysis.findings import Finding

__all__ = [
    "SharedStateRaceRule",
    "LockOrderRule",
    "SegmentLifecycleRule",
    "PROGRAM_RULE_CLASSES",
    "PROGRAM_RULE_INDEX",
    "default_program_rules",
]


class SharedStateRaceRule(ProgramRule):
    id = "R6"
    name = "interprocedural-shared-write"
    description = (
        "writes to shared state reachable from >=2 concurrent worker "
        "instances must hold a common lock on every path from every root"
    )

    def check(
        self, program: Program, config: AnalysisConfig
    ) -> Iterator[Finding]:
        analysis = program_concurrency(program, config)
        for site in analysis.write_sites:
            if site.common_locks:
                continue
            roots = ", ".join(
                ref.split(":", 1)[1] for ref in site.roots
            )
            lock_sets = sorted(
                {
                    "{" + ", ".join(sorted(h)) + "}" if h else "{}"
                    for _, h in site.contexts
                }
            )
            yield self.finding(
                site.function.module,
                site.node,
                f"unguarded {site.kind} to shared {site.target!r} in "
                f"{site.function.qualname!r}, reachable from concurrent "
                f"worker root(s) {roots} with no common lock "
                f"(observed lock-sets: {', '.join(lock_sets)})",
            )


class LockOrderRule(ProgramRule):
    id = "R7"
    name = "lock-order-consistency"
    description = (
        "lock acquisition order must be globally acyclic across every "
        "path from every concurrent root (no ABBA deadlocks)"
    )

    def check(
        self, program: Program, config: AnalysisConfig
    ) -> Iterator[Finding]:
        analysis = program_concurrency(program, config)
        graph: Dict[str, List[str]] = {}
        sites = {}
        for edge in analysis.order_edges:
            graph.setdefault(edge.first, []).append(edge.second)
            sites[(edge.first, edge.second)] = edge
        for cycle in _cycles(graph):
            pairs = list(zip(cycle, cycle[1:] + cycle[:1]))
            edge = next(
                sites[pair] for pair in pairs if pair in sites
            )
            where = "; ".join(
                f"{b} after {a} at "
                f"{sites[(a, b)].function.module.path}:{sites[(a, b)].line}"
                for a, b in pairs
                if (a, b) in sites
            )
            yield self.finding(
                edge.function.module,
                edge.function.node,
                "inconsistent lock-acquisition order can deadlock: cycle "
                + " -> ".join(cycle + [cycle[0]])
                + f" ({where})",
            )


def _cycles(graph: Dict[str, List[str]]) -> List[List[str]]:
    """Elementary cycles via Tarjan SCCs (one finding per SCC)."""
    index: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Dict[str, bool] = {}
    stack: List[str] = []
    counter = [0]
    out: List[List[str]] = []

    def strongconnect(v: str) -> None:
        index[v] = lowlink[v] = counter[0]
        counter[0] += 1
        stack.append(v)
        on_stack[v] = True
        for w in graph.get(v, []):
            if w not in index:
                strongconnect(w)
                lowlink[v] = min(lowlink[v], lowlink[w])
            elif on_stack.get(w):
                lowlink[v] = min(lowlink[v], index[w])
        if lowlink[v] == index[v]:
            component: List[str] = []
            while True:
                w = stack.pop()
                on_stack[w] = False
                component.append(w)
                if w == v:
                    break
            if len(component) > 1 or v in graph.get(v, []):
                out.append(sorted(component))

    for vertex in sorted(graph):
        if vertex not in index:
            strongconnect(vertex)
    return out


class SegmentLifecycleRule(ProgramRule):
    id = "R8"
    name = "shared-memory-lifecycle"
    description = (
        "every SharedMemory create must reach close/unlink (or transfer "
        "ownership) on all paths, exception edges included"
    )

    def check(
        self, program: Program, config: AnalysisConfig
    ) -> Iterator[Finding]:
        for leak in analyze_lifecycles(program, config):
            yield self.finding(
                leak.function.module, leak.node, leak.message
            )


#: One concurrency DFS per (program, config) pair — R6 and R7 share it.
_ANALYSIS_CACHE: Dict[int, object] = {}


def program_concurrency(program: Program, config: AnalysisConfig):
    key = id(program)
    cached = _ANALYSIS_CACHE.get(key)
    if cached is None:
        cached = analyze_concurrency(program, config)
        _ANALYSIS_CACHE.clear()  # hold at most one program at a time
        _ANALYSIS_CACHE[key] = cached
    return cached


PROGRAM_RULE_CLASSES: List[Type[ProgramRule]] = [
    SharedStateRaceRule,
    LockOrderRule,
    SegmentLifecycleRule,
]

PROGRAM_RULE_INDEX: Dict[str, Type[ProgramRule]] = {
    cls.id: cls for cls in PROGRAM_RULE_CLASSES
}


def default_program_rules() -> List[ProgramRule]:
    """Fresh instances of every registered program rule, in report order."""
    return [cls() for cls in PROGRAM_RULE_CLASSES]
