"""Lock recognition and canonical lock identity for the R6/R7 pass.

A *guard* is the context expression of a ``with`` statement that the
analysis treats as a lock acquisition.  Three shapes are recognized:

* a call to a declared critical helper (``critical(...)``,
  ``critical_union(...)`` — the ``critical-helpers`` config list);
* a name or attribute whose last component contains one of the
  ``lock-name-fragments`` (``lock``, ``mutex``, ``cond``, ``wake``…);
* a name listed under ``global-lock-names``, canonicalized to the one
  process-wide critical section so ``critical()`` with no argument and
  ``with _GLOBAL_LOCK:`` compare equal in lock-set intersections.

Canonical ids are strings: ``module:NAME`` for module-level locks,
``module:Class.attr`` for instance locks (``self._lock`` inside a
method of ``Class``), and ``<global-critical>`` for the default
critical section.  ``threading.Condition(some_lock)`` assignments are
detected per class/module and aliased to the wrapped lock's id, so
acquiring a condition is acquiring its lock.  Locks reaching a callee
through a parameter are canonicalized *at the call site* and carried
into the callee via a substitution map, which keeps identities stable
across function boundaries.
"""

from __future__ import annotations

import ast
from typing import Dict, Optional

from repro.analysis.config import AnalysisConfig
from repro.analysis.dataflow.program import FunctionInfo, ModuleInfo

__all__ = [
    "GLOBAL_CRITICAL",
    "canonical_lock_id",
    "guard_lock_id",
    "collect_lock_aliases",
]

#: Canonical id of the default critical section (``critical()`` with no
#: lock argument, and every name in ``global-lock-names``).
GLOBAL_CRITICAL = "<global-critical>"


def _is_lockish_name(name: str, config: AnalysisConfig) -> bool:
    lowered = name.lower()
    return any(frag in lowered for frag in config.lock_name_fragments)


def canonical_lock_id(
    expr: ast.AST,
    module: ModuleInfo,
    function: Optional[FunctionInfo],
    config: AnalysisConfig,
    substitutions: Optional[Dict[str, str]] = None,
) -> Optional[str]:
    """Canonical id for a lock-valued expression, or None if unknown.

    ``substitutions`` maps parameter names of ``function`` to canonical
    ids established by the caller (call-site lock propagation).
    """
    if isinstance(expr, ast.Name):
        if substitutions and expr.id in substitutions:
            return substitutions[expr.id]
        if expr.id in config.global_lock_names:
            return GLOBAL_CRITICAL
        canonical = f"{module.name}:{expr.id}"
        return module.lock_aliases.get(canonical, canonical)
    if isinstance(expr, ast.Attribute):
        value = expr.value
        if isinstance(value, ast.Name) and value.id in ("self", "cls"):
            cls = function.cls if function is not None else None
            if cls is None and function is not None and function.parent:
                cls = function.parent.cls
            owner = cls or "self"
            canonical = f"{module.name}:{owner}.{expr.attr}"
        else:
            canonical = f"{module.name}:{ast.unparse(expr)}"
        return module.lock_aliases.get(canonical, canonical)
    return None


def guard_lock_id(
    expr: ast.AST,
    module: ModuleInfo,
    function: Optional[FunctionInfo],
    config: AnalysisConfig,
    substitutions: Optional[Dict[str, str]] = None,
) -> Optional[str]:
    """Lock id acquired by a ``with`` item, or None when not a guard."""
    if isinstance(expr, ast.Call):
        func = expr.func
        name = (
            func.id
            if isinstance(func, ast.Name)
            else func.attr
            if isinstance(func, ast.Attribute)
            else ""
        )
        if name in config.critical_helpers:
            for arg in list(expr.args) + [
                kw.value for kw in expr.keywords if kw.arg == "lock"
            ]:
                inner = canonical_lock_id(
                    arg, module, function, config, substitutions
                )
                if inner is not None:
                    return inner
            return GLOBAL_CRITICAL
        return None
    last = (
        expr.id
        if isinstance(expr, ast.Name)
        else expr.attr
        if isinstance(expr, ast.Attribute)
        else ""
    )
    if last and (
        _is_lockish_name(last, config) or last in config.global_lock_names
    ):
        return canonical_lock_id(expr, module, function, config, substitutions)
    return None


def collect_lock_aliases(module: ModuleInfo, config: AnalysisConfig) -> None:
    """Detect ``x = threading.Condition(lock)`` wrappers and alias them.

    Fills ``module.lock_aliases`` in place; looks at module-level and
    method-body assignments (``self._wake = Condition(self._lock)``).
    """

    def wrapped_lock(value: ast.AST) -> Optional[ast.AST]:
        if not isinstance(value, ast.Call) or not value.args:
            return None
        func = value.func
        name = (
            func.id
            if isinstance(func, ast.Name)
            else func.attr
            if isinstance(func, ast.Attribute)
            else ""
        )
        return value.args[0] if name == "Condition" else None

    for function in list(module.functions.values()) + [None]:
        tree = function.node if function is not None else module.source.tree
        for node in ast.walk(tree):
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            inner = wrapped_lock(node.value)
            if inner is None:
                continue
            alias_id = canonical_lock_id(
                node.targets[0], module, function, config
            )
            lock_id = canonical_lock_id(inner, module, function, config)
            if alias_id is not None and lock_id is not None:
                module.lock_aliases[alias_id] = lock_id
