"""Module-level call graph with concurrent worker-entry-point roots.

Call resolution is deliberately name-based and best-effort (documented
in DESIGN.md §7 as a soundness limit): a call is linked when the callee
can be identified as

* a nested ``def`` in an enclosing scope, a module-level function, or
  an imported program function (``from m import f`` / ``m.f``);
* ``self.method()`` / ``cls.method()`` against the enclosing class;
* ``obj.method()`` when exactly one class in the whole program defines
  ``method`` (the unique-method heuristic — skipped for common
  container verbs so ``list.append`` never links to a class method).

Roots are the places concurrency starts: the first argument of any
``.map(...)``/``.submit(...)`` call, ``initializer=`` keywords on pool
constructors, ``target=`` keywords on ``threading.Thread``, anything
listed under ``concurrency-roots`` in ``[tool.repro-analysis]``, and —
one level of indirection — functions passed into a *spawn-through*
parameter (a parameter the callee itself hands to ``.map``/``.submit``),
which is how ``ProcessBackend._run_chunks(fn, …)`` workers are found.
Every root is treated as running on at least two concurrent workers:
pool targets are replicated by construction, and a single spawned
thread still runs concurrently with its spawner.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.config import AnalysisConfig
from repro.analysis.dataflow.program import FunctionInfo, ModuleInfo, Program

__all__ = ["CallGraph", "RootInfo", "build_call_graph", "resolve_call"]

#: Method names too generic for the unique-method heuristic — linking
#: ``something.get()`` to an arbitrary class method would be noise.
_COMMON_METHODS = frozenset(
    {
        "get", "put", "add", "append", "extend", "insert", "remove", "pop",
        "clear", "update", "keys", "values", "items", "copy", "close",
        "open", "read", "write", "join", "start", "run", "send", "recv",
        "acquire", "release", "wait", "notify", "notify_all", "submit",
        "map", "shutdown", "result", "done", "cancel", "set", "is_set",
        "format", "split", "strip", "encode", "decode", "sort", "reverse",
        "validate", "check", "info", "to_dict", "to_json",
    }
)

_SPAWN_METHODS = frozenset({"map", "submit"})
_SPAWN_KEYWORDS = frozenset({"initializer", "target"})


@dataclass(frozen=True)
class RootInfo:
    """One concurrent entry point plus how it was recognized."""

    function: FunctionInfo
    reason: str
    site_line: int


@dataclass
class CallGraph:
    program: Program
    #: caller ref -> [(call node, callee info)]
    edges: Dict[str, List[Tuple[ast.Call, FunctionInfo]]]
    roots: List[RootInfo]

    def callees(
        self, function: FunctionInfo
    ) -> List[Tuple[ast.Call, FunctionInfo]]:
        return self.edges.get(function.ref, [])


def _import_target(
    program: Program, module: ModuleInfo, dotted: str
) -> Optional[FunctionInfo]:
    """Resolve ``pkg.mod.func`` (or ``pkg.mod`` + attr) to a function."""
    if ":" in dotted:
        return program.functions.get(dotted)
    head, _, tail = dotted.rpartition(".")
    target_module = program.modules.get(head)
    if target_module is not None and tail in target_module.toplevel:
        return target_module.toplevel[tail]
    return None


def resolve_call(
    program: Program,
    caller: Optional[FunctionInfo],
    module: ModuleInfo,
    func: ast.AST,
) -> Optional[FunctionInfo]:
    """Best-effort resolution of a callee expression to a program function."""
    if isinstance(func, ast.Name):
        scope = caller
        while scope is not None:
            if func.id in scope.children:
                return scope.children[func.id]
            scope = scope.parent
        if func.id in module.toplevel:
            return module.toplevel[func.id]
        dotted = module.imports.get(func.id)
        if dotted is not None:
            return _import_target(program, module, dotted)
        return None
    if isinstance(func, ast.Attribute):
        value = func.value
        if isinstance(value, ast.Name):
            if value.id in ("self", "cls") and caller is not None:
                cls = caller.cls
                if cls is None and caller.parent is not None:
                    cls = caller.parent.cls
                if cls is not None:
                    method = module.classes.get(cls, {}).get(func.attr)
                    if method is not None:
                        return method
            dotted = module.imports.get(value.id)
            if dotted is not None:
                resolved = _import_target(
                    program, module, f"{dotted}.{func.attr}"
                )
                if resolved is not None:
                    return resolved
        if func.attr not in _COMMON_METHODS:
            candidates = program.method_index.get(func.attr, [])
            if len(candidates) == 1:
                return candidates[0]
    return None


def _spawn_param_indices(function: FunctionInfo) -> Set[int]:
    """Positional indices of params this function hands to a pool."""
    params = function.positional_params()
    if not params:
        return set()
    index_of = {name: i for i, name in enumerate(params)}
    spawned: Set[int] = set()
    for node in ast.walk(function.node):
        if not isinstance(node, ast.Call):
            continue
        targets: List[ast.AST] = []
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _SPAWN_METHODS
            and node.args
        ):
            targets.append(node.args[0])
        targets.extend(
            kw.value for kw in node.keywords if kw.arg in _SPAWN_KEYWORDS
        )
        for target in targets:
            if isinstance(target, ast.Name) and target.id in index_of:
                spawned.add(index_of[target.id])
    return spawned


def _iter_calls_with_scope(
    module: ModuleInfo,
) -> Iterator[Tuple[Optional[FunctionInfo], ast.Call]]:
    """Every Call in the module, paired with its enclosing function."""

    def walk(node: ast.AST, scope: Optional[FunctionInfo]) -> Iterator:
        for child in ast.iter_child_nodes(node):
            inner = scope
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                inner = _info_for_node(module, child) or scope
            if isinstance(child, ast.Call):
                yield inner, child
            yield from walk(child, inner)

    yield from walk(module.source.tree, None)


def _info_for_node(
    module: ModuleInfo, node: ast.AST
) -> Optional[FunctionInfo]:
    for info in module.functions.values():
        if info.node is node:
            return info
    return None


def _resolve_worker_arg(
    program: Program,
    scope: Optional[FunctionInfo],
    module: ModuleInfo,
    target: ast.AST,
) -> Optional[FunctionInfo]:
    if isinstance(target, ast.Lambda):
        return _info_for_node(module, target)
    if isinstance(target, (ast.Name, ast.Attribute)):
        return resolve_call(program, scope, module, target)
    return None


def build_call_graph(
    program: Program, config: AnalysisConfig
) -> CallGraph:
    edges: Dict[str, List[Tuple[ast.Call, FunctionInfo]]] = {}
    roots: Dict[str, RootInfo] = {}

    def add_root(info: Optional[FunctionInfo], reason: str, line: int) -> None:
        if info is not None and info.ref not in roots:
            roots[info.ref] = RootInfo(
                function=info, reason=reason, site_line=line
            )

    # Pass 1: call edges, direct roots.
    for module in program.modules.values():
        for scope, call in _iter_calls_with_scope(module):
            callee = resolve_call(program, scope, module, call.func)
            if callee is not None and scope is not None:
                edges.setdefault(scope.ref, []).append((call, callee))
            if (
                isinstance(call.func, ast.Attribute)
                and call.func.attr in _SPAWN_METHODS
                and call.args
            ):
                worker = _resolve_worker_arg(
                    program, scope, module, call.args[0]
                )
                add_root(
                    worker, f"passed to .{call.func.attr}()", call.lineno
                )
            for kw in call.keywords:
                if kw.arg in _SPAWN_KEYWORDS:
                    worker = _resolve_worker_arg(
                        program, scope, module, kw.value
                    )
                    add_root(worker, f"{kw.arg}= entry point", call.lineno)

    # Pass 2: spawn-through parameters, to a fixpoint — a function whose
    # parameter reaches .map/.submit makes *its* callers' function-valued
    # arguments at that position worker roots too.
    spawn_params: Dict[str, Set[int]] = {
        ref: _spawn_param_indices(info)
        for ref, info in program.functions.items()
        if _spawn_param_indices(info)
    }
    changed = True
    while changed:
        changed = False
        for module in program.modules.values():
            for scope, call in _iter_calls_with_scope(module):
                callee = resolve_call(program, scope, module, call.func)
                if callee is None or callee.ref not in spawn_params:
                    continue
                indices = spawn_params[callee.ref]
                params = callee.positional_params()
                # Method calls bind self implicitly: shift caller args.
                offset = (
                    1
                    if callee.cls is not None
                    and params
                    and params[0] in ("self", "cls")
                    and not (
                        isinstance(call.func, ast.Name)
                        or isinstance(call.func, ast.Attribute)
                        and isinstance(call.func.value, ast.Name)
                        and call.func.value.id
                        in module.imports
                    )
                    else 0
                )
                for index in indices:
                    arg_pos = index - offset
                    if not 0 <= arg_pos < len(call.args):
                        continue
                    arg = call.args[arg_pos]
                    worker = _resolve_worker_arg(program, scope, module, arg)
                    if worker is not None and worker.ref not in roots:
                        add_root(
                            worker,
                            f"flows into spawn-through parameter of "
                            f"{callee.qualname}()",
                            call.lineno,
                        )
                        changed = True
                    if (
                        scope is not None
                        and isinstance(arg, ast.Name)
                        and arg.id in scope.positional_params()
                    ):
                        mine = spawn_params.setdefault(scope.ref, set())
                        pos = scope.positional_params().index(arg.id)
                        if pos not in mine:
                            mine.add(pos)
                            changed = True

    # Pass 3: configured extra roots (module:qualname or qualname suffix).
    for entry in config.concurrency_roots:
        for ref, info in program.functions.items():
            if ref == entry or ref.endswith(entry) or info.qualname == entry:
                add_root(info, "configured concurrency root", info.node.lineno)

    ordered = sorted(roots.values(), key=lambda r: r.function.ref)
    return CallGraph(program=program, edges=edges, roots=ordered)
