"""Interprocedural concurrency analysis (rules R6–R8).

The whole-program half of the analysis gate: a module-level call graph
rooted at worker entry points, a lock-set pass flagging shared writes
without a common lock (R6) and inconsistent lock-acquisition orders
(R7), and a shared-memory lifecycle pass proving every ``SharedMemory``
create reaches ``close``/``unlink`` on all paths (R8).  See
:mod:`repro.analysis.dataflow.program` for the program model and
DESIGN.md §7 for rule semantics and soundness limits.

Run it from the CLI with ``python -m repro.analysis --interprocedural``.
"""

from repro.analysis.dataflow.callgraph import (
    CallGraph,
    RootInfo,
    build_call_graph,
)
from repro.analysis.dataflow.concurrency import (
    ConcurrencyAnalysis,
    OrderEdge,
    WriteSite,
    analyze_concurrency,
)
from repro.analysis.dataflow.lifecycle import analyze_lifecycles
from repro.analysis.dataflow.program import (
    FunctionInfo,
    ModuleInfo,
    Program,
    ProgramAnalyzer,
    ProgramRule,
)
from repro.analysis.dataflow.rules import (
    PROGRAM_RULE_CLASSES,
    PROGRAM_RULE_INDEX,
    LockOrderRule,
    SegmentLifecycleRule,
    SharedStateRaceRule,
    default_program_rules,
)

__all__ = [
    "CallGraph",
    "ConcurrencyAnalysis",
    "FunctionInfo",
    "LockOrderRule",
    "ModuleInfo",
    "OrderEdge",
    "PROGRAM_RULE_CLASSES",
    "PROGRAM_RULE_INDEX",
    "Program",
    "ProgramAnalyzer",
    "ProgramRule",
    "RootInfo",
    "SegmentLifecycleRule",
    "SharedStateRaceRule",
    "WriteSite",
    "analyze_concurrency",
    "analyze_lifecycles",
    "build_call_graph",
    "default_program_rules",
]
