"""Whole-program representation for the interprocedural pass.

The per-module rules (R1–R5) see one :class:`~repro.analysis.core.ModuleSource`
at a time; the rules in :mod:`repro.analysis.dataflow.rules` need the
*program*: every module parsed, functions indexed by qualified name,
import aliases resolved, and module-level state known — so a call-graph
walk can cross module boundaries.

A :class:`ProgramRule` is the whole-program analogue of
:class:`~repro.analysis.core.Rule`: it inspects one :class:`Program`
and yields findings anywhere in it.  :class:`ProgramAnalyzer` builds
the program once, runs every enabled program rule, and filters
findings through the same inline pragma machinery as the per-module
analyzer (``# repro: allow[R6]`` works exactly like ``allow[R1]``).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Set, Union

from repro.analysis.config import AnalysisConfig
from repro.analysis.core import ModuleSource, iter_python_files
from repro.analysis.findings import Finding

__all__ = [
    "FunctionInfo",
    "ModuleInfo",
    "Program",
    "ProgramRule",
    "ProgramAnalyzer",
    "module_name_for",
]

_FuncNode = Union[ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda]


def module_name_for(path: Path) -> str:
    """Dotted module name inferred from the package layout on disk.

    Walks parent directories while ``__init__.py`` files are present,
    so ``src/repro/parallel/sync.py`` maps to ``repro.parallel.sync``
    and a loose fixture file maps to its bare stem.
    """
    path = Path(path)
    parts: List[str] = []
    directory = path.parent
    while (directory / "__init__.py").is_file():
        parts.insert(0, directory.name)
        directory = directory.parent
    if path.stem != "__init__":
        parts.append(path.stem)
    return ".".join(parts) if parts else path.stem


@dataclass
class FunctionInfo:
    """One function/method/lambda known to the program."""

    qualname: str
    module: "ModuleInfo"
    node: _FuncNode
    cls: Optional[str] = None
    parent: Optional["FunctionInfo"] = None
    #: Nested ``def``s by bare name (for scope-chain call resolution).
    children: Dict[str, "FunctionInfo"] = field(default_factory=dict)

    @property
    def ref(self) -> str:
        """Stable program-wide id, ``module.name:qualname``."""
        return f"{self.module.name}:{self.qualname}"

    @property
    def name(self) -> str:
        return getattr(self.node, "name", "<lambda>")

    def bound_names(self) -> Set[str]:
        """Parameters plus locally assigned bare names (cached)."""
        cached = getattr(self, "_bound", None)
        if cached is not None:
            return cached
        args = self.node.args
        bound = {
            a.arg for a in args.posonlyargs + args.args + args.kwonlyargs
        }
        if args.vararg:
            bound.add(args.vararg.arg)
        if args.kwarg:
            bound.add(args.kwarg.arg)
        if not isinstance(self.node, ast.Lambda):
            free: Set[str] = set()
            for sub in ast.walk(self.node):
                if isinstance(sub, ast.Name) and isinstance(
                    sub.ctx, ast.Store
                ):
                    bound.add(sub.id)
                elif isinstance(sub, (ast.Nonlocal, ast.Global)):
                    free.update(sub.names)
            bound -= free
        self._bound = bound
        return bound

    def positional_params(self) -> List[str]:
        """Positional parameter names, ``self``/``cls`` included."""
        args = self.node.args
        return [a.arg for a in args.posonlyargs + args.args]


@dataclass
class ModuleInfo:
    """One parsed module plus the symbol tables the pass needs."""

    source: ModuleSource
    name: str
    #: Local alias -> dotted target (``import m as x`` / ``from m import f``).
    imports: Dict[str, str] = field(default_factory=dict)
    #: qualname -> info, for every def (methods and nested included).
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: Bare name -> info for module-level defs only.
    toplevel: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: Class name -> method name -> info.
    classes: Dict[str, Dict[str, FunctionInfo]] = field(default_factory=dict)
    #: Names assigned at module level (the shared mutable state R6 guards).
    global_names: Set[str] = field(default_factory=set)
    #: Canonical lock id -> canonical lock id it wraps — detected from
    #: ``self.cond = threading.Condition(self.lock)`` style assignments,
    #: so a Condition and its underlying lock count as one lock.
    lock_aliases: Dict[str, str] = field(default_factory=dict)

    @property
    def path(self) -> Path:
        return self.source.path


class _ModuleIndexer(ast.NodeVisitor):
    """Builds the function/global/import tables of one module."""

    def __init__(self, info: ModuleInfo) -> None:
        self.info = info
        self._class_stack: List[str] = []
        self._func_stack: List[FunctionInfo] = []

    # -- imports --------------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            target = alias.name if alias.asname else alias.name.split(".")[0]
            self.info.imports[local] = target
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        base = node.module or ""
        if node.level:
            # Resolve relative imports against this module's package.
            package_parts = self.info.name.split(".")
            if self.info.source.path.stem != "__init__":
                package_parts = package_parts[:-1]
            drop = node.level - 1
            if drop:
                package_parts = package_parts[: len(package_parts) - drop]
            base = ".".join(package_parts + ([node.module] if node.module else []))
        for alias in node.names:
            if alias.name == "*":
                continue
            local = alias.asname or alias.name
            self.info.imports[local] = f"{base}.{alias.name}" if base else alias.name
        self.generic_visit(node)

    # -- defs -----------------------------------------------------------
    def _qualname(self, name: str) -> str:
        parts: List[str] = []
        if self._class_stack:
            parts.extend(self._class_stack)
        if self._func_stack:
            parts.append(self._func_stack[-1].qualname.split(".")[-1])
            # Use the full parent qualname for uniqueness instead.
            parts = [self._func_stack[-1].qualname]
        return ".".join(parts + [name]) if parts else name

    def _register(self, node: _FuncNode, name: str) -> FunctionInfo:
        qualname = self._qualname(name)
        parent = self._func_stack[-1] if self._func_stack else None
        info = FunctionInfo(
            qualname=qualname,
            module=self.info,
            node=node,
            cls=self._class_stack[-1] if self._class_stack else None,
            parent=parent,
        )
        self.info.functions[qualname] = info
        if parent is not None:
            parent.children[name] = info
        elif not self._class_stack:
            self.info.toplevel[name] = info
        if self._class_stack and parent is None:
            methods = self.info.classes.setdefault(self._class_stack[-1], {})
            methods[name] = info
        return info

    def _visit_def(self, node) -> None:
        info = self._register(node, node.name)
        self._func_stack.append(info)
        self.generic_visit(node)
        self._func_stack.pop()

    visit_FunctionDef = _visit_def
    visit_AsyncFunctionDef = _visit_def

    def visit_Lambda(self, node: ast.Lambda) -> None:
        qualname = self._qualname(f"<lambda@{node.lineno}>")
        parent = self._func_stack[-1] if self._func_stack else None
        info = FunctionInfo(
            qualname=qualname,
            module=self.info,
            node=node,
            cls=self._class_stack[-1] if self._class_stack else None,
            parent=parent,
        )
        self.info.functions[qualname] = info
        self.generic_visit(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._class_stack.append(node.name)
        self.generic_visit(node)
        self._class_stack.pop()

    # -- module-level state ---------------------------------------------
    def visit_Assign(self, node: ast.Assign) -> None:
        if not self._func_stack and not self._class_stack:
            for target in node.targets:
                for name_node in ast.walk(target):
                    if isinstance(name_node, ast.Name) and isinstance(
                        name_node.ctx, ast.Store
                    ):
                        self.info.global_names.add(name_node.id)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if (
            not self._func_stack
            and not self._class_stack
            and isinstance(node.target, ast.Name)
        ):
            self.info.global_names.add(node.target.id)
        self.generic_visit(node)


class Program:
    """Every module of the analyzed tree, parsed and cross-indexed."""

    def __init__(self, config: AnalysisConfig) -> None:
        self.config = config
        self.modules: Dict[str, ModuleInfo] = {}
        self.by_path: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        #: Bare method name -> every class method with that name, for
        #: the unique-method call-resolution heuristic.
        self.method_index: Dict[str, List[FunctionInfo]] = {}
        self.parse_failures: List[Finding] = []

    @classmethod
    def build(
        cls,
        paths: Sequence[Path | str],
        config: Optional[AnalysisConfig] = None,
    ) -> "Program":
        config = config or AnalysisConfig()
        program = cls(config)
        for path in iter_python_files(paths):
            if config.excluded(path):
                continue
            try:
                source = ModuleSource.parse(path)
            except (SyntaxError, UnicodeDecodeError, OSError) as exc:
                program.parse_failures.append(
                    Finding(
                        path=str(path),
                        line=getattr(exc, "lineno", None) or 1,
                        col=1,
                        rule="PARSE",
                        message=f"could not parse module: {exc}",
                    )
                )
                continue
            program.add_module(source)
        return program

    def add_module(self, source: ModuleSource) -> ModuleInfo:
        info = ModuleInfo(source=source, name=module_name_for(source.path))
        _ModuleIndexer(info).visit(source.tree)
        self.modules[info.name] = info
        self.by_path[str(info.path)] = info
        for function in info.functions.values():
            self.functions[function.ref] = function
            if function.cls is not None and function.parent is None:
                self.method_index.setdefault(function.name, []).append(
                    function
                )
        return info

    def module_for_finding(self, finding: Finding) -> Optional[ModuleInfo]:
        return self.by_path.get(finding.path)

    def suppressed(self, finding: Finding) -> bool:
        module = self.module_for_finding(finding)
        if module is None:
            return False
        return module.source.suppressed(finding.line, finding.rule)


class ProgramRule:
    """Base class for whole-program rules (R6–R8)."""

    id: str = "P0"
    name: str = "unnamed"
    description: str = ""

    def check(
        self, program: Program, config: AnalysisConfig
    ) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self, module: ModuleInfo, node: ast.AST, message: str
    ) -> Finding:
        return Finding(
            path=str(module.path),
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=self.id,
            message=message,
        )


class ProgramAnalyzer:
    """Builds the program once and runs every enabled program rule."""

    def __init__(
        self,
        config: Optional[AnalysisConfig] = None,
        rules: Optional[Sequence[ProgramRule]] = None,
    ) -> None:
        from repro.analysis.dataflow.rules import default_program_rules

        self.config = config or AnalysisConfig()
        self.rules: List[ProgramRule] = (
            list(rules) if rules is not None else default_program_rules()
        )

    def enabled_rules(self) -> List[ProgramRule]:
        disabled = set(self.config.disable)
        return [rule for rule in self.rules if rule.id not in disabled]

    def analyze_program(self, program: Program) -> List[Finding]:
        findings: List[Finding] = list(program.parse_failures)
        for rule in self.enabled_rules():
            for found in rule.check(program, self.config):
                if not program.suppressed(found):
                    findings.append(found)
        return sorted(findings)

    def analyze_paths(self, paths: Sequence[Path | str]) -> List[Finding]:
        program = Program.build(paths, self.config)
        return self.analyze_program(program)
