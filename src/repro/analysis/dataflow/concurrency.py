"""Interprocedural lock-set analysis: shared writes (R6) and lock order (R7).

From every concurrent root (see :mod:`~repro.analysis.dataflow.callgraph`)
a DFS walks the call graph carrying three pieces of context:

* the **held lock set** — canonical ids of locks acquired by enclosing
  ``with`` guards, in any caller on the path;
* a **lock substitution** map — parameters bound to lock-valued
  arguments, canonicalized at the call site, so ``critical(lock)``
  deep inside a callee still names the caller's lock;
* the **shared parameter** set — parameters bound to arguments whose
  root is shared state from the caller's perspective (module globals,
  captured names, attributes, or the caller's own shared parameters).

Each write to shared state found at call depth ≥ 1 is recorded as a
*write site* together with (root, held-lock-set).  Depth-0 writes are
the per-module rule R1's territory (closure captures inside the worker
itself) and are skipped here to avoid double reporting.  Each lock
acquired while other locks are held records directed *order edges*
used by R7's cycle detection.

Soundness limits (documented in DESIGN.md §7): resolution is
name-based, aliasing through containers is invisible, and dynamic
dispatch links only via the unique-method heuristic — the pass
under-approximates reachability rather than over-reporting.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.analysis.config import AnalysisConfig
from repro.analysis.dataflow.callgraph import CallGraph, build_call_graph, resolve_call
from repro.analysis.dataflow.locks import collect_lock_aliases, guard_lock_id, canonical_lock_id
from repro.analysis.dataflow.program import FunctionInfo, Program

__all__ = [
    "WriteSite",
    "OrderEdge",
    "ConcurrencyAnalysis",
    "analyze_concurrency",
]

#: Mutating method names — same vocabulary as rule R1.
_MUTATORS = frozenset(
    {
        "union", "grow", "reset_counters", "append", "extend", "insert",
        "pop", "popitem", "remove", "clear", "add", "discard", "update",
        "setdefault", "sort", "reverse", "fill", "resize", "put",
    }
)

_MAX_DEPTH = 24


def _root_name(node: ast.AST) -> Optional[str]:
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


@dataclass
class WriteSite:
    """One shared write observed from at least one concurrent context."""

    function: FunctionInfo
    node: ast.AST
    target: str
    kind: str
    #: (root ref, held lock ids) per reaching context.
    contexts: List[Tuple[str, FrozenSet[str]]] = field(default_factory=list)

    @property
    def common_locks(self) -> FrozenSet[str]:
        held = [ctx[1] for ctx in self.contexts]
        if not held:
            return frozenset()
        common = set(held[0])
        for locks in held[1:]:
            common &= locks
        return frozenset(common)

    @property
    def roots(self) -> List[str]:
        return sorted({ctx[0] for ctx in self.contexts})


@dataclass(frozen=True)
class OrderEdge:
    """Lock ``second`` acquired while ``first`` was held."""

    first: str
    second: str
    function: FunctionInfo
    line: int


@dataclass
class ConcurrencyAnalysis:
    call_graph: CallGraph
    write_sites: List[WriteSite]
    order_edges: List[OrderEdge]


class _Walker:
    """Walks one function body under one interprocedural context."""

    def __init__(
        self,
        analysis: "_Engine",
        function: FunctionInfo,
        root_ref: str,
        depth: int,
        held: FrozenSet[str],
        lock_subst: Dict[str, str],
        shared_params: FrozenSet[str],
        stack: Tuple[str, ...],
    ) -> None:
        self.engine = analysis
        self.function = function
        self.module = function.module
        self.root_ref = root_ref
        self.depth = depth
        self.lock_subst = lock_subst
        self.shared_params = shared_params
        self.stack = stack
        self.bound = function.bound_names()

    # -- shared-state predicates ---------------------------------------
    def _is_shared_root(self, name: Optional[str]) -> bool:
        if name is None:
            return False
        if name in self.shared_params:
            return True
        if name in ("self", "cls"):
            return False  # instance state needs alias info we lack
        if name in self.module.global_names and name not in self.bound:
            return True
        return False

    def _record_write(
        self, node: ast.AST, name: str, kind: str, held: FrozenSet[str]
    ) -> None:
        if self.depth < 1:
            return  # depth-0 writes are R1's (per-module) territory
        self.engine.record_write(
            self.function, node, name, kind, self.root_ref, held
        )

    # -- traversal ------------------------------------------------------
    def walk_body(self, held: FrozenSet[str]) -> None:
        node = self.function.node
        body = [node.body] if isinstance(node, ast.Lambda) else list(node.body)
        for stmt in body:
            self._walk(stmt, held)

    def _walk(self, node: ast.AST, held: FrozenSet[str]) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            return  # nested defs analyzed when called/spawned
        if isinstance(node, ast.With):
            inner = set(held)
            for item in node.items:
                lock_id = guard_lock_id(
                    item.context_expr,
                    self.module,
                    self.function,
                    self.engine.config,
                    self.lock_subst,
                )
                if lock_id is not None:
                    for existing in sorted(inner):
                        if existing != lock_id:
                            self.engine.record_order(
                                existing,
                                lock_id,
                                self.function,
                                item.context_expr,
                            )
                    inner.add(lock_id)
                else:
                    self._walk(item.context_expr, held)
            for stmt in node.body:
                self._walk(stmt, frozenset(inner))
            return
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                self._flag_target(node, target, held)
        if isinstance(node, ast.Call):
            self._handle_call(node, held)
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                self._walk(arg, held)
            self._walk(node.func, held)
            return
        for child in ast.iter_child_nodes(node):
            self._walk(child, held)

    def _flag_target(
        self, node: ast.AST, target: ast.AST, held: FrozenSet[str]
    ) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._flag_target(node, element, held)
            return
        if isinstance(target, ast.Starred):
            self._flag_target(node, target.value, held)
            return
        if isinstance(target, (ast.Subscript, ast.Attribute)):
            root = _root_name(target)
            if self._is_shared_root(root):
                kind = (
                    "indexed write"
                    if isinstance(target, ast.Subscript)
                    else "attribute write"
                )
                self._record_write(node, root, kind, held)
        elif isinstance(target, ast.Name):
            if (
                target.id not in self.bound
                and target.id in self.module.global_names
            ):
                self._record_write(node, target.id, "global rebind", held)

    def _handle_call(self, node: ast.Call, held: FrozenSet[str]) -> None:
        config = self.engine.config
        func = node.func
        call_name = (
            func.id
            if isinstance(func, ast.Name)
            else func.attr
            if isinstance(func, ast.Attribute)
            else ""
        )
        # Declared atomic/critical helpers are the sanctioned write path.
        if call_name in config.atomic_helpers or call_name in config.critical_helpers:
            return
        # Mutating method call on a shared receiver.
        if isinstance(func, ast.Attribute) and func.attr in _MUTATORS:
            root = _root_name(func.value)
            if self._is_shared_root(root):
                self._record_write(
                    node, f"{root}.{func.attr}()", "mutating call", held
                )
        callee = resolve_call(
            self.engine.program, self.function, self.module, func
        )
        if callee is None or isinstance(callee.node, ast.Lambda):
            return
        self.engine.enter(
            callee,
            root_ref=self.root_ref,
            depth=self.depth + 1,
            held=held,
            call=node,
            caller=self,
        )


class _Engine:
    def __init__(self, program: Program, config: AnalysisConfig) -> None:
        self.program = program
        self.config = config
        self.call_graph = build_call_graph(program, config)
        self._sites: Dict[Tuple[str, int, str], WriteSite] = {}
        self._edges: Dict[Tuple[str, str], OrderEdge] = {}
        self._visited: Set[Tuple[str, str, FrozenSet[str], FrozenSet[str], Tuple[Tuple[str, str], ...]]] = set()

    def record_write(
        self,
        function: FunctionInfo,
        node: ast.AST,
        target: str,
        kind: str,
        root_ref: str,
        held: FrozenSet[str],
    ) -> None:
        key = (function.ref, getattr(node, "lineno", 0), target)
        site = self._sites.get(key)
        if site is None:
            site = WriteSite(
                function=function, node=node, target=target, kind=kind
            )
            self._sites[key] = site
        site.contexts.append((root_ref, held))

    def record_order(
        self, first: str, second: str, function: FunctionInfo, node: ast.AST
    ) -> None:
        key = (first, second)
        if key not in self._edges:
            self._edges[key] = OrderEdge(
                first=first,
                second=second,
                function=function,
                line=getattr(node, "lineno", 1),
            )

    def _bind_callee_context(
        self, callee: FunctionInfo, call: ast.Call, caller: _Walker
    ) -> Tuple[Dict[str, str], FrozenSet[str]]:
        """Lock substitutions and shared params for one call edge."""
        params = callee.positional_params()
        offset = 0
        if (
            callee.cls is not None
            and params
            and params[0] in ("self", "cls")
        ):
            offset = 1
        lock_subst: Dict[str, str] = {}
        shared: Set[str] = set()
        pairs: List[Tuple[str, ast.AST]] = []
        for i, arg in enumerate(call.args):
            index = i + offset
            if index < len(params):
                pairs.append((params[index], arg))
        names = set(params)
        for kw in call.keywords:
            if kw.arg and kw.arg in names:
                pairs.append((kw.arg, kw.value))
        for param, arg in pairs:
            lock_id = canonical_lock_id(
                arg,
                caller.module,
                caller.function,
                self.config,
                caller.lock_subst,
            )
            if lock_id is not None and self._is_lock_expr(arg, caller):
                lock_subst[param] = lock_id
            root = _root_name(arg) if not isinstance(arg, ast.Call) else None
            if root is not None and (
                caller._is_shared_root(root)
                or root not in caller.bound
                and caller.depth == 0
                and root not in ("self", "cls")
            ):
                shared.add(param)
        return lock_subst, frozenset(shared)

    def _is_lock_expr(self, arg: ast.AST, caller: _Walker) -> bool:
        return (
            guard_lock_id(
                arg,
                caller.module,
                caller.function,
                self.config,
                caller.lock_subst,
            )
            is not None
        )

    def enter(
        self,
        function: FunctionInfo,
        *,
        root_ref: str,
        depth: int,
        held: FrozenSet[str],
        call: Optional[ast.Call] = None,
        caller: Optional[_Walker] = None,
    ) -> None:
        if depth > _MAX_DEPTH or function.ref in (
            caller.stack if caller else ()
        ):
            return
        if call is not None and caller is not None:
            lock_subst, shared_params = self._bind_callee_context(
                function, call, caller
            )
        else:
            lock_subst, shared_params = {}, frozenset()
        memo_key = (
            function.ref,
            root_ref,
            held,
            shared_params,
            tuple(sorted(lock_subst.items())),
        )
        if memo_key in self._visited:
            return
        self._visited.add(memo_key)
        stack = (caller.stack if caller else ()) + (function.ref,)
        walker = _Walker(
            self,
            function,
            root_ref,
            depth,
            held,
            lock_subst,
            shared_params,
            stack,
        )
        walker.walk_body(held)

    def run(self) -> ConcurrencyAnalysis:
        for module in self.program.modules.values():
            collect_lock_aliases(module, self.config)
        for root in self.call_graph.roots:
            self.enter(
                root.function,
                root_ref=root.function.ref,
                depth=0,
                held=frozenset(),
            )
        return ConcurrencyAnalysis(
            call_graph=self.call_graph,
            write_sites=sorted(
                self._sites.values(),
                key=lambda s: (str(s.function.module.path), getattr(s.node, "lineno", 0)),
            ),
            order_edges=sorted(
                self._edges.values(), key=lambda e: (e.first, e.second)
            ),
        )


def analyze_concurrency(
    program: Program, config: AnalysisConfig
) -> ConcurrencyAnalysis:
    """Run the interprocedural lock-set DFS over every concurrent root."""
    return _Engine(program, config).run()
