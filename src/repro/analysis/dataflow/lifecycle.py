"""Owned-resource lifecycle analysis (rule R8).

Tracks every ``SharedMemory(create=True, …)`` allocation — plus the
configured ``segment-factories`` and ``handle-factories`` helpers (file
handles such as the WAL opener) and any program function that directly
returns one — through an abstract interpretation of the creating
function's body.  An allocation is an *obligation*; the pass proves
each obligation is discharged on every path:

* **released** — ``handle.close()`` or ``handle.unlink()`` is called on
  the binding (a release call counts even if it could itself raise);
* **escaped** — ownership transfers out of the function: the handle is
  returned or yielded, stored into an attribute/subscript/container,
  or passed as an argument to another call (``segments.append(shm)``,
  ``weakref.finalize(self, _release, shm)``, …).

Two finding shapes come out:

* an obligation still live at function exit (or at a ``return`` that
  does not carry it) — a leak on the normal path;
* an obligation live while a statement that may raise executes, with
  no enclosing ``try`` whose ``finally`` or handlers discharge it — a
  leak on the exception edge.

The pass is intraprocedural per creating function on purpose: escapes
transfer the obligation to the receiver, which is either audited the
same way (if it creates segments itself) or trusted (registries,
finalizers).  That keeps the rule quiet on the owner/attach split of
``repro.parallel.processes`` while still proving the create sites.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.config import AnalysisConfig
from repro.analysis.dataflow.program import FunctionInfo, Program

__all__ = ["Obligation", "LeakFinding", "analyze_lifecycles"]

_RELEASE_METHODS = frozenset({"close", "unlink"})


@dataclass
class Obligation:
    """One live shared-memory allocation bound to local names."""

    names: Set[str]
    node: ast.AST
    released: bool = False
    escaped: bool = False
    exception_leak_line: Optional[int] = None

    @property
    def discharged(self) -> bool:
        return self.released or self.escaped


@dataclass(frozen=True)
class LeakFinding:
    function: FunctionInfo
    node: ast.AST
    message: str


def _creator_functions(
    program: Program, config: AnalysisConfig
) -> Set[str]:
    """Names whose call yields a fresh resource the caller must manage.

    ``segment-factories`` and ``handle-factories`` seed the set; any
    program function that directly returns a creator call joins it via
    the fixpoint below.
    """
    creators: Set[str] = set(config.segment_factories)
    creators |= set(config.handle_factories)
    changed = True
    while changed:
        changed = False
        for info in program.functions.values():
            if info.name in creators:
                continue
            for node in ast.walk(info.node):
                if (
                    isinstance(node, ast.Return)
                    and node.value is not None
                    and _is_creator_call(node.value, creators)
                ):
                    creators.add(info.name)
                    changed = True
                    break
    return creators


def _is_creator_call(node: ast.AST, creators: Set[str]) -> bool:
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    name = (
        func.id
        if isinstance(func, ast.Name)
        else func.attr
        if isinstance(func, ast.Attribute)
        else ""
    )
    if name == "SharedMemory":
        return any(
            kw.arg == "create"
            and isinstance(kw.value, ast.Constant)
            and kw.value.value is True
            for kw in node.keywords
        )
    return name in creators


class _LifecycleWalker:
    """Abstract interpretation of one function body."""

    def __init__(
        self, function: FunctionInfo, creators: Set[str]
    ) -> None:
        self.function = function
        self.creators = creators
        self.obligations: List[Obligation] = []
        #: Stack of enclosing Try nodes for exception-edge protection.
        self._try_stack: List[ast.Try] = []

    # -- helpers --------------------------------------------------------
    def _live(self) -> List[Obligation]:
        return [o for o in self.obligations if not o.discharged]

    def _find(self, name: str) -> Optional[Obligation]:
        for obligation in self.obligations:
            if name in obligation.names and not obligation.discharged:
                return obligation
        return None

    def _protected(self, obligation: Obligation) -> bool:
        """Whether an enclosing try discharges this obligation on raise."""
        for try_node in self._try_stack:
            if self._block_discharges(try_node.finalbody, obligation):
                return True
            if try_node.handlers and all(
                self._block_discharges(handler.body, obligation)
                for handler in try_node.handlers
            ):
                return True
        return False

    def _block_discharges(
        self, body: List[ast.stmt], obligation: Obligation
    ) -> bool:
        for stmt in body:
            for node in ast.walk(stmt):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _RELEASE_METHODS
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id in obligation.names
                ):
                    return True
                if isinstance(node, ast.Call):
                    for arg in list(node.args) + [
                        kw.value for kw in node.keywords
                    ]:
                        if (
                            isinstance(arg, ast.Name)
                            and arg.id in obligation.names
                        ):
                            return True
                        # tuple(segments)-style indirection: releasing a
                        # container the handle escaped into counts via
                        # the escape rule at the append site instead.
        return False

    def _may_raise(self, stmt: ast.stmt) -> bool:
        for node in ast.walk(stmt):
            if isinstance(node, (ast.Call, ast.Raise, ast.Assert)):
                return True
        return False

    # -- events ---------------------------------------------------------
    def _note_escapes(self, stmt: ast.stmt) -> None:
        """Handle names leaving the function's custody in ``stmt``."""
        for node in ast.walk(stmt):
            if isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
                value = node.value
                if value is not None:
                    self._escape_names_in(value)
            elif isinstance(node, ast.Call):
                receiver_names = set()
                if isinstance(node.func, ast.Attribute) and isinstance(
                    node.func.value, ast.Name
                ):
                    receiver_names.add(node.func.value.id)
                    if node.func.attr in _RELEASE_METHODS:
                        obligation = self._find(node.func.value.id)
                        if obligation is not None:
                            obligation.released = True
                            continue
                for arg in list(node.args) + [
                    kw.value for kw in node.keywords
                ]:
                    self._escape_names_in(arg)

    def _escape_names_in(self, expr: ast.AST) -> None:
        """Mark handles referenced *as values* in ``expr`` as escaped.

        Only a bare name — possibly nested in a container literal,
        starred element, or conditional expression — transfers the
        handle.  ``shm.buf`` or ``shm.name`` hands out a view of the
        segment, not ownership, so attribute/subscript bases stay put.
        """
        if isinstance(expr, ast.Name):
            obligation = self._find(expr.id)
            if obligation is not None:
                obligation.escaped = True
        elif isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            for elt in expr.elts:
                self._escape_names_in(elt)
        elif isinstance(expr, ast.Dict):
            for sub in list(expr.keys) + list(expr.values):
                if sub is not None:
                    self._escape_names_in(sub)
        elif isinstance(expr, ast.Starred):
            self._escape_names_in(expr.value)
        elif isinstance(expr, ast.IfExp):
            self._escape_names_in(expr.body)
            self._escape_names_in(expr.orelse)
        elif isinstance(expr, ast.NamedExpr):
            self._escape_names_in(expr.value)

    def _handle_binding(self, target: ast.AST, value: ast.AST) -> None:
        if _is_creator_call(value, self.creators):
            if isinstance(target, ast.Name):
                existing = self._find(target.id)
                if existing is not None:
                    # Rebinding the only handle loses the old segment.
                    existing.names.discard(target.id)
                self.obligations.append(
                    Obligation(names={target.id}, node=value)
                )
            # Assigning straight into an attribute/subscript escapes.
        elif isinstance(target, ast.Name) and isinstance(value, ast.Name):
            obligation = self._find(value.id)
            if obligation is not None:
                obligation.names.add(target.id)
        elif not isinstance(target, ast.Name):
            self._escape_names_in(value)

    # -- statement walk -------------------------------------------------
    def run(self) -> None:
        node = self.function.node
        if isinstance(node, ast.Lambda):
            return
        self._walk_block(list(node.body))

    def _walk_block(self, body: List[ast.stmt]) -> None:
        for stmt in body:
            self._walk_stmt(stmt)

    def _walk_stmt(self, stmt: ast.stmt) -> None:
        # Compound statements: descend so their inner statements see the
        # right try-stack; the exception-edge check runs on the simple
        # statements inside, never on the compound node itself.
        if isinstance(stmt, ast.Try):
            self._try_stack.append(stmt)
            self._walk_block(stmt.body)
            self._try_stack.pop()
            for handler in stmt.handlers:
                self._walk_block(handler.body)
            self._walk_block(stmt.orelse)
            self._walk_block(stmt.finalbody)
            return
        if isinstance(stmt, ast.If):
            self._note_escapes_expr(stmt.test)
            self._walk_block(stmt.body)
            self._walk_block(stmt.orelse)
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._note_escapes_expr(stmt.iter)
            self._walk_block(stmt.body)
            self._walk_block(stmt.orelse)
            return
        if isinstance(stmt, ast.While):
            self._note_escapes_expr(stmt.test)
            self._walk_block(stmt.body)
            self._walk_block(stmt.orelse)
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            managed: List[Obligation] = []
            for item in stmt.items:
                if _is_creator_call(item.context_expr, self.creators):
                    if isinstance(item.optional_vars, ast.Name):
                        obligation = Obligation(
                            names={item.optional_vars.id},
                            node=item.context_expr,
                        )
                        self.obligations.append(obligation)
                        managed.append(obligation)
                else:
                    self._note_escapes_expr(item.context_expr)
            self._walk_block(stmt.body)
            # The context manager's __exit__ closes the resource on
            # every path out of the block — normal and exception alike —
            # so a with-managed creation is discharged by construction.
            for obligation in managed:
                obligation.released = True
                obligation.exception_leak_line = None
            return
        if isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            return  # nested scopes audited separately

        # Simple statement: apply its own events first so a statement
        # that discharges an obligation — an escape into a registry, a
        # release call — does not flag itself as the risky statement;
        # the transfer is treated as atomic.
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                self._handle_binding(target, stmt.value)
            if not _is_creator_call(
                stmt.value, self.creators
            ) and not isinstance(stmt.value, ast.Name):
                self._note_escapes(stmt)
        elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
            if stmt.value is not None:
                self._handle_binding(stmt.target, stmt.value)
                if not _is_creator_call(stmt.value, self.creators):
                    self._note_escapes(stmt)
        else:
            self._note_escapes(stmt)
        # Exception edge: this statement may raise while obligations are
        # still live with no enclosing try to discharge them.
        if self._may_raise(stmt) and not self._creates(stmt):
            for obligation in self._live():
                if (
                    obligation.exception_leak_line is None
                    and not self._protected(obligation)
                ):
                    obligation.exception_leak_line = stmt.lineno

    def _note_escapes_expr(self, expr: ast.AST) -> None:
        for node in ast.walk(expr):
            if isinstance(node, ast.Call):
                for arg in list(node.args) + [
                    kw.value for kw in node.keywords
                ]:
                    self._escape_names_in(arg)

    def _creates(self, stmt: ast.stmt) -> bool:
        for node in ast.walk(stmt):
            if _is_creator_call(node, self.creators):
                return True
        return False


def analyze_lifecycles(
    program: Program, config: AnalysisConfig
) -> List[LeakFinding]:
    """Leak findings for every segment-creating function in the program."""
    creators = _creator_functions(program, config)
    findings: List[LeakFinding] = []
    for info in program.functions.values():
        if isinstance(info.node, ast.Lambda):
            continue
        if not any(
            _is_creator_call(node, creators)
            for node in ast.walk(info.node)
        ):
            continue
        if _only_returns_creation(info, creators):
            continue  # pure factory: ownership is the caller's
        walker = _LifecycleWalker(info, creators)
        walker.run()
        for obligation in walker.obligations:
            name = "/".join(sorted(obligation.names)) or "<anonymous>"
            if not obligation.discharged:
                findings.append(
                    LeakFinding(
                        function=info,
                        node=obligation.node,
                        message=(
                            f"owned handle {name!r} created in "
                            f"{info.qualname!r} never reaches close/unlink "
                            "on the fall-through path"
                        ),
                    )
                )
            elif obligation.exception_leak_line is not None:
                findings.append(
                    LeakFinding(
                        function=info,
                        node=obligation.node,
                        message=(
                            f"owned handle {name!r} created in "
                            f"{info.qualname!r} leaks if line "
                            f"{obligation.exception_leak_line} raises — no "
                            "enclosing try releases or transfers it on the "
                            "exception edge"
                        ),
                    )
                )
    return findings


def _only_returns_creation(info: FunctionInfo, creators: Set[str]) -> bool:
    """True when every creator call in ``info`` is immediately returned."""
    returned = {
        id(node.value)
        for node in ast.walk(info.node)
        if isinstance(node, ast.Return) and node.value is not None
    }
    for node in ast.walk(info.node):
        if _is_creator_call(node, creators) and id(node) not in returned:
            return False
    return True
