"""R4 — API contracts: public eps/mu entry points must validate.

Every public function in a designated API module that accepts SCAN's
density parameters must witness a validation on entry: either a call
to a declared validator (``check_eps_mu``, ``*.validate``) that is
passed the parameter, or an explicit compare-and-raise / assert on it.
Out-of-domain μ/ε silently produce empty or wrong clusterings, so the
check must fail fast at the API boundary.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from repro.analysis.config import AnalysisConfig
from repro.analysis.core import ModuleSource, Rule
from repro.analysis.findings import Finding

__all__ = ["ApiContractRule"]

_PARAMS = ("mu", "epsilon", "eps")


class ApiContractRule(Rule):
    id = "R4"
    name = "api-contracts"
    description = (
        "public entry points taking eps/mu must validate their ranges"
    )

    def check(
        self, module: ModuleSource, config: AnalysisConfig
    ) -> Iterator[Finding]:
        if not config.matches(module.path, config.api_modules):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if node.name.startswith("_"):
                continue
            params = self._density_params(node)
            if not params:
                continue
            witnessed = self._witnessed(node, config)
            missing = sorted(params - witnessed)
            if missing:
                yield self.finding(
                    module,
                    node,
                    f"public entry point {node.name!r} takes "
                    f"{', '.join(missing)} but never validates "
                    "the range (call check_eps_mu or raise explicitly)",
                )

    @staticmethod
    def _density_params(node) -> Set[str]:
        args = node.args
        names = [
            a.arg for a in args.posonlyargs + args.args + args.kwonlyargs
        ]
        return {n for n in names if n in _PARAMS}

    @staticmethod
    def _witnessed(node, config: AnalysisConfig) -> Set[str]:
        witnessed: Set[str] = set()
        validators = set(config.validators)
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call):
                func = sub.func
                name = (
                    func.id
                    if isinstance(func, ast.Name)
                    else func.attr
                    if isinstance(func, ast.Attribute)
                    else ""
                )
                if name in validators:
                    for arg in list(sub.args) + [k.value for k in sub.keywords]:
                        for leaf in ast.walk(arg):
                            if (
                                isinstance(leaf, ast.Name)
                                and leaf.id in _PARAMS
                            ):
                                witnessed.add(leaf.id)
            elif isinstance(sub, ast.If):
                if any(isinstance(n, ast.Raise) for n in ast.walk(sub)):
                    for leaf in ast.walk(sub.test):
                        if isinstance(leaf, ast.Name) and leaf.id in _PARAMS:
                            witnessed.add(leaf.id)
            elif isinstance(sub, ast.Assert):
                for leaf in ast.walk(sub.test):
                    if isinstance(leaf, ast.Name) and leaf.id in _PARAMS:
                        witnessed.add(leaf.id)
        return witnessed
