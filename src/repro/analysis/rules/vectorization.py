"""R3 — hot-kernel vectorization.

In designated kernel modules (the similarity oracle and the CSR
substrate), a Python-level ``for`` loop iterating CSR index arrays is a
performance bug waiting for traffic: the whole point of the CSR layout
is that neighbor arithmetic runs inside numpy.  The rule flags ``for``
statements whose iterable mentions a CSR marker (``indptr``,
``indices``, ``.neighbors(...)``, ``range(n)`` …).  Loops that must
stay sequential (e.g. because they charge per-item instrumentation)
carry a ``# repro: allow[R3]`` pragma with a justification.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.config import AnalysisConfig
from repro.analysis.core import ModuleSource, Rule
from repro.analysis.findings import Finding

__all__ = ["VectorizationRule"]


class VectorizationRule(Rule):
    id = "R3"
    name = "hot-kernel-vectorization"
    description = (
        "no Python for loops over CSR index arrays in designated "
        "kernel modules"
    )

    def check(
        self, module: ModuleSource, config: AnalysisConfig
    ) -> Iterator[Finding]:
        if not config.matches(module.path, config.kernel_modules):
            return
        markers = set(config.loop_markers)
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.For, ast.AsyncFor)):
                continue
            marker = self._marker_in(node.iter, markers)
            if marker is not None:
                yield self.finding(
                    module,
                    node,
                    f"Python for loop over CSR data ({marker!r}) in a "
                    "kernel module; vectorize with numpy or justify "
                    "with '# repro: allow[R3]'",
                )

    @staticmethod
    def _marker_in(iterable: ast.AST, markers) -> str | None:
        for sub in ast.walk(iterable):
            if isinstance(sub, ast.Name) and sub.id in markers:
                return sub.id
            if isinstance(sub, ast.Attribute) and sub.attr in markers:
                return sub.attr
        return None
