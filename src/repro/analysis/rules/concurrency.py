"""R1 — anySCAN's concurrency contract (static race detector).

Figure 4 of the paper budgets each parallel iteration at one atomic per
neighbor update and one critical section per ``Union``.  This rule
finds worker callables handed to a pool (the first argument of any
``<backend>.map(...)`` or ``<pool>.submit(...)`` call, plus anything
passed as an ``initializer=`` keyword — those run once per worker
process before any task) and flags
every write they make to state captured from an enclosing scope unless
it is routed through a declared atomic helper or wrapped in a declared
critical section / lock.  The runtime shadow-write checker in
:mod:`repro.analysis.runtime` is the dynamic half of the same check.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Union

from repro.analysis.config import AnalysisConfig
from repro.analysis.core import ModuleSource, Rule
from repro.analysis.findings import Finding

__all__ = ["ConcurrencyContractRule"]

#: Method names that mutate their receiver; calling one on captured
#: state from a worker is a shared write in disguise.
_MUTATORS = frozenset(
    {
        "union",
        "grow",
        "reset_counters",
        "append",
        "extend",
        "insert",
        "pop",
        "popitem",
        "remove",
        "clear",
        "add",
        "discard",
        "update",
        "setdefault",
        "sort",
        "reverse",
        "fill",
        "resize",
        "put",
    }
)

_Worker = Union[ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda]


class ConcurrencyContractRule(Rule):
    id = "R1"
    name = "concurrency-contract"
    description = (
        "writes to shared state inside thread-pool workers must go "
        "through declared atomic/critical helpers (one atomic per "
        "neighbor update, one critical section per Union)"
    )

    def check(
        self, module: ModuleSource, config: AnalysisConfig
    ) -> Iterator[Finding]:
        finder = _WorkerFinder()
        finder.visit(module.tree)
        seen: Set[int] = set()
        for worker in finder.workers:
            if id(worker) in seen:
                continue
            seen.add(id(worker))
            yield from self._check_worker(module, config, worker)

    # ------------------------------------------------------------------
    # per-worker analysis
    # ------------------------------------------------------------------
    def _check_worker(
        self, module: ModuleSource, config: AnalysisConfig, worker: _Worker
    ) -> Iterator[Finding]:
        label = getattr(worker, "name", "<lambda>")
        bound = _bound_names(worker)
        body: List[ast.AST]
        if isinstance(worker, ast.Lambda):
            body = [worker.body]
        else:
            body = list(worker.body)
        walker = _SharedWriteWalker(self, module, config, label, bound)
        for stmt in body:
            walker.walk(stmt, guarded=False)
        yield from walker.findings

    def shared_write(
        self,
        module: ModuleSource,
        node: ast.AST,
        label: str,
        name: str,
        kind: str,
    ) -> Finding:
        return self.finding(
            module,
            node,
            f"unguarded {kind} to shared {name!r} inside worker "
            f"{label!r} passed to a thread pool; route it through a "
            "declared atomic helper or a critical section "
            "(one-atomic/one-critical budget, Figure 4)",
        )


class _WorkerFinder(ast.NodeVisitor):
    """Collects defs / lambdas passed to ``.map``/``.submit``/``initializer=``."""

    def __init__(self) -> None:
        self.scopes: List[dict] = [{}]
        self.workers: List[_Worker] = []

    def visit_Module(self, node: ast.Module) -> None:
        self.scopes[-1].update(_local_defs(node.body))
        self.generic_visit(node)

    def _visit_function(self, node) -> None:
        self.scopes.append(_local_defs(node.body))
        self.generic_visit(node)
        self.scopes.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        targets: List[ast.AST] = []
        if (
            isinstance(func, ast.Attribute)
            and func.attr in ("map", "submit")
            and node.args
        ):
            targets.append(node.args[0])
        # Pool constructors: initializer= runs in every worker process
        # before it takes tasks, so it is a worker entry point too.
        targets.extend(
            kw.value for kw in node.keywords if kw.arg == "initializer"
        )
        for target in targets:
            if isinstance(target, ast.Name):
                for scope in reversed(self.scopes):
                    if target.id in scope:
                        self.workers.append(scope[target.id])
                        break
            elif isinstance(target, ast.Lambda):
                self.workers.append(target)
        self.generic_visit(node)


def _local_defs(body) -> dict:
    """Function definitions in ``body``, not descending into nested defs."""
    found: dict = {}
    stack = list(body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            found[node.name] = node
            continue
        if isinstance(node, ast.Lambda):
            continue
        stack.extend(ast.iter_child_nodes(node))
    return found


def _bound_names(worker: _Worker) -> Set[str]:
    """Names local to the worker: parameters plus assigned bare names."""
    args = worker.args
    bound = {a.arg for a in args.posonlyargs + args.args + args.kwonlyargs}
    if args.vararg:
        bound.add(args.vararg.arg)
    if args.kwarg:
        bound.add(args.kwarg.arg)
    if isinstance(worker, ast.Lambda):
        return bound
    free: Set[str] = set()
    for node in ast.walk(worker):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            bound.add(node.id)
        elif isinstance(node, (ast.Nonlocal, ast.Global)):
            free.update(node.names)
    return bound - free


def _root_name(node: ast.AST) -> Optional[str]:
    """Leftmost ``Name`` of an attribute/subscript chain, if any."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


class _SharedWriteWalker:
    """Walks a worker body tracking whether a critical guard is active."""

    def __init__(
        self,
        rule: ConcurrencyContractRule,
        module: ModuleSource,
        config: AnalysisConfig,
        label: str,
        bound: Set[str],
    ) -> None:
        self.rule = rule
        self.module = module
        self.config = config
        self.label = label
        self.bound = bound
        self.findings: List[Finding] = []

    # -- guard recognition ---------------------------------------------
    def _is_guard(self, context_expr: ast.AST) -> bool:
        if isinstance(context_expr, ast.Call):
            func = context_expr.func
            name = (
                func.id
                if isinstance(func, ast.Name)
                else func.attr
                if isinstance(func, ast.Attribute)
                else ""
            )
            return name in self.config.critical_helpers
        name = (
            context_expr.id
            if isinstance(context_expr, ast.Name)
            else context_expr.attr
            if isinstance(context_expr, ast.Attribute)
            else ""
        )
        return "lock" in name.lower()

    # -- violation predicates ------------------------------------------
    def _flag_target(self, node: ast.AST, target: ast.AST) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._flag_target(node, element)
            return
        if isinstance(target, ast.Starred):
            self._flag_target(node, target.value)
            return
        if isinstance(target, ast.Subscript):
            root = _root_name(target)
            if root is not None and root not in self.bound:
                self.findings.append(
                    self.rule.shared_write(
                        self.module, node, self.label, root, "indexed write"
                    )
                )
        elif isinstance(target, ast.Attribute):
            root = _root_name(target)
            if root is not None and root not in self.bound:
                self.findings.append(
                    self.rule.shared_write(
                        self.module, node, self.label, root, "attribute write"
                    )
                )
        elif isinstance(target, ast.Name):
            if target.id not in self.bound:
                # Only reachable via nonlocal/global declarations.
                self.findings.append(
                    self.rule.shared_write(
                        self.module, node, self.label, target.id, "write"
                    )
                )

    def _flag_mutator_call(self, node: ast.Call) -> None:
        func = node.func
        if not isinstance(func, ast.Attribute) or func.attr not in _MUTATORS:
            return
        root = _root_name(func.value)
        if root is not None and root not in self.bound:
            self.findings.append(
                self.rule.shared_write(
                    self.module,
                    node,
                    self.label,
                    f"{root}.{func.attr}()",
                    "mutating call",
                )
            )

    # -- traversal ------------------------------------------------------
    def walk(self, node: ast.AST, guarded: bool) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            return  # nested scopes get their own analysis if dispatched
        if isinstance(node, ast.With):
            inner = guarded or any(
                self._is_guard(item.context_expr) for item in node.items
            )
            for item in node.items:
                self.walk(item.context_expr, guarded)
            for stmt in node.body:
                self.walk(stmt, inner)
            return
        if not guarded:
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    self._flag_target(node, target)
            elif isinstance(node, ast.Call):
                self._flag_mutator_call(node)
        for child in ast.iter_child_nodes(node):
            self.walk(child, guarded)
