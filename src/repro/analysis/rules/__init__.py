"""The repo-specific rule pack.

Rule ids are stable and documented in DESIGN.md: R1–R5 are the
anySCAN-specific contracts, G1–G3 are generic hygiene rules.
"""

from __future__ import annotations

from typing import Dict, List, Type

from repro.analysis.core import Rule
from repro.analysis.rules.api import ApiContractRule
from repro.analysis.rules.concurrency import ConcurrencyContractRule
from repro.analysis.rules.generic import (
    BareExceptRule,
    FrozenMutationRule,
    MutableDefaultRule,
)
from repro.analysis.rules.purity import PurityRule
from repro.analysis.rules.robustness import ExceptionDisciplineRule
from repro.analysis.rules.vectorization import VectorizationRule

__all__ = ["RULE_CLASSES", "RULE_INDEX", "default_rules"]

RULE_CLASSES: List[Type[Rule]] = [
    ConcurrencyContractRule,
    PurityRule,
    VectorizationRule,
    ApiContractRule,
    ExceptionDisciplineRule,
    MutableDefaultRule,
    BareExceptRule,
    FrozenMutationRule,
]

RULE_INDEX: Dict[str, Type[Rule]] = {cls.id: cls for cls in RULE_CLASSES}


def default_rules() -> List[Rule]:
    """Fresh instances of every registered rule, in report order."""
    return [cls() for cls in RULE_CLASSES]
