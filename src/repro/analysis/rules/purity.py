"""R2 — library purity: no banned imports inside ``src/repro``.

The library must stay importable with nothing beyond numpy: no
``networkx`` fallbacks sneaking into algorithms, and no test-only
packages (``pytest``, ``hypothesis``) or imports of the test tree
leaking into shipped modules.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.config import AnalysisConfig
from repro.analysis.core import ModuleSource, Rule
from repro.analysis.findings import Finding

__all__ = ["PurityRule"]


class PurityRule(Rule):
    id = "R2"
    name = "library-purity"
    description = "no networkx/test-only imports inside the library tree"

    def check(
        self, module: ModuleSource, config: AnalysisConfig
    ) -> Iterator[Finding]:
        banned = set(config.banned_imports)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    top = alias.name.split(".")[0]
                    if top in banned:
                        yield self.finding(
                            module,
                            node,
                            f"banned import {alias.name!r}; the library "
                            "tree must not depend on it",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.level or not node.module:
                    continue
                top = node.module.split(".")[0]
                if top in banned:
                    yield self.finding(
                        module,
                        node,
                        f"banned import {node.module!r}; the library "
                        "tree must not depend on it",
                    )
