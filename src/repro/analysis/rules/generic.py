"""Generic hygiene rules (G1–G3) riding along with the repo pack.

G1 — mutable default arguments; G2 — bare ``except:``; G3 — mutation
of ``frozen=True`` dataclass fields via ``object.__setattr__`` outside
``__post_init__`` (the one place the idiom is legitimate).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.config import AnalysisConfig
from repro.analysis.core import ModuleSource, Rule
from repro.analysis.findings import Finding

__all__ = ["MutableDefaultRule", "BareExceptRule", "FrozenMutationRule"]

_MUTABLE_CALLS = ("list", "dict", "set")


class MutableDefaultRule(Rule):
    id = "G1"
    name = "mutable-default-argument"
    description = "default argument values must not be mutable"

    def check(
        self, module: ModuleSource, config: AnalysisConfig
    ) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if self._mutable(default):
                    yield self.finding(
                        module,
                        default,
                        f"mutable default argument in {node.name!r}; "
                        "use None and create the value inside the body",
                    )

    @staticmethod
    def _mutable(node: ast.AST) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set)):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in _MUTABLE_CALLS
        )


class BareExceptRule(Rule):
    id = "G2"
    name = "bare-except"
    description = "bare except: swallows KeyboardInterrupt and typos alike"

    def check(
        self, module: ModuleSource, config: AnalysisConfig
    ) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield self.finding(
                    module,
                    node,
                    "bare 'except:'; catch a specific exception "
                    "(at least Exception)",
                )


class FrozenMutationRule(Rule):
    id = "G3"
    name = "frozen-dataclass-mutation"
    description = (
        "object.__setattr__ on frozen dataclasses only in __post_init__"
    )

    def check(
        self, module: ModuleSource, config: AnalysisConfig
    ) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not self._is_frozen_dataclass(node):
                continue
            for method in node.body:
                if not isinstance(
                    method, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    continue
                if method.name == "__post_init__":
                    continue
                for sub in ast.walk(method):
                    if self._is_object_setattr(sub):
                        yield self.finding(
                            module,
                            sub,
                            f"{node.name}.{method.name} mutates a frozen "
                            "dataclass via object.__setattr__; frozen "
                            "state may only be seeded in __post_init__",
                        )

    @staticmethod
    def _is_frozen_dataclass(node: ast.ClassDef) -> bool:
        for decorator in node.decorator_list:
            if not isinstance(decorator, ast.Call):
                continue
            func = decorator.func
            name = (
                func.id
                if isinstance(func, ast.Name)
                else func.attr
                if isinstance(func, ast.Attribute)
                else ""
            )
            if name != "dataclass":
                continue
            for keyword in decorator.keywords:
                if (
                    keyword.arg == "frozen"
                    and isinstance(keyword.value, ast.Constant)
                    and keyword.value.value is True
                ):
                    return True
        return False

    @staticmethod
    def _is_object_setattr(node: ast.AST) -> bool:
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "__setattr__"
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "object"
        )
