"""R5 — exception discipline in the failure-hardened layers.

The robustness story of DESIGN.md §9 only holds if no failure vanishes
silently: the parallel backends and the service layer may *translate*
exceptions (retry, degrade, answer 503) but every ``except`` handler
must leave a trace.  R5 enforces that contract structurally: inside the
``guarded-exception-modules`` (default ``repro/parallel`` and
``repro/service``), an ``except`` handler must do at least one of

* re-raise (``raise`` anywhere in the handler, chained or not),
* return a value (the caller sees the translated outcome),
* call a failure witness — a name from ``exception-witnesses``
  (metrics ``increment``/``observe_latency``/``record_event``, the
  scheduler's ``record_failure``, or ``fault_point``), or
* carry an explicit ``# repro: allow[swallow]`` pragma on the handler
  line (or a pure-comment line directly above), which is the audited
  "yes, swallowing is the contract here" marker — observer callbacks
  and best-effort cleanup are the legitimate cases.

``# repro: allow[R5]`` works too (the generic mechanism), but the
``swallow`` spelling is preferred because it names the *behaviour*
being waived, not the rule number.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.config import AnalysisConfig
from repro.analysis.core import ModuleSource, Rule
from repro.analysis.findings import Finding

__all__ = ["ExceptionDisciplineRule"]


class ExceptionDisciplineRule(Rule):
    id = "R5"
    name = "exception-discipline"
    description = (
        "except handlers in hardened modules must re-raise, return, "
        "call a failure witness, or carry # repro: allow[swallow]"
    )

    def check(
        self, module: ModuleSource, config: AnalysisConfig
    ) -> Iterator[Finding]:
        if not config.matches(module.path, config.guarded_exception_modules):
            return
        witnesses = set(config.exception_witnesses)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if module.suppressed(node.lineno, "swallow"):
                continue
            if self._witnessed(node, witnesses):
                continue
            caught = (
                ast.unparse(node.type) if node.type is not None else "<bare>"
            )
            yield self.finding(
                module,
                node,
                f"handler for {caught} swallows the failure; re-raise, "
                "return, call a witness "
                f"({', '.join(sorted(witnesses))}), or mark the line "
                "with '# repro: allow[swallow]'",
            )

    @staticmethod
    def _witnessed(handler: ast.ExceptHandler, witnesses: set) -> bool:
        for sub in ast.walk(handler):
            if isinstance(sub, (ast.Raise, ast.Return)):
                return True
            if isinstance(sub, ast.Call):
                func = sub.func
                name = (
                    func.id
                    if isinstance(func, ast.Name)
                    else func.attr
                    if isinstance(func, ast.Attribute)
                    else ""
                )
                if name in witnesses:
                    return True
        return False
