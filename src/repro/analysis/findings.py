"""The :class:`Finding` record emitted by every analysis rule."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a source location.

    Orders by (path, line, col, rule) so reports are stable regardless
    of rule execution order.
    """

    path: str
    line: int
    col: int
    rule: str = field(compare=False)
    message: str = field(compare=False)

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }
