"""Analyzer configuration, read from ``[tool.repro-analysis]``.

The analyzer works out of the box with repo-appropriate defaults; a
``pyproject.toml`` section overrides them, e.g.::

    [tool.repro-analysis]
    disable = ["G2"]
    kernel-modules = ["src/repro/similarity", "src/repro/graph/csr.py"]
    atomic-helpers = ["atomic_add", "my_atomic"]

Keys may be spelled with dashes (TOML style) or underscores.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from pathlib import Path
from typing import List, Optional

from repro.errors import ReproError

try:  # Python >= 3.11; analysis degrades to defaults without it.
    import tomllib
except ImportError:  # pragma: no cover - depends on interpreter
    tomllib = None  # type: ignore[assignment]

__all__ = ["AnalysisConfig", "AnalysisConfigError", "load_config"]


class AnalysisConfigError(ReproError):
    """Raised when the ``[tool.repro-analysis]`` section is malformed."""


@dataclass(frozen=True)
class AnalysisConfig:
    """Everything the rule pack can be parameterized on."""

    #: Path fragments excluded from analysis (matched against POSIX paths).
    exclude: List[str] = field(default_factory=list)
    #: Rule ids disabled globally.
    disable: List[str] = field(default_factory=list)
    #: Modules whose Python ``for`` loops over CSR arrays are flagged (R3).
    kernel_modules: List[str] = field(
        default_factory=lambda: ["repro/similarity", "repro/graph/csr.py"]
    )
    #: Modules whose public eps/mu entry points must validate (R4).
    api_modules: List[str] = field(
        default_factory=lambda: [
            "repro/baselines",
            "repro/core/explorer.py",
            "repro/core/hierarchy.py",
            "repro/parallel/threads.py",
        ]
    )
    #: Call names accepted as atomic write helpers inside workers (R1).
    atomic_helpers: List[str] = field(
        default_factory=lambda: [
            "atomic_add",
            "atomic_store",
            "atomic_max",
            "atomic_min",
        ]
    )
    #: Context managers / call names accepted as critical sections (R1).
    critical_helpers: List[str] = field(
        default_factory=lambda: ["critical", "critical_union"]
    )
    #: Top-level imports banned inside the library tree (R2).
    banned_imports: List[str] = field(
        default_factory=lambda: ["networkx", "pytest", "hypothesis", "tests"]
    )
    #: Validator call names accepted as an R4 witness.
    validators: List[str] = field(
        default_factory=lambda: ["check_eps_mu", "validate"]
    )
    #: Modules whose ``except`` handlers must re-raise, return, or call
    #: a failure witness (R5) — the layers that degrade instead of crash.
    guarded_exception_modules: List[str] = field(
        default_factory=lambda: ["repro/parallel", "repro/service"]
    )
    #: Call names accepted as an R5 failure witness (structured logging
    #: through metrics, failure bookkeeping, fault-site accounting).
    exception_witnesses: List[str] = field(
        default_factory=lambda: [
            "increment",
            "observe_latency",
            "record_event",
            "record_failure",
            "fault_point",
            "_force_fail",
        ]
    )
    #: Names/attributes marking a loop iterable as CSR-indexed (R3).
    loop_markers: List[str] = field(
        default_factory=lambda: [
            "indptr",
            "indices",
            "neighbors",
            "neighbor_weights",
            "degrees",
            "num_vertices",
            "num_edges",
            "n",
        ]
    )
    #: Extra concurrent roots for the interprocedural pass (R6/R7), as
    #: ``module:qualname`` refs or bare qualname suffixes — functions
    #: that run on ≥2 concurrent workers but reach their pool through
    #: indirection the call-graph builder cannot see.
    concurrency_roots: List[str] = field(default_factory=list)
    #: Substrings that mark a name/attribute as a lock-like guard for
    #: the interprocedural lock-set analysis (R6/R7).
    lock_name_fragments: List[str] = field(
        default_factory=lambda: ["lock", "mutex", "sem", "cond", "wake"]
    )
    #: Module-level lock names canonicalized to the one global critical
    #: section, so ``critical()`` and a direct ``with _GLOBAL_LOCK:``
    #: count as the *same* lock in R6 intersection tests.
    global_lock_names: List[str] = field(
        default_factory=lambda: ["_GLOBAL_LOCK"]
    )
    #: Call names that create a shared-memory segment the caller must
    #: close/unlink (R8), besides ``SharedMemory(create=True)`` itself.
    segment_factories: List[str] = field(
        default_factory=lambda: ["_create_named_segment"]
    )
    #: Call names that return any other owned handle the caller must
    #: close (R8) — file handles and the like (e.g. a WAL opener).
    #: Audited with the same obligation machinery as segments; a
    #: ``with`` statement over the factory discharges the obligation.
    handle_factories: List[str] = field(default_factory=list)

    def matches(self, path: Path | str, entries: List[str]) -> bool:
        """Whether ``path`` falls under any of the module ``entries``."""
        posix = Path(path).as_posix()
        for entry in entries:
            entry = entry.rstrip("/")
            if (
                posix == entry
                or posix.endswith("/" + entry)
                or posix.startswith(entry + "/")
                or ("/" + entry + "/") in posix
            ):
                return True
        return False

    def excluded(self, path: Path | str) -> bool:
        return self.matches(path, self.exclude)


def load_config(pyproject: Optional[Path] = None) -> AnalysisConfig:
    """Config from ``pyproject`` (or the nearest one above the cwd)."""
    if pyproject is None:
        pyproject = _discover()
        if pyproject is None:
            return AnalysisConfig()
    pyproject = Path(pyproject)
    if not pyproject.is_file():
        raise AnalysisConfigError(f"config file not found: {pyproject}")
    if tomllib is None:  # pragma: no cover - depends on interpreter
        return AnalysisConfig()
    try:
        data = tomllib.loads(pyproject.read_text(encoding="utf-8"))
    except tomllib.TOMLDecodeError as exc:
        raise AnalysisConfigError(f"invalid TOML in {pyproject}: {exc}") from exc
    section = data.get("tool", {}).get("repro-analysis", {})
    if not isinstance(section, dict):
        raise AnalysisConfigError("[tool.repro-analysis] must be a table")
    known = {f.name: f for f in fields(AnalysisConfig)}
    updates = {}
    for key, value in section.items():
        name = key.replace("-", "_")
        if name not in known:
            raise AnalysisConfigError(
                f"unknown [tool.repro-analysis] key {key!r}; "
                f"expected one of {sorted(k.replace('_', '-') for k in known)}"
            )
        if not isinstance(value, list) or not all(
            isinstance(item, str) for item in value
        ):
            raise AnalysisConfigError(
                f"[tool.repro-analysis] {key!r} must be a list of strings"
            )
        updates[name] = list(value)
    return replace(AnalysisConfig(), **updates)


def _discover() -> Optional[Path]:
    for directory in [Path.cwd(), *Path.cwd().parents]:
        candidate = directory / "pyproject.toml"
        if candidate.is_file():
            return candidate
    return None
