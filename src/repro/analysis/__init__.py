"""Static-analysis gate enforcing the repo's structural contracts.

An AST lint framework (visitor core, pluggable rules, pyproject
config) plus a repo-specific rule pack:

========  ==========================================================
rule id   contract
========  ==========================================================
``R1``    concurrency: shared writes in thread-pool workers must go
          through declared atomic/critical helpers (Figure 4 budget)
``R2``    library purity: no networkx / test-only imports in src
``R3``    hot-kernel vectorization: no Python loops over CSR arrays
          in designated kernel modules
``R4``    API contracts: public eps/mu entry points validate ranges
``G1-3``  generic hygiene (mutable defaults, bare except, frozen
          dataclass mutation outside ``__post_init__``)
========  ==========================================================

Run ``python -m repro.analysis src/repro`` (exits nonzero on
findings); suppress a finding inline with ``# repro: allow[R1]``.
The runtime half of R1 lives in :mod:`repro.analysis.runtime`.
"""

from repro.analysis.config import AnalysisConfig, AnalysisConfigError, load_config
from repro.analysis.core import Analyzer, ModuleSource, Rule, iter_python_files
from repro.analysis.findings import Finding
from repro.analysis.rules import RULE_CLASSES, RULE_INDEX, default_rules
from repro.analysis.runtime import Race, ShadowArray, ShadowWriteLog, WriteRecord

__all__ = [
    "AnalysisConfig",
    "AnalysisConfigError",
    "Analyzer",
    "Finding",
    "ModuleSource",
    "Rule",
    "RULE_CLASSES",
    "RULE_INDEX",
    "ShadowArray",
    "ShadowWriteLog",
    "Race",
    "WriteRecord",
    "default_rules",
    "iter_python_files",
    "load_config",
]
