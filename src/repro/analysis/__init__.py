"""Static-analysis gate enforcing the repo's structural contracts.

An AST lint framework (visitor core, pluggable rules, pyproject
config) plus a repo-specific rule pack:

========  ==========================================================
rule id   contract
========  ==========================================================
``R1``    concurrency: shared writes in thread-pool workers must go
          through declared atomic/critical helpers (Figure 4 budget)
``R2``    library purity: no networkx / test-only imports in src
``R3``    hot-kernel vectorization: no Python loops over CSR arrays
          in designated kernel modules
``R4``    API contracts: public eps/mu entry points validate ranges
``R5``    exception discipline: handlers in hardened modules must
          re-raise, return, or witness the failure
``R6``    interprocedural shared writes: state reachable from >=2
          concurrent worker roots needs a common lock on every path
``R7``    lock-order consistency: the acquisition-order graph across
          all concurrent roots must be acyclic (no ABBA deadlocks)
``R8``    shared-memory lifecycle: every ``SharedMemory`` create
          reaches close/unlink (or transfers ownership) on all
          paths, exception edges included
``G1-3``  generic hygiene (mutable defaults, bare except, frozen
          dataclass mutation outside ``__post_init__``)
========  ==========================================================

R1–R5 and G1–G3 are per-module; R6–R8 are whole-program passes built
on the call graph in :mod:`repro.analysis.dataflow` and run with
``python -m repro.analysis --interprocedural`` (exits nonzero on
findings).  Suppress a finding inline with ``# repro: allow[R1]``; a
pragma on a ``def`` line (or its decorators) covers the whole
function.  Reports render as text, JSON, or SARIF 2.1.0
(:mod:`repro.analysis.report`), with a checked-in baseline for
accepted findings.  The runtime half of R1 (:class:`ShadowArray`) and
of R7 (:class:`LockOrderWatch`) live in :mod:`repro.analysis.runtime`.
"""

from repro.analysis.config import AnalysisConfig, AnalysisConfigError, load_config
from repro.analysis.core import Analyzer, ModuleSource, Rule, iter_python_files
from repro.analysis.dataflow import (
    PROGRAM_RULE_CLASSES,
    PROGRAM_RULE_INDEX,
    Program,
    ProgramAnalyzer,
    ProgramRule,
    default_program_rules,
)
from repro.analysis.findings import Finding
from repro.analysis.report import (
    load_baseline,
    render_json,
    render_sarif,
    subtract_baseline,
    write_baseline,
)
from repro.analysis.rules import RULE_CLASSES, RULE_INDEX, default_rules
from repro.analysis.runtime import (
    LockOrderViolation,
    LockOrderWatch,
    Race,
    ShadowArray,
    ShadowWriteLog,
    WatchedLock,
    WriteRecord,
)

__all__ = [
    "AnalysisConfig",
    "AnalysisConfigError",
    "Analyzer",
    "Finding",
    "LockOrderViolation",
    "LockOrderWatch",
    "ModuleSource",
    "PROGRAM_RULE_CLASSES",
    "PROGRAM_RULE_INDEX",
    "Program",
    "ProgramAnalyzer",
    "ProgramRule",
    "Rule",
    "RULE_CLASSES",
    "RULE_INDEX",
    "ShadowArray",
    "ShadowWriteLog",
    "Race",
    "WatchedLock",
    "WriteRecord",
    "default_program_rules",
    "default_rules",
    "iter_python_files",
    "load_baseline",
    "load_config",
    "render_json",
    "render_sarif",
    "subtract_baseline",
    "write_baseline",
]
