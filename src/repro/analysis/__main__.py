"""CLI for the static-analysis gate.

Usage::

    python -m repro.analysis                # lint src/repro
    python -m repro.analysis src tests      # explicit paths
    python -m repro.analysis --list-rules   # rule ids and contracts
    python -m repro.analysis --select R1,R2 # subset of the pack

Exits 0 when clean, 1 on findings, 2 on usage/config errors — so CI
can use it as a hard gate.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

from repro.analysis.config import AnalysisConfigError, load_config
from repro.analysis.core import Analyzer
from repro.analysis.rules import RULE_INDEX, default_rules


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="AST lint gate for the anySCAN reproduction.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--config",
        type=Path,
        default=None,
        help="pyproject.toml holding [tool.repro-analysis] "
        "(default: nearest one above the cwd)",
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--disable",
        default=None,
        help="comma-separated rule ids to skip (adds to config)",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="finding output format",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list rule ids and exit"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_id, cls in sorted(RULE_INDEX.items()):
            print(f"{rule_id:>5}  {cls.name}: {cls.description}")
        return 0

    try:
        config = load_config(args.config)
    except AnalysisConfigError as exc:
        print(str(exc), file=sys.stderr)
        return 2

    rules = default_rules()
    if args.select:
        wanted = {part.strip() for part in args.select.split(",") if part.strip()}
        unknown = wanted - set(RULE_INDEX)
        if unknown:
            print(
                f"unknown rule id(s): {', '.join(sorted(unknown))}; "
                f"available: {', '.join(sorted(RULE_INDEX))}",
                file=sys.stderr,
            )
            return 2
        rules = [rule for rule in rules if rule.id in wanted]
    if args.disable:
        skipped = {part.strip() for part in args.disable.split(",")}
        rules = [rule for rule in rules if rule.id not in skipped]

    missing = [path for path in args.paths if not Path(path).exists()]
    if missing:
        print(f"no such path(s): {', '.join(missing)}", file=sys.stderr)
        return 2

    analyzer = Analyzer(config=config, rules=rules)
    findings = analyzer.analyze_paths(args.paths)

    try:
        if args.format == "json":
            print(json.dumps([f.to_dict() for f in findings], indent=2))
        else:
            for finding in findings:
                print(finding.format())
            if findings:
                print(f"\n{len(findings)} finding(s)", file=sys.stderr)
    except BrokenPipeError:
        # Downstream pager/head closed early; silence the shutdown flush.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
    return 1 if findings else 0


if __name__ == "__main__":
    raise SystemExit(main())
