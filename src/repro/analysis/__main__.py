"""CLI for the static-analysis gate.

Usage::

    python -m repro.analysis                     # lint src/repro
    python -m repro.analysis src tests           # explicit paths
    python -m repro.analysis --list-rules        # rule ids and contracts
    python -m repro.analysis --select R1,R6      # subset of the pack
    python -m repro.analysis --interprocedural   # add R6-R8 whole-program pass
    python -m repro.analysis --format sarif -o out.sarif
    python -m repro.analysis --baseline analysis-baseline.json

Exits 0 when clean, 1 on findings, 2 on usage/config errors — so CI
can use it as a hard gate.  With ``--baseline`` only findings absent
from the baseline count against the exit code; stale baseline entries
are reported on stderr so suppressions get pruned as code is fixed.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path
from typing import List

from repro.analysis.config import AnalysisConfigError, load_config
from repro.analysis.core import Analyzer
from repro.analysis.dataflow import ProgramAnalyzer
from repro.analysis.dataflow.rules import (
    PROGRAM_RULE_INDEX,
    default_program_rules,
)
from repro.analysis.findings import Finding
from repro.analysis.report import (
    load_baseline,
    render_json,
    render_sarif,
    subtract_baseline,
    write_baseline,
)
from repro.analysis.rules import RULE_INDEX, default_rules


def _all_rule_ids() -> set:
    return set(RULE_INDEX) | set(PROGRAM_RULE_INDEX)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="AST lint gate for the anySCAN reproduction.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--config",
        type=Path,
        default=None,
        help="pyproject.toml holding [tool.repro-analysis] "
        "(default: nearest one above the cwd)",
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--disable",
        default=None,
        help="comma-separated rule ids to skip (adds to config)",
    )
    parser.add_argument(
        "--interprocedural",
        action="store_true",
        help="also run the whole-program pass (rules R6-R8)",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json", "sarif"],
        default="text",
        help="finding output format",
    )
    parser.add_argument(
        "--output",
        "-o",
        type=Path,
        default=None,
        help="write the report here instead of stdout",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="JSON baseline of accepted findings; only new findings "
        "fail the gate",
    )
    parser.add_argument(
        "--write-baseline",
        type=Path,
        default=None,
        help="write the current findings as a baseline file and exit 0",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list rule ids and exit"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        per_module = sorted(RULE_INDEX.items())
        program = sorted(PROGRAM_RULE_INDEX.items())
        for rule_id, cls in per_module:
            print(f"{rule_id:>5}  {cls.name}: {cls.description}")
        for rule_id, cls in program:
            print(
                f"{rule_id:>5}  {cls.name}: {cls.description} "
                "[interprocedural]"
            )
        return 0

    try:
        config = load_config(args.config)
    except AnalysisConfigError as exc:
        print(str(exc), file=sys.stderr)
        return 2

    wanted = None
    if args.select:
        wanted = {
            part.strip() for part in args.select.split(",") if part.strip()
        }
        unknown = wanted - _all_rule_ids()
        if unknown:
            print(
                f"unknown rule id(s): {', '.join(sorted(unknown))}; "
                f"available: {', '.join(sorted(_all_rule_ids()))}",
                file=sys.stderr,
            )
            return 2
    skipped = set()
    if args.disable:
        skipped = {part.strip() for part in args.disable.split(",")}

    rules = default_rules()
    if wanted is not None:
        rules = [rule for rule in rules if rule.id in wanted]
    rules = [rule for rule in rules if rule.id not in skipped]

    program_rules = default_program_rules()
    if wanted is not None:
        program_rules = [r for r in program_rules if r.id in wanted]
    program_rules = [r for r in program_rules if r.id not in skipped]
    # --select R6 alone implies the interprocedural pass.
    run_program = args.interprocedural or (
        wanted is not None and bool(wanted & set(PROGRAM_RULE_INDEX))
    )

    missing = [path for path in args.paths if not Path(path).exists()]
    if missing:
        print(f"no such path(s): {', '.join(missing)}", file=sys.stderr)
        return 2

    analyzer = Analyzer(config=config, rules=rules)
    findings: List[Finding] = list(analyzer.analyze_paths(args.paths))
    if run_program and program_rules:
        program_analyzer = ProgramAnalyzer(
            config=config, rules=program_rules
        )
        findings.extend(program_analyzer.analyze_paths(args.paths))
    findings.sort()

    if args.write_baseline is not None:
        write_baseline(args.write_baseline, findings)
        print(
            f"wrote {len(findings)} finding(s) to {args.write_baseline}",
            file=sys.stderr,
        )
        return 0

    gating = findings
    if args.baseline is not None:
        try:
            baseline = load_baseline(args.baseline)
        except (OSError, ValueError) as exc:
            print(str(exc), file=sys.stderr)
            return 2
        diff = subtract_baseline(findings, baseline)
        gating = diff.new
        if diff.known:
            print(
                f"{len(diff.known)} finding(s) matched the baseline",
                file=sys.stderr,
            )
        for entry in diff.stale:
            print(
                "stale baseline entry (no longer fires): "
                f"{entry['path']}: {entry['rule']} {entry['message']}",
                file=sys.stderr,
            )

    if args.format == "json":
        report = render_json(gating)
    elif args.format == "sarif":
        report = render_sarif(gating)
    else:
        report = "".join(f.format() + "\n" for f in gating)

    try:
        if args.output is not None:
            args.output.write_text(report, encoding="utf-8")
            print(f"report written to {args.output}", file=sys.stderr)
        else:
            sys.stdout.write(report)
        if gating and args.format == "text":
            print(f"\n{len(gating)} finding(s)", file=sys.stderr)
    except BrokenPipeError:
        # Downstream pager/head closed early; silence the shutdown flush.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
    return 1 if gating else 0


if __name__ == "__main__":
    raise SystemExit(main())
