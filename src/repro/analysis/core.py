"""Visitor core of the AST lint framework.

A :class:`Rule` inspects one parsed module and yields
:class:`~repro.analysis.findings.Finding` records.  The
:class:`Analyzer` walks a set of paths, parses each ``.py`` file once,
runs every enabled rule over it, and filters findings through the
inline suppression pragma::

    some_statement()  # repro: allow[R1]

The pragma suppresses the named rule ids (comma separated, ``*`` for
all) on its own line and, when it trails a pure comment line, on the
line immediately below — so a justification comment above a flagged
statement carries the suppression.

Function/class signatures are treated as one suppression span: a
pragma anywhere between the first decorator and the end of the
signature covers findings reported at any line of that span, so
``# repro: allow[...]`` on the ``def`` line still works when
decorators shift the reported lineno or the signature wraps over
several lines.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.config import AnalysisConfig
from repro.analysis.findings import Finding

__all__ = ["ModuleSource", "Rule", "Analyzer", "iter_python_files"]

_PRAGMA = re.compile(r"#\s*repro:\s*allow\[([A-Za-z0-9_*,\s]+)\]")


@dataclass
class ModuleSource:
    """One parsed module plus everything rules need to inspect it."""

    path: Path
    text: str
    tree: ast.Module
    lines: List[str] = field(default_factory=list)
    _suppressions: Optional[Dict[int, Set[str]]] = None
    _def_spans: Optional[List[Tuple[int, int]]] = None

    @classmethod
    def parse(cls, path: Path, text: Optional[str] = None) -> "ModuleSource":
        if text is None:
            text = Path(path).read_text(encoding="utf-8")
        tree = ast.parse(text, filename=str(path))
        return cls(path=Path(path), text=text, tree=tree, lines=text.splitlines())

    @property
    def suppressions(self) -> Dict[int, Set[str]]:
        """1-based line number -> set of suppressed rule ids ('*' = all)."""
        if self._suppressions is None:
            table: Dict[int, Set[str]] = {}
            for lineno, line in enumerate(self.lines, start=1):
                match = _PRAGMA.search(line)
                if not match:
                    continue
                ids = {
                    part.strip()
                    for part in match.group(1).split(",")
                    if part.strip()
                }
                table.setdefault(lineno, set()).update(ids)
                if line.lstrip().startswith("#"):
                    # A pure-comment pragma also covers the statement below.
                    table.setdefault(lineno + 1, set()).update(ids)
            self._suppressions = table
        return self._suppressions

    @property
    def def_spans(self) -> List[Tuple[int, int, int]]:
        """(first decorator line, last signature line, last body line).

        A multi-line signature (or a decorated one) is one logical
        statement: a pragma anywhere on those lines belongs to the
        def.  For functions such a pragma covers the whole body —
        that is how a caller allows an interprocedural finding (R6-R8)
        anchored deep inside — while for classes it only covers the
        signature itself, so one ``class`` line cannot silence every
        method below it.
        """
        if self._def_spans is None:
            spans: List[Tuple[int, int, int]] = []
            for node in ast.walk(self.tree):
                if not isinstance(
                    node,
                    (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
                ):
                    continue
                start = min(
                    [node.lineno]
                    + [dec.lineno for dec in node.decorator_list]
                )
                sig_end = node.lineno
                if node.body:
                    sig_end = max(sig_end, node.body[0].lineno - 1)
                if isinstance(node, ast.ClassDef):
                    body_end = sig_end
                else:
                    body_end = max(sig_end, node.end_lineno or sig_end)
                spans.append((start, sig_end, body_end))
            self._def_spans = spans
        return self._def_spans

    def suppressed(self, line: int, rule_id: str) -> bool:
        ids = self.suppressions.get(line, set())
        if "*" in ids or rule_id in ids:
            return True
        for start, sig_end, body_end in self.def_spans:
            if start <= line <= body_end:
                for pragma_line in range(start, sig_end + 1):
                    span_ids = self.suppressions.get(pragma_line, set())
                    if "*" in span_ids or rule_id in span_ids:
                        return True
        return False


class Rule:
    """Base class for analysis rules.

    Subclasses set the class attributes and implement :meth:`check`,
    yielding findings; suppression and disabling are handled by the
    :class:`Analyzer`.
    """

    id: str = "R0"
    name: str = "unnamed"
    description: str = ""

    def check(
        self, module: ModuleSource, config: AnalysisConfig
    ) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self, module: ModuleSource, node: ast.AST, message: str
    ) -> Finding:
        return Finding(
            path=str(module.path),
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=self.id,
            message=message,
        )


def iter_python_files(paths: Sequence[Path | str]) -> Iterator[Path]:
    """All ``.py`` files under the given files/directories, sorted."""
    seen: Set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            if candidate not in seen:
                seen.add(candidate)
                yield candidate


class Analyzer:
    """Runs a rule pack over modules and collects filtered findings."""

    def __init__(
        self,
        config: Optional[AnalysisConfig] = None,
        rules: Optional[Sequence[Rule]] = None,
    ) -> None:
        from repro.analysis.rules import default_rules

        self.config = config or AnalysisConfig()
        self.rules: List[Rule] = list(rules) if rules is not None else default_rules()

    def enabled_rules(self) -> List[Rule]:
        disabled = set(self.config.disable)
        return [rule for rule in self.rules if rule.id not in disabled]

    def analyze_module(self, module: ModuleSource) -> List[Finding]:
        findings: List[Finding] = []
        for rule in self.enabled_rules():
            for found in rule.check(module, self.config):
                if not module.suppressed(found.line, found.rule):
                    findings.append(found)
        return sorted(findings)

    def analyze_paths(self, paths: Sequence[Path | str]) -> List[Finding]:
        findings: List[Finding] = []
        for path in iter_python_files(paths):
            if self.config.excluded(path):
                continue
            try:
                module = ModuleSource.parse(path)
            except (SyntaxError, UnicodeDecodeError, OSError) as exc:
                findings.append(
                    Finding(
                        path=str(path),
                        line=getattr(exc, "lineno", None) or 1,
                        col=1,
                        rule="PARSE",
                        message=f"could not parse module: {exc}",
                    )
                )
                continue
            findings.extend(self.analyze_module(module))
        return sorted(findings)
