"""Report emitters and the suppressions baseline for the analysis gate.

Three output shapes:

* ``render_json`` — a versioned JSON report (tool metadata + findings),
  the diffable artifact CI uploads on every run;
* ``render_sarif`` — SARIF 2.1.0, so code hosts and editors can ingest
  the same findings without a custom adapter;
* the **baseline** — a checked-in JSON list of known findings that the
  gate tolerates.  ``subtract_baseline`` drops findings already in the
  baseline, so the exit code only reflects *new* violations, and
  reports baseline entries that no longer fire so stale suppressions
  get cleaned up.

Baseline entries match on ``(path, rule, message)`` — deliberately not
on line/column, so unrelated edits shifting a file do not churn the
baseline.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.analysis.findings import Finding

__all__ = [
    "BaselineDiff",
    "load_baseline",
    "render_json",
    "render_sarif",
    "subtract_baseline",
    "write_baseline",
]

TOOL_NAME = "repro-analysis"
TOOL_VERSION = "1.0"
SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_BaselineKey = Tuple[str, str, str]


def _key(finding: Finding) -> _BaselineKey:
    return (finding.path, finding.rule, finding.message)


def _rule_descriptions() -> Dict[str, str]:
    # Imported lazily: rules import findings, findings must not import
    # rules at module load or the package would cycle.
    from repro.analysis.dataflow.rules import PROGRAM_RULE_INDEX
    from repro.analysis.rules import RULE_INDEX

    table: Dict[str, str] = {}
    for index in (RULE_INDEX, PROGRAM_RULE_INDEX):
        for rule_id, cls in index.items():
            table[rule_id] = getattr(cls, "description", "")
    return table


def render_json(findings: Sequence[Finding]) -> str:
    """Versioned JSON report: stable keys, findings pre-sorted."""
    payload = {
        "tool": {"name": TOOL_NAME, "version": TOOL_VERSION},
        "findings": [f.to_dict() for f in sorted(findings)],
        "summary": _summary(findings),
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def _summary(findings: Sequence[Finding]) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for finding in findings:
        counts[finding.rule] = counts.get(finding.rule, 0) + 1
    counts["total"] = len(findings)
    return counts


def render_sarif(findings: Sequence[Finding]) -> str:
    """SARIF 2.1.0 with one run, one result per finding."""
    descriptions = _rule_descriptions()
    seen_rules = sorted({f.rule for f in findings} | set(descriptions))
    rules = [
        {
            "id": rule_id,
            "shortDescription": {
                "text": descriptions.get(rule_id, rule_id)
            },
        }
        for rule_id in seen_rules
    ]
    rule_index = {rule_id: i for i, rule_id in enumerate(seen_rules)}
    results = [
        {
            "ruleId": finding.rule,
            "ruleIndex": rule_index[finding.rule],
            "level": "error",
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": finding.path.replace("\\", "/")
                        },
                        "region": {
                            "startLine": max(finding.line, 1),
                            "startColumn": max(finding.col + 1, 1),
                        },
                    }
                }
            ],
        }
        for finding in sorted(findings)
    ]
    document = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "version": TOOL_VERSION,
                        "informationUri": "https://example.invalid/repro",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(document, indent=2) + "\n"


@dataclass
class BaselineDiff:
    """Findings split against a baseline."""

    new: List[Finding]
    known: List[Finding]
    stale: List[dict]  # baseline entries that no longer fire


def load_baseline(path: Path) -> List[dict]:
    """Parse a baseline file; raises ValueError on malformed content."""
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path}: not valid JSON: {exc}") from exc
    entries = data.get("findings") if isinstance(data, dict) else data
    if not isinstance(entries, list):
        raise ValueError(f"{path}: expected a list of findings")
    for entry in entries:
        if not isinstance(entry, dict) or not {
            "path",
            "rule",
            "message",
        } <= set(entry):
            raise ValueError(
                f"{path}: each entry needs path/rule/message keys"
            )
    return entries


def subtract_baseline(
    findings: Iterable[Finding], baseline: Sequence[dict]
) -> BaselineDiff:
    accepted = {
        (entry["path"], entry["rule"], entry["message"])
        for entry in baseline
    }
    new: List[Finding] = []
    known: List[Finding] = []
    seen: set = set()
    for finding in findings:
        key = _key(finding)
        seen.add(key)
        (known if key in accepted else new).append(finding)
    stale = [
        entry
        for entry in baseline
        if (entry["path"], entry["rule"], entry["message"]) not in seen
    ]
    return BaselineDiff(new=new, known=known, stale=stale)


def write_baseline(path: Path, findings: Sequence[Finding]) -> None:
    payload = {
        "tool": {"name": TOOL_NAME, "version": TOOL_VERSION},
        "findings": [f.to_dict() for f in sorted(findings)],
    }
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
