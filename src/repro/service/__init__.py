"""Interactive anytime-clustering service (DESIGN.md §8, §11).

The integration layer over the reproduction's primitives: anySCAN's
suspend/resume contract (:mod:`repro.core.anyscan`) scheduled in
budgeted slices across a worker pool (:mod:`repro.service.jobs`), named
graphs with reusable σ indexes and an LRU result cache
(:mod:`repro.service.store`), a JSON wire protocol over the stdlib
HTTP server (:mod:`repro.service.api`, :mod:`repro.service.server`,
:mod:`repro.service.client`), and the observability the throughput
bench reads (:mod:`repro.service.metrics`).

Scale-out lives in two sibling modules: :mod:`repro.service.shm`
publishes the graph store zero-copy through named shared-memory
segments under a seqlock'd manifest, and :mod:`repro.service.fleet`
serves it from N processes behind one port (``repro serve
--processes N``) with a single-writer control channel for mutations.
"""

from repro.service.api import ServiceError, wire_table
from repro.service.client import ServiceClient, ServiceClientError
from repro.service.fleet import ServiceSupervisor, WorkerService
from repro.service.jobs import JobRecord, JobScheduler, JobState
from repro.service.metrics import (
    LatencyHistogram,
    ServiceMetrics,
    merge_metric_snapshots,
)
from repro.service.server import (
    ClusteringServer,
    ClusteringService,
    serve_main,
)
from repro.service.shm import (
    AttachedGraphStore,
    ManifestBlock,
    StorePublisher,
)
from repro.service.store import (
    CachedResult,
    CacheKey,
    GraphEntry,
    GraphStore,
    ResultCache,
    make_cache_key,
    similarity_signature,
)

__all__ = [
    "AttachedGraphStore",
    "CacheKey",
    "CachedResult",
    "ClusteringServer",
    "ClusteringService",
    "GraphEntry",
    "GraphStore",
    "JobRecord",
    "JobScheduler",
    "JobState",
    "LatencyHistogram",
    "ManifestBlock",
    "ResultCache",
    "ServiceClient",
    "ServiceClientError",
    "ServiceError",
    "ServiceMetrics",
    "ServiceSupervisor",
    "StorePublisher",
    "WorkerService",
    "make_cache_key",
    "merge_metric_snapshots",
    "serve_main",
    "similarity_signature",
    "wire_table",
]
