"""Multi-process sharded serving fleet (DESIGN.md §11).

``repro serve --processes N`` turns the single-process server into a
fleet of N worker processes that answer queries in parallel while
sharing every hosted graph — CSR arrays, materialized σ, and the
GS*-style clustering index — **zero-copy** through the shared-memory
publication layer of :mod:`repro.service.shm`:

* :class:`ServiceSupervisor` runs in the launching process.  It owns
  the single *writer* :class:`~repro.service.server.ClusteringService`
  (the only process that mutates graphs), mirrors its store through a
  :class:`~repro.service.shm.StorePublisher`, hosts the writer behind a
  loopback **control server**, and spawns N workers as fresh
  interpreter subprocesses (``python -m repro.service.fleet.worker``
  semantics via ``-c``-free module dispatch below).  A watch thread
  respawns workers that die, so a SIGKILL'd shard comes back without
  dropping the fleet.
* Each worker builds an :class:`~repro.service.shm.AttachedGraphStore`
  over the supervisor's manifest and serves the public port.  Load
  sharing uses ``SO_REUSEPORT`` when the kernel offers it — every
  worker binds its own listening socket on the shared port and the
  kernel balances accepts — and falls back to **pre-forked accept** on
  a single inherited listening socket otherwise.
* Mutations (``/graphs``, ``…/index``, ``…/update-edges``,
  ``/shutdown``) hitting a worker are forwarded over the control
  channel to the writer, which republishes the affected entry as a new
  epoch; the worker then refreshes its attachment before answering, so
  a client that mutates through shard A and immediately reads from
  shard A sees its own write.
* Job ids are shard-prefixed (``w3-job-7``); a worker receiving a job
  request it does not own proxies it to the owning shard's private
  admin endpoint, found in the fleet table the supervisor publishes
  through the manifest.

Workers are deliberately *subprocesses*, not forks of the supervisor: a
forked child inherits the publisher's segment registry along with its
GC/atexit finalizers, and those must never unlink segments the parent
still serves (the registries carry an owner-pid guard as a second line
of defense).  A fresh interpreter sidesteps the inherited-lock and
inherited-finalizer classes of bugs entirely; only the fallback
listening socket crosses the boundary, via ``pass_fds``.

**Durable HA mode** (``--processes N --data-dir DIR``, DESIGN.md §13):
the writer moves *out* of the supervisor into its own subprocess
(:func:`writer_main`) that journals every mutation through a
:class:`~repro.service.durability.DurabilityManager` before applying
it.  The supervisor becomes a pure process manager: it spawns the
writer, waits for its handshake file (manifest name + control URL),
spawns workers against that manifest, and watches both.  When the
writer dies dirty, the supervisor promotes the lowest registered shard
via ``POST /fleet/promote``: the shard replays the WAL into a fresh
writable store, adopts the *existing* manifest segment
(:meth:`~repro.service.shm.StorePublisher.adopt`), republishes every
entry at higher epochs, and starts accepting mutations itself — the
surviving readers never detach, so in-flight queries keep answering
throughout.  Workers re-resolve the control endpoint from the manifest
(the promoted writer republishes it) the first time a forward fails.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from multiprocessing import shared_memory
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import ConfigError
from repro.parallel.processes import untrack_attachment
from repro.service.api import ServiceError, get_bool, get_int, get_str
from repro.service.client import ServiceClient, ServiceClientError
from repro.service.metrics import ServiceMetrics, merge_metric_snapshots
from repro.service.server import ClusteringServer, ClusteringService
from repro.service.shm import (
    AttachedGraphStore,
    ManifestBlock,
    StorePublisher,
)

__all__ = [
    "ServiceSupervisor",
    "WorkerService",
    "WriterFleet",
    "worker_main",
    "writer_main",
]

#: Environment knob forcing the pre-forked-accept fallback even where
#: ``SO_REUSEPORT`` exists — lets tests exercise both socket strategies
#: on one kernel.
_FORCE_FALLBACK_ENV = "REPRO_FLEET_NO_REUSEPORT"

#: How long a spawning fleet waits for every worker to register.
_READY_TIMEOUT_SECONDS = 60.0

#: Thread cap for shard fan-out scrapes (``/jobs``, ``/fleet/metrics``).
#: Bounded so an N=32 fleet costs one round-trip of wall-clock, not 32,
#: without letting every handler thread spawn an unbounded pool.
_FANOUT_MAX_WORKERS = 8

#: Per-shard deadline for one fan-out request.  Doubles as the socket
#: timeout of the scraping client and the cap on waiting for the
#: future, so one hung shard delays the merged answer by at most this.
_FANOUT_TIMEOUT_SECONDS = 5.0


def _scrape_shards(
    records: List[Dict[str, object]],
    call: Callable[[ServiceClient], object],
    *,
    timeout: float = _FANOUT_TIMEOUT_SECONDS,
) -> Tuple[
    List[Tuple[Dict[str, object], object]],
    List[Tuple[Dict[str, object], Exception]],
]:
    """Fan ``call`` out to every shard's admin endpoint concurrently.

    Returns ``(results, failures)`` in ``records`` order, each pairing
    the worker record with the response body (or the exception).  Each
    shard gets its own one-shot :class:`ServiceClient` inside the
    worker thread — nothing is shared across threads, and the caller
    does all counter/event accounting on its own thread.
    """
    if not records:
        return [], []

    def scrape_one(record: Dict[str, object]) -> object:
        with ServiceClient(
            str(record["admin_url"]), timeout=timeout, max_retries=0
        ) as shard:
            return call(shard)

    results: List[Tuple[Dict[str, object], object]] = []
    failures: List[Tuple[Dict[str, object], Exception]] = []
    # Witness for swallowed per-shard errors: every failure lands in
    # the returned list; the caller turns them into counters/events.
    record_failure = failures.append
    pool = ThreadPoolExecutor(
        max_workers=min(_FANOUT_MAX_WORKERS, len(records)),
        thread_name_prefix="repro-fanout",
    )
    try:
        futures = [
            (record, pool.submit(scrape_one, record))
            for record in records
        ]
        for record, future in futures:
            try:
                # Slack over the client timeout: the socket deadline is
                # the real bound; this only catches a queued future
                # behind slow peers.
                results.append(
                    (record, future.result(timeout=timeout * 2.0))
                )
            except FutureTimeoutError as exc:
                future.cancel()
                record_failure((record, exc))
            except ServiceClientError as exc:
                record_failure((record, exc))
    finally:
        pool.shutdown(wait=False, cancel_futures=True)
    return results, failures


def _reuseport_available() -> bool:
    if os.environ.get(_FORCE_FALLBACK_ENV):
        return False
    return hasattr(socket, "SO_REUSEPORT")


def _bind_public_socket(host: str, port: int, *, listen: bool) -> socket.socket:
    """A public-port socket with ``SO_REUSEPORT`` set before bind.

    The supervisor binds one with ``listen=False`` purely to pin down a
    concrete port (resolving ``--port 0``) without joining the accept
    pool — a TCP socket outside LISTEN state never receives
    connections, so it cannot black-hole clients; workers bind theirs
    with ``listen=True`` to join the kernel's balancing group.
    """
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        sock.bind((host, port))
        if listen:
            sock.listen(128)
    except BaseException:
        sock.close()
        raise
    return sock


class WriterFleet:
    """Registration table + merged metrics for an out-of-supervisor writer.

    The non-durable fleet's writer lives inside the supervisor, which
    plays this role itself.  In durable HA mode the writer is a
    subprocess (:func:`writer_main`) — and after a failover, a promoted
    shard — so ``/fleet/register`` and ``/fleet/metrics`` land on a
    process with no :class:`ServiceSupervisor`.  This lighter object
    needs only the publisher (to publish the worker table) and the
    writer's metrics registry.
    """

    def __init__(
        self,
        publisher: StorePublisher,
        *,
        metrics,
        registrations: Optional[Dict[int, Dict[str, object]]] = None,
        self_index: Optional[int] = None,
    ) -> None:
        self.publisher = publisher
        self.metrics = metrics
        # A promoted shard inherits the dead writer's table so one new
        # registration cannot clobber its surviving peers; its own
        # record is skipped when scraping (it *is* this process).
        self._registrations: Dict[int, Dict[str, object]] = dict(
            registrations or {}
        )
        self._self_index = self_index
        self._lock = threading.Lock()

    def worker_table(self) -> List[Dict[str, object]]:
        with self._lock:
            return [
                dict(self._registrations[index])
                for index in sorted(self._registrations)
            ]

    def register_worker(
        self, payload: Dict[str, object]
    ) -> Dict[str, object]:
        try:
            index = int(payload["process_id"])  # type: ignore[arg-type]
            pid = int(payload["pid"])  # type: ignore[arg-type]
            admin_url = str(payload["admin_url"])
        except (KeyError, TypeError, ValueError):
            raise ServiceError(
                "fleet registration needs integer 'process_id'/'pid' "
                "and string 'admin_url'"
            ) from None
        record = {
            "process_id": index,
            "pid": pid,
            "admin_url": admin_url,
        }
        with self._lock:
            self._registrations[index] = record
            self.publisher.set_workers(
                [
                    self._registrations[i]
                    for i in sorted(self._registrations)
                ]
            )
            registered = len(self._registrations)
        self.metrics.increment("workers_registered")
        self.metrics.record_event("worker_registered", record)
        return {"status": "registered", "workers": registered}

    def merged_metrics(self) -> Dict[str, object]:
        snapshots = [self.metrics.snapshot()]
        with self._lock:
            workers = [
                dict(record)
                for index, record in self._registrations.items()
                if index != self._self_index
            ]
        workers.sort(key=lambda r: int(r["process_id"]))
        results, failures = _scrape_shards(
            workers, lambda shard: shard.metrics()
        )
        scraped = []
        for record, snapshot in results:
            snapshots.append(snapshot)
            scraped.append(record)
        for record, exc in failures:
            # A shard mid-respawn answers nothing; report it absent
            # rather than failing the whole scrape.
            self.metrics.increment("metrics_scrape_failures")
            self.metrics.record_event(
                "metrics_scrape_failed",
                {"process_id": record["process_id"], "error": str(exc)},
            )
        merged = merge_metric_snapshots(snapshots)
        merged["fleet"] = {
            "scraped_shards": [r["process_id"] for r in scraped],
            "generation": self.publisher.generation(),
        }
        return merged


class ServiceSupervisor:
    """Writer + publisher + worker fleet behind one public port."""

    def __init__(
        self,
        service: Optional[ClusteringService],
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        processes: int = 2,
        worker_options: Optional[Dict[str, object]] = None,
        respawn: bool = True,
        data_dir: Optional[str] = None,
        recover: bool = False,
        checkpoint_every: int = 64,
        writer_graphs: Optional[List[List[object]]] = None,
    ) -> None:
        if processes < 1:
            raise ConfigError("processes must be >= 1")
        if service is None and data_dir is None:
            raise ConfigError(
                "a supervisor needs a writer service, or a data_dir to "
                "run the writer as a durable subprocess"
            )
        self.service = service
        self.data_dir = data_dir
        self.recover = bool(recover)
        self.checkpoint_every = int(checkpoint_every)
        self._writer_graphs = [list(g) for g in (writer_graphs or [])]
        self.processes = int(processes)
        self.respawn = bool(respawn)
        self._worker_options = dict(worker_options or {})
        # HA mode has no in-process service; the supervisor keeps its
        # own registry for process-management telemetry.
        self.metrics = (
            service.metrics if service is not None else ServiceMetrics()
        )
        self.shutdown_event = (
            service.shutdown_event
            if service is not None
            else threading.Event()
        )
        self._lock = threading.Lock()
        self._procs: Dict[int, subprocess.Popen] = {}
        self._registrations: Dict[int, Dict[str, object]] = {}
        self._respawns = 0
        self._closing = threading.Event()
        self._watch: Optional[threading.Thread] = None

        # Durable-writer state (all None/idle in non-HA mode).
        self._writer_proc: Optional[subprocess.Popen] = None
        self._writer_index: Optional[int] = None
        self._writer_pid: Optional[int] = None
        self._failovers = 0
        self._manifest_shm = None
        self._manifest_reader: Optional[ManifestBlock] = None
        self._worker_table: List[Dict[str, object]] = []
        self._worker_manifest: Optional[str] = None
        self._worker_control: Optional[str] = None

        # Single-writer publication: every mutation of the writer's
        # store lands in shared memory as a fresh epoch.  In HA mode
        # the writer subprocess owns the publisher instead.
        self.publisher: Optional[StorePublisher] = None
        self._listen_sock: Optional[socket.socket] = None
        self._probe_sock: Optional[socket.socket] = None
        self._control: Optional[ClusteringServer] = None
        try:
            if service is not None:
                self.publisher = StorePublisher(metrics=service.metrics)
                service.store.attach_publisher(self.publisher)
                service.fleet = self
            self.reuseport = _reuseport_available()
            if self.reuseport:
                # Reserve the concrete port; workers bind their own
                # listeners against it.
                self._probe_sock = _bind_public_socket(
                    host, port, listen=False
                )
                resolved = self._probe_sock.getsockname()
            else:
                # Pre-fork fallback: one listening socket, inherited by
                # every worker, which all accept on it.
                self._listen_sock = socket.create_server(
                    (host, port), backlog=128, reuse_port=False
                )
                resolved = self._listen_sock.getsockname()
            self.host = resolved[0]
            self.port = int(resolved[1])
            if service is not None:
                # The control channel: the writer service itself, on a
                # loopback port workers forward mutations to.
                self._control = ClusteringServer(
                    service, host="127.0.0.1", port=0
                )
                self._control.start()
                assert self.publisher is not None
                self.publisher.set_control_url(self._control.url)
                self._worker_manifest = self.publisher.manifest_name
                self._worker_control = self._control.url
            else:
                self._spawn_writer()
        except BaseException:
            self._teardown()
            raise
        if service is not None:
            service.metrics.register_gauge(
                "process", self._process_gauge
            )
        self.metrics.register_gauge("fleet", self._fleet_gauge)

    # ------------------------------------------------------------------
    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    @property
    def control_url(self) -> str:
        assert self._worker_control is not None
        return self._worker_control

    def _process_gauge(self) -> Dict[str, object]:
        assert self.publisher is not None
        return {
            "role": "writer",
            "pid": os.getpid(),
            "generation": self.publisher.generation(),
        }

    def _fleet_gauge(self) -> Dict[str, object]:
        with self._lock:
            alive = sum(
                1 for proc in self._procs.values() if proc.poll() is None
            )
            return {
                "processes": self.processes,
                "alive": alive,
                "registered": len(self._registrations),
                "respawns": self._respawns,
                "reuseport": self.reuseport,
                "failovers": self._failovers,
            }

    # ------------------------------------------------------------------
    # durable writer subprocess (HA mode)
    # ------------------------------------------------------------------
    def _spawn_writer(self) -> None:
        """Start :func:`writer_main` and wait for its handshake file."""
        assert self.data_dir is not None
        handshake = os.path.join(self.data_dir, "writer.json")
        if os.path.exists(handshake):
            os.remove(handshake)
        options = {
            "data_dir": self.data_dir,
            "recover": self.recover,
            "checkpoint_every": self.checkpoint_every,
            "handshake": handshake,
            "service": self._worker_options,
            "graphs": self._writer_graphs,
        }
        proc = subprocess.Popen(
            [
                sys.executable,
                "-c",
                "import sys; from repro.service.fleet import writer_main; "
                "sys.exit(writer_main(sys.argv[1:]))",
                json.dumps(options),
            ],
            stdin=subprocess.DEVNULL,
        )
        self._writer_proc = proc
        deadline = time.monotonic() + _READY_TIMEOUT_SECONDS
        while True:
            if os.path.exists(handshake):
                try:
                    with open(handshake, "r", encoding="utf-8") as fh:
                        info = json.load(fh)
                    break
                except ValueError as exc:
                    # The rename is atomic, so this means a stale probe
                    # raced the writer; witness it and keep waiting.
                    self.metrics.record_event(
                        "writer_handshake_retry", {"error": str(exc)}
                    )
            if proc.poll() is not None:
                raise ConfigError(
                    "durable writer exited with "
                    f"{proc.returncode} before its handshake"
                )
            if time.monotonic() > deadline:
                proc.terminate()
                raise ConfigError(
                    "durable writer never wrote its handshake"
                )
            time.sleep(0.05)
        self._worker_manifest = str(info["manifest_name"])
        self._worker_control = str(info["control_url"])
        self._attach_manifest_reader()
        # Any later writer spawn replaces a crashed one: it must replay
        # the WAL, never refuse the (now non-empty) data directory.
        self.recover = True

    def _attach_manifest_reader(self) -> None:
        """(Re-)attach the supervisor's read-only manifest view."""
        if self._manifest_shm is not None:
            try:
                self._manifest_shm.close()
            except (OSError, BufferError) as exc:
                self.metrics.record_event(
                    "manifest_reader_close_skipped", {"error": str(exc)}
                )
        assert self._worker_manifest is not None
        self._manifest_shm = shared_memory.SharedMemory(
            name=self._worker_manifest
        )
        untrack_attachment(self._manifest_shm)
        self._manifest_reader = ManifestBlock(
            self._manifest_shm, writer=False
        )

    def _poll_worker_table(self) -> None:
        """Cache the manifest's fleet table (promotion candidates)."""
        if self._manifest_reader is None:
            return
        try:
            _, payload = self._manifest_reader.read()
        except ConfigError as exc:
            # Torn manifest right after a writer crash: keep the cached
            # table — it names exactly the shards worth promoting.
            self.metrics.record_event(
                "supervisor_manifest_stalled", {"error": str(exc)}
            )
            return
        self._worker_table = list(payload.get("workers", []))
        control = payload.get("control")
        if control:
            self._worker_control = str(control)

    def _check_writer(self) -> None:
        """Detect writer death; promote a shard or respawn the writer.

        Runs *before* the dead-worker respawn pass each tick so a
        promoted shard's corpse is still in ``_procs`` when inspected —
        the pid recorded at promotion time disambiguates it from a
        plain worker respawned at the same index.
        """
        if self._closing.is_set():
            return
        if self._writer_proc is not None:
            returncode = self._writer_proc.poll()
            if returncode is None:
                return
            self._writer_proc = None
            self.metrics.record_event(
                "writer_exit", {"returncode": returncode}
            )
            if returncode == 0:
                # Clean writer exit (drained via /shutdown): the fleet
                # is done.
                self.shutdown_event.set()
                return
            self.metrics.increment("writer_crashes")
            self._promote_or_respawn()
        elif self._writer_index is not None:
            with self._lock:
                proc = self._procs.get(self._writer_index)
            if (
                proc is not None
                and proc.pid == self._writer_pid
                and proc.poll() is None
            ):
                return
            if (
                proc is not None
                and proc.pid == self._writer_pid
                and proc.returncode == 0
            ):
                self._writer_index = None
                self._writer_pid = None
                self.shutdown_event.set()
                return
            failed, self._writer_index = self._writer_index, None
            self._writer_pid = None
            self.metrics.record_event(
                "promoted_writer_exit", {"process_id": failed}
            )
            self._promote_or_respawn(exclude=failed)

    def _promote_or_respawn(self, *, exclude: Optional[int] = None) -> None:
        """Promote the lowest live registered shard; else respawn the
        writer subprocess from the WAL."""
        self._poll_worker_table()
        table = sorted(
            self._worker_table,
            key=lambda rec: int(rec.get("process_id", 1 << 30)),
        )
        payload = {
            "data_dir": self.data_dir,
            "checkpoint_every": self.checkpoint_every,
        }
        for record in table:
            index = int(record.get("process_id", -1))
            if index == exclude:
                continue
            with self._lock:
                proc = self._procs.get(index)
            if (
                proc is None
                or proc.poll() is not None
                or proc.pid != int(record.get("pid", -1))
            ):
                # Dead, or the registration predates a respawn of this
                # index — the admin URL would reach the wrong process.
                continue
            try:
                with ServiceClient(
                    str(record["admin_url"]),
                    timeout=30.0,
                    max_retries=0,
                ) as admin:
                    body = admin.request(
                        "POST", "/fleet/promote", payload
                    )
            except ServiceClientError as exc:
                self.metrics.record_event(
                    "promotion_failed",
                    {"process_id": index, "error": str(exc)},
                )
                continue
            self._writer_index = index
            self._writer_pid = proc.pid
            self._failovers += 1
            control = body.get("control_url")
            if control:
                self._worker_control = str(control)
            self.metrics.increment("writer_failovers")
            self.metrics.record_event(
                "writer_failover",
                {"process_id": index, "control_url": control},
            )
            return
        # No promotable shard survived: bring up a fresh writer
        # subprocess from the WAL.  It creates a *new* manifest, so the
        # dead fleet's segments are swept and the workers restart.
        self._sweep_manifest()
        try:
            self._spawn_writer()
        except ConfigError as exc:
            self.metrics.record_event(
                "writer_respawn_failed", {"error": str(exc)}
            )
            self.shutdown_event.set()
            return
        self.metrics.increment("writer_respawns")
        self._restart_workers()

    def _sweep_manifest(self) -> None:
        """Unlink a dead writer's orphaned manifest + segments.

        Durable-writer segments are deliberately untracked, so nothing
        reclaims them automatically after a SIGKILL; the supervisor
        adopts the stale manifest just long enough to retire everything
        it names.  A missing manifest (clean writer exit already
        unlinked it) is the no-op case.
        """
        name = self._worker_manifest
        if name is None:
            return
        self._manifest_reader = None
        if self._manifest_shm is not None:
            try:
                self._manifest_shm.close()
            except (OSError, BufferError) as exc:
                self.metrics.record_event(
                    "manifest_reader_close_skipped", {"error": str(exc)}
                )
            self._manifest_shm = None
        try:
            leftover = StorePublisher.adopt(name, metrics=self.metrics)
        except (FileNotFoundError, ConfigError, OSError) as exc:
            self.metrics.record_event(
                "manifest_sweep_skipped",
                {"manifest": name, "error": str(exc)},
            )
            return
        leftover.retire_foreign_segments()
        leftover.close()
        self.metrics.record_event("manifest_swept", {"manifest": name})

    def _restart_workers(self) -> None:
        """Replace every worker (the manifest they attached is gone)."""
        with self._lock:
            procs = dict(self._procs)
            self._registrations = {}
        for proc in procs.values():
            if proc.poll() is None:
                proc.terminate()
        deadline = time.monotonic() + 5.0
        for proc in procs.values():
            remaining = max(0.0, deadline - time.monotonic())
            try:
                proc.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                self.metrics.increment("worker_kill_escalations")
                proc.kill()
                proc.wait(timeout=5.0)
        with self._lock:
            for index in procs:
                self._respawns += 1
                self._procs[index] = self._spawn(index)

    # ------------------------------------------------------------------
    # worker lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ServiceSupervisor":
        with self._lock:
            for index in range(self.processes):
                if index not in self._procs:
                    self._procs[index] = self._spawn(index)
        if self._watch is None:
            self._watch = threading.Thread(
                target=self._watch_loop, name="fleet-watch", daemon=True
            )
            self._watch.start()
        return self

    def _spawn(self, index: int) -> subprocess.Popen:
        options: Dict[str, object] = {
            "process_index": index,
            "manifest_name": self._worker_manifest,
            "control_url": self.control_url,
            "host": self.host,
            "port": self.port,
            "reuseport": self.reuseport,
            "service": self._worker_options,
        }
        pass_fds: List[int] = []
        if not self.reuseport:
            assert self._listen_sock is not None
            fd = self._listen_sock.fileno()
            options["listen_fd"] = fd
            pass_fds.append(fd)
        # -c, not -m: runpy would re-execute this module under __main__
        # after the package import already loaded it once.
        return subprocess.Popen(
            [
                sys.executable,
                "-c",
                "import sys; from repro.service.fleet import worker_main; "
                "sys.exit(worker_main(sys.argv[1:]))",
                json.dumps(options),
            ],
            pass_fds=pass_fds,
            stdin=subprocess.DEVNULL,
        )

    def _watch_loop(self) -> None:
        while not self._closing.wait(0.2):
            self._poll_worker_table()
            # Writer health first: a dead promoted shard must be seen
            # here, pid intact in _procs, before the respawn pass below
            # replaces it with a plain worker at the same index.
            self._check_writer()
            with self._lock:
                dead = [
                    (index, proc)
                    for index, proc in self._procs.items()
                    if proc.poll() is not None
                ]
                for index, proc in dead:
                    self.metrics.increment("worker_exits")
                    self.metrics.record_event(
                        "worker_exit",
                        {
                            "process_id": index,
                            "pid": proc.pid,
                            "returncode": proc.returncode,
                        },
                    )
                    self._registrations.pop(index, None)
                    if (
                        self.respawn
                        and not self._closing.is_set()
                        and not self.shutdown_event.is_set()
                    ):
                        self._respawns += 1
                        self.metrics.increment("worker_respawns")
                        self._procs[index] = self._spawn(index)
                    else:
                        del self._procs[index]
                if dead:
                    self._publish_workers_locked()

    def _publish_workers_locked(self) -> None:
        # In HA mode registrations land on the writer subprocess (its
        # WriterFleet publishes the table); the supervisor has nothing
        # to publish.
        if self.publisher is not None:
            self.publisher.set_workers(
                [
                    self._registrations[index]
                    for index in sorted(self._registrations)
                ]
            )

    # ------------------------------------------------------------------
    # control-channel callbacks (via the writer's /fleet/* handlers)
    # ------------------------------------------------------------------
    def register_worker(
        self, payload: Dict[str, object]
    ) -> Dict[str, object]:
        try:
            index = int(payload["process_id"])  # type: ignore[arg-type]
            pid = int(payload["pid"])  # type: ignore[arg-type]
            admin_url = str(payload["admin_url"])
        except (KeyError, TypeError, ValueError):
            raise ServiceError(
                "fleet registration needs integer 'process_id'/'pid' "
                "and string 'admin_url'"
            ) from None
        record = {
            "process_id": index,
            "pid": pid,
            "admin_url": admin_url,
        }
        with self._lock:
            self._registrations[index] = record
            self._publish_workers_locked()
            registered = len(self._registrations)
        self.metrics.increment("workers_registered")
        self.metrics.record_event("worker_registered", record)
        return {"status": "registered", "workers": registered}

    def merged_metrics(self) -> Dict[str, object]:
        """Fleet-wide ``/metrics``: summed counters, exactly merged
        histograms, per-shard gauges/events under ``shards``."""
        snapshots = [self.metrics.snapshot()]
        with self._lock:
            workers = [
                dict(record) for record in self._registrations.values()
            ]
        workers.sort(key=lambda r: int(r["process_id"]))
        results, failures = _scrape_shards(
            workers, lambda shard: shard.metrics()
        )
        scraped = []
        for record, snapshot in results:
            snapshots.append(snapshot)
            scraped.append(record)
        for record, exc in failures:
            # A shard mid-respawn (or hung past the per-shard deadline)
            # answers nothing; report it absent rather than failing the
            # whole scrape.
            self.metrics.increment("metrics_scrape_failures")
            self.metrics.record_event(
                "metrics_scrape_failed",
                {"process_id": record["process_id"], "error": str(exc)},
            )
        merged = merge_metric_snapshots(snapshots)
        merged["fleet"] = {
            "processes": self.processes,
            "scraped_shards": [r["process_id"] for r in scraped],
            "respawns": self._respawns,
            "generation": self.publisher.generation(),
        }
        return merged

    def wait_ready(
        self, timeout: float = _READY_TIMEOUT_SECONDS
    ) -> "ServiceSupervisor":
        """Block until every worker registered (spawn-time barrier).

        In HA mode the registrations live on the writer subprocess;
        the supervisor observes them through the manifest's fleet
        table instead of its own (empty) registration map.
        """
        deadline = time.monotonic() + timeout
        while True:
            if self.service is not None:
                with self._lock:
                    registered = len(self._registrations)
            else:
                self._poll_worker_table()
                registered = len(self._worker_table)
            if registered >= self.processes:
                return self
            if time.monotonic() > deadline:
                raise ConfigError(
                    f"fleet startup timed out: "
                    f"{self.processes - registered} of "
                    f"{self.processes} workers never registered"
                )
            time.sleep(0.05)

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop workers, the control server, and unlink every segment."""
        self._closing.set()
        if self._watch is not None:
            self._watch.join(timeout=5.0)
            self._watch = None
        self._teardown()

    def _teardown(self) -> None:
        with self._lock:
            procs = list(self._procs.values())
            self._procs = {}
            self._registrations = {}
        if any(proc.poll() is None for proc in procs):
            # Drain grace: a worker that just forwarded /shutdown to the
            # writer is still flushing that response to its client;
            # terminating instantly would reset the connection.
            time.sleep(0.3)
        for proc in procs:
            if proc.poll() is None:
                proc.terminate()
        deadline = time.monotonic() + 5.0
        for proc in procs:
            remaining = max(0.0, deadline - time.monotonic())
            try:
                proc.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                self.metrics.increment("worker_kill_escalations")
                proc.kill()
                proc.wait(timeout=5.0)
        writer, self._writer_proc = self._writer_proc, None
        if writer is not None:
            # Graceful stop: SIGTERM lets the writer take one final
            # checkpoint before releasing the WAL.
            if writer.poll() is None:
                writer.terminate()
            try:
                writer.wait(timeout=10.0)
            except subprocess.TimeoutExpired:
                self.metrics.increment("writer_kill_escalations")
                writer.kill()
                writer.wait(timeout=5.0)
        if self._control is not None:
            self._control.close()
            self._control = None
        for sock in (self._probe_sock, self._listen_sock):
            if sock is not None:
                sock.close()
        self._probe_sock = None
        self._listen_sock = None
        if self.service is None:
            # HA teardown: whatever the (possibly killed) writer or a
            # promoted shard left behind gets retired here — durable
            # segments are untracked, so nobody else will.
            self._sweep_manifest()
        self._manifest_reader = None
        if self._manifest_shm is not None:
            try:
                self._manifest_shm.close()
            except (OSError, BufferError) as exc:
                self.metrics.record_event(
                    "manifest_reader_close_skipped", {"error": str(exc)}
                )
            self._manifest_shm = None
        if self.publisher is not None:
            self.publisher.close()

    def __enter__(self) -> "ServiceSupervisor":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()


class WorkerService(ClusteringService):
    """A shard: answers reads locally, forwards writes to the writer.

    Reads run against the zero-copy :class:`AttachedGraphStore`; every
    request revalidates the manifest generation, so an epoch committed
    by the writer is visible to the very next read.  Mutations forward
    over the control channel and then ``refresh()`` before answering —
    read-your-writes for the client that mutated.  Job requests whose
    shard prefix names another worker proxy to that worker's admin URL
    from the published fleet table.
    """

    def __init__(
        self,
        *,
        store: AttachedGraphStore,
        control_url: str,
        process_index: int,
        **kwargs: object,
    ) -> None:
        super().__init__(
            store=store,  # type: ignore[arg-type]
            job_id_prefix=f"w{process_index}-job",
            **kwargs,  # type: ignore[arg-type]
        )
        self.process_index = int(process_index)
        self.control_url = control_url
        self._control = ServiceClient(
            control_url, timeout=self.request_timeout, max_retries=0
        )
        self._control_lock = threading.Lock()
        self._peer_lock = threading.Lock()
        self._peers: Dict[str, ServiceClient] = {}
        # Failover state: after /fleet/promote this shard *is* the
        # writer — self.store swaps to the recovered writable store,
        # while the original attachment stays open for concurrent
        # readers mid-request.
        self._attached: AttachedGraphStore = store
        self._promoted = False
        self._promote_lock = threading.Lock()
        self.admin_url: Optional[str] = None
        # Epoch-moved entries evict their stale cache lines eagerly
        # (correctness never depends on it — cache keys embed the
        # fingerprint, which the new epoch changed).
        store.fingerprint_listeners.append(self.cache.invalidate_fingerprint)
        store.metrics = self.metrics
        self.metrics.register_gauge("process", self._process_gauge)

    def _process_gauge(self) -> Dict[str, object]:
        if self._promoted:
            assert self.fleet is not None
            return {
                "role": "writer",
                "process_id": self.process_index,
                "pid": os.getpid(),
                "generation": self.fleet.publisher.generation(),
            }
        return {
            "role": "worker",
            "process_id": self.process_index,
            "pid": os.getpid(),
            "generation": self._attached.generation(),
            "epochs": self._attached.epochs(),
        }

    def close(self) -> None:
        super().close()
        self._control.close()
        with self._peer_lock:
            peers = list(self._peers.values())
            self._peers = {}
        for peer in peers:
            peer.close()
        if self.durability is not None:
            # Promoted shard: one final checkpoint caps the WAL before
            # the fsynced handle closes.
            self.durability.checkpoint(self.durability_snapshot())
            self.durability.close()
        if self._promoted and self.fleet is not None:
            self.fleet.publisher.close()
        self._attached.close()

    # ------------------------------------------------------------------
    # write forwarding (worker → writer over the control channel)
    # ------------------------------------------------------------------
    def _reresolve_control(self) -> bool:
        """Point the control client at the manifest's current writer.

        After a failover the promoted shard republishes its own control
        endpoint in the manifest; a worker whose forward just failed at
        the transport level re-resolves from there.  Returns whether
        the endpoint actually changed.
        """
        with self._control_lock:
            fresh = self._attached.control_url()
            if not fresh or fresh == self.control_url:
                return False
            stale, self.control_url = self.control_url, fresh
            old_client = self._control
            self._control = ServiceClient(
                fresh, timeout=self.request_timeout, max_retries=0
            )
            old_client.close()
        self.metrics.increment("control_reconnects")
        self.metrics.record_event(
            "control_reconnected", {"from": stale, "to": fresh}
        )
        return True

    def _control_request(
        self, method: str, path: str, payload: Dict[str, object]
    ) -> Dict[str, object]:
        try:
            return self._control.request(method, path, payload)
        except ServiceClientError as exc:
            if exc.status != 0:
                raise ServiceError(
                    str(exc), status=exc.status or 502,
                    retry_after=exc.retry_after,
                ) from None
            # Transport failure: the writer may have failed over.
            if not self._reresolve_control():
                raise ServiceError(
                    f"fleet writer unreachable: {exc}",
                    status=503, retry_after=1.0,
                ) from None
            try:
                return self._control.request(method, path, payload)
            except ServiceClientError as retry_exc:
                raise ServiceError(
                    str(retry_exc),
                    status=retry_exc.status or 503,
                    retry_after=retry_exc.retry_after or 1.0,
                ) from None

    def _forward(
        self, method: str, path: str, payload: Dict[str, object]
    ) -> Dict[str, object]:
        body = self._control_request(method, path, payload)
        # The writer committed a new epoch before answering; observe it
        # now so this worker's next read serves the mutated graph.
        self._attached.refresh()
        return body

    def handle_load_graph(self, payload):
        if self._promoted:
            return ClusteringService.handle_load_graph(self, payload)
        body = self._forward("POST", "/graphs", payload)
        self.metrics.increment("graphs_loaded")
        return body

    def handle_build_index(self, payload, name):
        if self._promoted:
            return ClusteringService.handle_build_index(
                self, payload, name
            )
        body = self._forward("POST", f"/graphs/{name}/index", payload)
        self.metrics.increment("cluster_indexes_built")
        return body

    def handle_update_edges(self, payload, name):
        if self._promoted:
            return ClusteringService.handle_update_edges(
                self, payload, name
            )
        # Invalidate this shard's cache lines for the pre-update
        # fingerprint *before* refresh() (whose listener would otherwise
        # count them first) so the reported count matches what a
        # single-process server answers for the same request stream.
        body = self._control_request(
            "POST", f"/graphs/{name}/update-edges", payload
        )
        if body.get("replayed") or body.get("recovered"):
            # Idempotent replay: the writer applied nothing (a retry of
            # an acked batch, possibly across a crash — recovered
            # markers carry no fingerprints at all), so there is no
            # old→new epoch to migrate cache lines across.
            self._attached.refresh()
            self.metrics.increment("update_idempotent_replays")
            return dict(body)
        # Local-query lines whose read set misses the update survive by
        # re-keying to the new fingerprint — done before refresh() so
        # the epoch listener's old-fingerprint sweep can't evict them.
        migration = self.cache.migrate_local(
            str(body["previous_fingerprint"]),
            str(body["fingerprint"]),
            list(body.get("affected_vertices") or ()),
            renumbered=int(body.get("vertices_added") or 0) > 0,
        )
        invalidated = self.cache.invalidate_fingerprint(
            str(body["previous_fingerprint"])
        )
        self._attached.refresh()
        self.metrics.increment("edge_updates")
        self.metrics.increment("cache_invalidated", invalidated)
        self.metrics.increment(
            "local_results_migrated", migration["moved"]
        )
        self.metrics.increment(
            "local_results_evicted", migration["evicted"]
        )
        return dict(
            body,
            cache_entries_invalidated=invalidated,
            local_results_migrated=migration["moved"],
            local_results_evicted=migration["evicted"],
        )

    def handle_shutdown(self, payload):
        if self._promoted:
            # This shard is the writer: stopping it drains the fleet
            # (the supervisor sees its clean exit and shuts down).
            return ClusteringService.handle_shutdown(self, payload)
        # Stopping one shard of a fleet is not a meaningful client
        # operation; /shutdown stops the whole fleet via the writer.
        body = self._forward("POST", "/shutdown", {})
        self.shutdown_event.set()
        return body

    def _ensure_local_indexes(self, name, entry):
        if self._promoted:
            # Writable store again: build σ tiers on demand like any
            # single-process writer.
            return ClusteringService._ensure_local_indexes(
                self, name, entry
            )
        # The attached store is read-only; local queries serve with
        # whatever σ tier the writer last published (degrading to the
        # oracle tier when no index survived the last update).
        return entry

    # ------------------------------------------------------------------
    # failover promotion (supervisor → this shard, DESIGN.md §13)
    # ------------------------------------------------------------------
    def handle_fleet_promote(self, payload):
        """Take over as the fleet's writer after the writer died.

        Replays the WAL (checkpoint + tail) into a fresh writable
        store, adopts the existing manifest so surviving readers never
        detach, republishes every recovered entry at strictly higher
        epochs, then starts journaling and accepting mutations itself.
        """
        data_dir = get_str(payload, "data_dir")
        checkpoint_every = get_int(payload, "checkpoint_every", 64)
        with self._promote_lock:
            if self._promoted:
                return {
                    "status": "already-writer",
                    "process_id": self.process_index,
                    "control_url": self.admin_url,
                }
            if self.admin_url is None:
                raise ServiceError(
                    "shard has no admin endpoint yet; cannot take "
                    "writer traffic",
                    status=503, retry_after=0.5,
                )
            from repro.service.durability import DurabilityManager

            manager = DurabilityManager(
                data_dir,
                checkpoint_every=checkpoint_every,
                metrics=self.metrics,
            )
            try:
                state = manager.recover()
                # The dead writer's registration table survives in the
                # manifest; inherit it so peers keep proxying jobs.
                peers = {
                    int(rec["process_id"]): dict(rec)
                    for rec in self._attached.workers()
                }
                publisher = StorePublisher.adopt(
                    self._attached.manifest_name, metrics=self.metrics
                )
            except BaseException:
                manager.close()
                raise
            store = state.store
            store.metrics = self.metrics
            self.store = store  # reads flip to the writable store
            store.attach_publisher(publisher)  # republish every entry
            publisher.set_control_url(str(self.admin_url))
            publisher.retire_foreign_segments()
            self.seed_update_keys(state.update_keys)
            self.import_recovered_jobs(state.job_blobs)
            store.attach_journal(manager)
            self.durability = manager
            self.fleet = WriterFleet(
                publisher,
                metrics=self.metrics,
                registrations=peers,
                self_index=self.process_index,
            )
            self._promoted = True
        self.metrics.increment("writer_promotions")
        self.metrics.record_event(
            "writer_promoted",
            {
                "process_id": self.process_index,
                "wal_seq": state.last_seq,
                "replayed_records": state.replayed_records,
                "graphs": len(store.names()),
            },
        )
        return {
            "status": "promoted",
            "process_id": self.process_index,
            "control_url": self.admin_url,
            "graphs": len(store.names()),
            "replayed_records": state.replayed_records,
        }

    def _worker_table(self) -> List[Dict[str, object]]:
        """The fleet table: from the manifest as a reader, from the
        local registration map once promoted (GraphStore has none)."""
        if self._promoted:
            assert self.fleet is not None
            return self.fleet.worker_table()
        return self._attached.workers()

    # ------------------------------------------------------------------
    # job routing (shard-prefixed ids; foreign ids proxy to the owner)
    # ------------------------------------------------------------------
    def _job_peer(self, job_id: str) -> Optional[ServiceClient]:
        """The owning shard's admin client, or None for local ids."""
        prefix, sep, _ = job_id.partition("-")
        if not sep or not prefix.startswith("w"):
            return None  # not shard-addressed; treat as local
        if prefix == f"w{self.process_index}":
            return None
        try:
            owner = int(prefix[1:])
        except ValueError:
            return None
        for record in self._worker_table():
            if int(record.get("process_id", -1)) == owner:
                admin_url = str(record["admin_url"])
                with self._peer_lock:
                    peer = self._peers.get(admin_url)
                    if peer is None:
                        peer = self._peers[admin_url] = ServiceClient(
                            admin_url,
                            timeout=self.request_timeout,
                            max_retries=0,
                        )
                return peer
        raise ServiceError(
            f"job {job_id!r} belongs to shard {owner}, which has left "
            "the fleet",
            status=410,
        )

    def _job_call(
        self,
        payload: Dict[str, object],
        job_id: str,
        method: str,
        suffix: str,
        local,
    ) -> Dict[str, object]:
        peer = self._job_peer(job_id)
        if peer is None:
            return local(payload, job_id)
        self.metrics.increment("jobs_proxied")
        try:
            return peer.request(method, f"/jobs/{job_id}{suffix}", payload)
        except ServiceClientError as exc:
            raise ServiceError(
                str(exc), status=exc.status or 502,
                retry_after=exc.retry_after,
            ) from None

    def handle_job_status(self, payload, job_id):
        return self._job_call(
            payload, job_id, "GET", "", super().handle_job_status
        )

    def handle_job_snapshot(self, payload, job_id):
        return self._job_call(
            payload, job_id, "GET", "/snapshot", super().handle_job_snapshot
        )

    def handle_job_result(self, payload, job_id):
        return self._job_call(
            payload, job_id, "GET", "/result", super().handle_job_result
        )

    def handle_pause_job(self, payload, job_id):
        return self._job_call(
            payload, job_id, "POST", "/pause", super().handle_pause_job
        )

    def handle_resume_job(self, payload, job_id):
        return self._job_call(
            payload, job_id, "POST", "/resume", super().handle_resume_job
        )

    def handle_cancel_job(self, payload, job_id):
        return self._job_call(
            payload, job_id, "POST", "/cancel", super().handle_cancel_job
        )

    def handle_set_priority(self, payload, job_id):
        return self._job_call(
            payload, job_id, "POST", "/priority", super().handle_set_priority
        )

    def handle_list_jobs(self, payload):
        """Union of every shard's jobs (``shard_only`` stops fan-out)."""
        local = super().handle_list_jobs(payload)
        if get_bool(payload, "shard_only", False):
            return local
        jobs = list(local["jobs"])
        peers = [
            record
            for record in self._worker_table()
            if int(record.get("process_id", -1)) != self.process_index
        ]
        results, failures = _scrape_shards(
            peers,
            lambda peer: peer.request("GET", "/jobs", {"shard_only": True}),
        )
        for _, remote in results:
            jobs.extend(remote["jobs"])
        for _ in failures:
            # A dying shard's jobs are gone with it; listing the
            # survivors is the useful answer.
            self.metrics.increment("job_list_scrape_failures")
        jobs.sort(key=lambda job: str(job.get("job_id", "")))
        return {"jobs": jobs}

    def handle_fleet_metrics(self, payload):
        if self._promoted:
            return ClusteringService.handle_fleet_metrics(self, payload)
        return self._forward("GET", "/fleet/metrics", payload)


# ----------------------------------------------------------------------
# worker process entry point (`python -m repro.service.fleet <json>`)
# ----------------------------------------------------------------------
def worker_main(argv: Optional[List[str]] = None) -> int:
    """Run one fleet worker until the fleet shuts down."""
    argv = sys.argv[1:] if argv is None else list(argv)
    if len(argv) != 1:
        print(
            "usage: worker_main(['<options json>'])",
            file=sys.stderr,
        )
        return 2
    options = json.loads(argv[0])
    from repro.parallel.processes import install_signal_cleanup

    install_signal_cleanup()
    index = int(options["process_index"])
    fault_plan = (options.get("service") or {}).pop("fault_plan", None)
    if fault_plan:
        from repro.faults import FaultPlan, arm

        with open(fault_plan, "r", encoding="utf-8") as handle:
            arm(FaultPlan.from_json(handle.read()))
    store = AttachedGraphStore(str(options["manifest_name"]))
    service = WorkerService(
        store=store,
        control_url=str(options["control_url"]),
        process_index=index,
        **(options.get("service") or {}),
    )
    if options.get("reuseport"):
        sock = _bind_public_socket(
            str(options["host"]), int(options["port"]), listen=True
        )
    else:
        sock = socket.socket(fileno=int(options["listen_fd"]))
    public = ClusteringServer(service, sock=sock)
    # The private admin endpoint: job proxying, metrics scrapes, and
    # failover promotion land here, addressed per-shard, never
    # load-balanced.
    admin = ClusteringServer(service, host="127.0.0.1", port=0)
    public.start()
    admin.start()
    service.admin_url = admin.url
    register = {
        "process_id": index,
        "pid": os.getpid(),
        "admin_url": admin.url,
    }
    try:
        with ServiceClient(
            str(options["control_url"]), timeout=10.0, max_retries=2
        ) as control:
            control.request("POST", "/fleet/register", register)
    except ServiceClientError as exc:
        # The writer may have failed over while this worker was
        # starting; the manifest names its successor.
        service.metrics.record_event(
            "register_reresolved", {"error": str(exc)}
        )
        fresh = store.control_url()
        if fresh is None or fresh == str(options["control_url"]):
            raise
        with ServiceClient(fresh, timeout=10.0, max_retries=2) as control:
            control.request("POST", "/fleet/register", register)
    try:
        while not service.shutdown_event.wait(timeout=0.2):
            if os.getppid() == 1:
                # The supervisor died without reaping us; exit rather
                # than serve a manifest nobody maintains.
                break
    except KeyboardInterrupt:  # ^C stops the worker, cleanly
        service.metrics.increment("keyboard_interrupts")
    finally:
        admin.close()
        public.close()
    return 0


# ----------------------------------------------------------------------
# durable writer process entry point (HA mode, DESIGN.md §13)
# ----------------------------------------------------------------------
def writer_main(argv: Optional[List[str]] = None) -> int:
    """Run the fleet's durable writer until drained or terminated.

    Recovers the store from ``data_dir`` (checkpoint + WAL tail),
    publishes it over shared memory, exposes the writer service on a
    loopback control port, and hands the supervisor a handshake file
    naming the manifest and control endpoint.  SIGTERM triggers a final
    checkpoint before exit — a SIGKILL instead is exactly what the WAL
    protects against.
    """
    argv = sys.argv[1:] if argv is None else list(argv)
    if len(argv) != 1:
        print(
            "usage: writer_main(['<options json>'])",
            file=sys.stderr,
        )
        return 2
    options = json.loads(argv[0])
    from repro.parallel.processes import install_signal_cleanup
    from repro.service.durability import DurabilityManager

    install_signal_cleanup()
    service_options = dict(options.get("service") or {})
    fault_plan = service_options.pop("fault_plan", None)
    if fault_plan:
        from repro.faults import FaultPlan, arm

        with open(fault_plan, "r", encoding="utf-8") as handle:
            arm(FaultPlan.from_json(handle.read()))
    metrics = ServiceMetrics()
    manager = DurabilityManager(
        str(options["data_dir"]),
        checkpoint_every=int(options.get("checkpoint_every", 64)),
        metrics=metrics,
    )
    recovered = manager.recover()
    if not options.get("recover") and recovered.last_seq > 0:
        print(
            "data dir holds existing state; the supervisor must pass "
            "recover=True",
            file=sys.stderr,
        )
        manager.close()
        return 3
    service = ClusteringService(
        store=recovered.store, metrics=metrics, **service_options
    )
    service.seed_update_keys(recovered.update_keys)
    service.import_recovered_jobs(recovered.job_blobs)
    publisher = StorePublisher(metrics=metrics, durable=True)
    service.store.attach_publisher(publisher)
    service.store.attach_journal(manager)
    service.durability = manager
    control = ClusteringServer(service, host="127.0.0.1", port=0)
    control.start()
    publisher.set_control_url(control.url)
    service.fleet = WriterFleet(publisher, metrics=metrics)
    # Preload requested graphs the recovery didn't already restore;
    # each add journals + publishes like any other mutation.
    hosted = set(service.store.names())
    for spec in options.get("graphs") or []:
        name = str(spec[0])
        if name in hosted:
            metrics.record_event("preload_skipped", {"graph": name})
            continue
        service.handle_load_graph(
            {
                "name": name,
                "path": str(spec[1]),
                "weighted": bool(spec[2]),
                "build_index": bool(spec[3]),
                "build_cluster_index": bool(spec[4]),
                **(
                    {"mu_cap": int(spec[5])}
                    if len(spec) > 5 and spec[5] is not None
                    else {}
                ),
            }
        )
    # SIGTERM now means "drain": checkpoint, then exit 0.  (Installed
    # after recovery so an early terminate still aborts hard.)
    signal.signal(
        signal.SIGTERM,
        lambda signum, frame: service.shutdown_event.set(),
    )
    # Handshake last: the supervisor spawns workers only against a
    # writer that is fully ready to take control traffic.
    handshake = str(options["handshake"])
    probe = handshake + ".tmp"
    with open(probe, "w", encoding="utf-8") as fh:
        json.dump(
            {
                "manifest_name": publisher.manifest_name,
                "control_url": control.url,
                "pid": os.getpid(),
            },
            fh,
        )
    os.replace(probe, handshake)
    try:
        while not service.shutdown_event.wait(timeout=0.2):
            if os.getppid() == 1:
                # The supervisor died without reaping us; stop rather
                # than journal for a fleet nobody manages.
                break
    except KeyboardInterrupt:
        metrics.increment("keyboard_interrupts")
    finally:
        control.close()
        manager.checkpoint(service.durability_snapshot())
        manager.close()
        publisher.close()
    return 0


if __name__ == "__main__":
    sys.exit(worker_main())
