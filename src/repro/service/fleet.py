"""Multi-process sharded serving fleet (DESIGN.md §11).

``repro serve --processes N`` turns the single-process server into a
fleet of N worker processes that answer queries in parallel while
sharing every hosted graph — CSR arrays, materialized σ, and the
GS*-style clustering index — **zero-copy** through the shared-memory
publication layer of :mod:`repro.service.shm`:

* :class:`ServiceSupervisor` runs in the launching process.  It owns
  the single *writer* :class:`~repro.service.server.ClusteringService`
  (the only process that mutates graphs), mirrors its store through a
  :class:`~repro.service.shm.StorePublisher`, hosts the writer behind a
  loopback **control server**, and spawns N workers as fresh
  interpreter subprocesses (``python -m repro.service.fleet.worker``
  semantics via ``-c``-free module dispatch below).  A watch thread
  respawns workers that die, so a SIGKILL'd shard comes back without
  dropping the fleet.
* Each worker builds an :class:`~repro.service.shm.AttachedGraphStore`
  over the supervisor's manifest and serves the public port.  Load
  sharing uses ``SO_REUSEPORT`` when the kernel offers it — every
  worker binds its own listening socket on the shared port and the
  kernel balances accepts — and falls back to **pre-forked accept** on
  a single inherited listening socket otherwise.
* Mutations (``/graphs``, ``…/index``, ``…/update-edges``,
  ``/shutdown``) hitting a worker are forwarded over the control
  channel to the writer, which republishes the affected entry as a new
  epoch; the worker then refreshes its attachment before answering, so
  a client that mutates through shard A and immediately reads from
  shard A sees its own write.
* Job ids are shard-prefixed (``w3-job-7``); a worker receiving a job
  request it does not own proxies it to the owning shard's private
  admin endpoint, found in the fleet table the supervisor publishes
  through the manifest.

Workers are deliberately *subprocesses*, not forks of the supervisor: a
forked child inherits the publisher's segment registry along with its
GC/atexit finalizers, and those must never unlink segments the parent
still serves (the registries carry an owner-pid guard as a second line
of defense).  A fresh interpreter sidesteps the inherited-lock and
inherited-finalizer classes of bugs entirely; only the fallback
listening socket crosses the boundary, via ``pass_fds``.
"""

from __future__ import annotations

import json
import os
import socket
import subprocess
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import ConfigError
from repro.service.api import ServiceError, get_bool
from repro.service.client import ServiceClient, ServiceClientError
from repro.service.metrics import merge_metric_snapshots
from repro.service.server import ClusteringServer, ClusteringService
from repro.service.shm import AttachedGraphStore, StorePublisher

__all__ = ["ServiceSupervisor", "WorkerService", "worker_main"]

#: Environment knob forcing the pre-forked-accept fallback even where
#: ``SO_REUSEPORT`` exists — lets tests exercise both socket strategies
#: on one kernel.
_FORCE_FALLBACK_ENV = "REPRO_FLEET_NO_REUSEPORT"

#: How long a spawning fleet waits for every worker to register.
_READY_TIMEOUT_SECONDS = 60.0

#: Thread cap for shard fan-out scrapes (``/jobs``, ``/fleet/metrics``).
#: Bounded so an N=32 fleet costs one round-trip of wall-clock, not 32,
#: without letting every handler thread spawn an unbounded pool.
_FANOUT_MAX_WORKERS = 8

#: Per-shard deadline for one fan-out request.  Doubles as the socket
#: timeout of the scraping client and the cap on waiting for the
#: future, so one hung shard delays the merged answer by at most this.
_FANOUT_TIMEOUT_SECONDS = 5.0


def _scrape_shards(
    records: List[Dict[str, object]],
    call: Callable[[ServiceClient], object],
    *,
    timeout: float = _FANOUT_TIMEOUT_SECONDS,
) -> Tuple[
    List[Tuple[Dict[str, object], object]],
    List[Tuple[Dict[str, object], Exception]],
]:
    """Fan ``call`` out to every shard's admin endpoint concurrently.

    Returns ``(results, failures)`` in ``records`` order, each pairing
    the worker record with the response body (or the exception).  Each
    shard gets its own one-shot :class:`ServiceClient` inside the
    worker thread — nothing is shared across threads, and the caller
    does all counter/event accounting on its own thread.
    """
    if not records:
        return [], []

    def scrape_one(record: Dict[str, object]) -> object:
        with ServiceClient(
            str(record["admin_url"]), timeout=timeout, max_retries=0
        ) as shard:
            return call(shard)

    results: List[Tuple[Dict[str, object], object]] = []
    failures: List[Tuple[Dict[str, object], Exception]] = []
    # Witness for swallowed per-shard errors: every failure lands in
    # the returned list; the caller turns them into counters/events.
    record_failure = failures.append
    pool = ThreadPoolExecutor(
        max_workers=min(_FANOUT_MAX_WORKERS, len(records)),
        thread_name_prefix="repro-fanout",
    )
    try:
        futures = [
            (record, pool.submit(scrape_one, record))
            for record in records
        ]
        for record, future in futures:
            try:
                # Slack over the client timeout: the socket deadline is
                # the real bound; this only catches a queued future
                # behind slow peers.
                results.append(
                    (record, future.result(timeout=timeout * 2.0))
                )
            except FutureTimeoutError as exc:
                future.cancel()
                record_failure((record, exc))
            except ServiceClientError as exc:
                record_failure((record, exc))
    finally:
        pool.shutdown(wait=False, cancel_futures=True)
    return results, failures


def _reuseport_available() -> bool:
    if os.environ.get(_FORCE_FALLBACK_ENV):
        return False
    return hasattr(socket, "SO_REUSEPORT")


def _bind_public_socket(host: str, port: int, *, listen: bool) -> socket.socket:
    """A public-port socket with ``SO_REUSEPORT`` set before bind.

    The supervisor binds one with ``listen=False`` purely to pin down a
    concrete port (resolving ``--port 0``) without joining the accept
    pool — a TCP socket outside LISTEN state never receives
    connections, so it cannot black-hole clients; workers bind theirs
    with ``listen=True`` to join the kernel's balancing group.
    """
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        sock.bind((host, port))
        if listen:
            sock.listen(128)
    except BaseException:
        sock.close()
        raise
    return sock


class ServiceSupervisor:
    """Writer + publisher + worker fleet behind one public port."""

    def __init__(
        self,
        service: ClusteringService,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        processes: int = 2,
        worker_options: Optional[Dict[str, object]] = None,
        respawn: bool = True,
    ) -> None:
        if processes < 1:
            raise ConfigError("processes must be >= 1")
        self.service = service
        self.processes = int(processes)
        self.respawn = bool(respawn)
        self._worker_options = dict(worker_options or {})
        self._lock = threading.Lock()
        self._procs: Dict[int, subprocess.Popen] = {}
        self._registrations: Dict[int, Dict[str, object]] = {}
        self._respawns = 0
        self._closing = threading.Event()
        self._watch: Optional[threading.Thread] = None

        # Single-writer publication: every mutation of the writer's
        # store now lands in shared memory as a fresh epoch.
        self.publisher = StorePublisher(metrics=service.metrics)
        self._listen_sock: Optional[socket.socket] = None
        self._probe_sock: Optional[socket.socket] = None
        self._control: Optional[ClusteringServer] = None
        try:
            service.store.attach_publisher(self.publisher)
            service.fleet = self
            self.reuseport = _reuseport_available()
            if self.reuseport:
                # Reserve the concrete port; workers bind their own
                # listeners against it.
                self._probe_sock = _bind_public_socket(
                    host, port, listen=False
                )
                resolved = self._probe_sock.getsockname()
            else:
                # Pre-fork fallback: one listening socket, inherited by
                # every worker, which all accept on it.
                self._listen_sock = socket.create_server(
                    (host, port), backlog=128, reuse_port=False
                )
                resolved = self._listen_sock.getsockname()
            self.host = resolved[0]
            self.port = int(resolved[1])
            # The control channel: the writer service itself, on a
            # loopback port workers forward mutations to.
            self._control = ClusteringServer(
                service, host="127.0.0.1", port=0
            )
            self._control.start()
        except BaseException:
            self._teardown()
            raise
        service.metrics.register_gauge("process", self._process_gauge)
        service.metrics.register_gauge("fleet", self._fleet_gauge)

    # ------------------------------------------------------------------
    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    @property
    def control_url(self) -> str:
        assert self._control is not None
        return self._control.url

    def _process_gauge(self) -> Dict[str, object]:
        return {
            "role": "writer",
            "pid": os.getpid(),
            "generation": self.publisher.generation(),
        }

    def _fleet_gauge(self) -> Dict[str, object]:
        with self._lock:
            alive = sum(
                1 for proc in self._procs.values() if proc.poll() is None
            )
            return {
                "processes": self.processes,
                "alive": alive,
                "registered": len(self._registrations),
                "respawns": self._respawns,
                "reuseport": self.reuseport,
            }

    # ------------------------------------------------------------------
    # worker lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ServiceSupervisor":
        with self._lock:
            for index in range(self.processes):
                if index not in self._procs:
                    self._procs[index] = self._spawn(index)
        if self._watch is None:
            self._watch = threading.Thread(
                target=self._watch_loop, name="fleet-watch", daemon=True
            )
            self._watch.start()
        return self

    def _spawn(self, index: int) -> subprocess.Popen:
        options: Dict[str, object] = {
            "process_index": index,
            "manifest_name": self.publisher.manifest_name,
            "control_url": self.control_url,
            "host": self.host,
            "port": self.port,
            "reuseport": self.reuseport,
            "service": self._worker_options,
        }
        pass_fds: List[int] = []
        if not self.reuseport:
            assert self._listen_sock is not None
            fd = self._listen_sock.fileno()
            options["listen_fd"] = fd
            pass_fds.append(fd)
        # -c, not -m: runpy would re-execute this module under __main__
        # after the package import already loaded it once.
        return subprocess.Popen(
            [
                sys.executable,
                "-c",
                "import sys; from repro.service.fleet import worker_main; "
                "sys.exit(worker_main(sys.argv[1:]))",
                json.dumps(options),
            ],
            pass_fds=pass_fds,
            stdin=subprocess.DEVNULL,
        )

    def _watch_loop(self) -> None:
        while not self._closing.wait(0.2):
            with self._lock:
                dead = [
                    (index, proc)
                    for index, proc in self._procs.items()
                    if proc.poll() is not None
                ]
                for index, proc in dead:
                    self.service.metrics.increment("worker_exits")
                    self.service.metrics.record_event(
                        "worker_exit",
                        {
                            "process_id": index,
                            "pid": proc.pid,
                            "returncode": proc.returncode,
                        },
                    )
                    self._registrations.pop(index, None)
                    if self.respawn and not self._closing.is_set():
                        self._respawns += 1
                        self.service.metrics.increment("worker_respawns")
                        self._procs[index] = self._spawn(index)
                    else:
                        del self._procs[index]
                if dead:
                    self._publish_workers_locked()

    def _publish_workers_locked(self) -> None:
        self.publisher.set_workers(
            [
                self._registrations[index]
                for index in sorted(self._registrations)
            ]
        )

    # ------------------------------------------------------------------
    # control-channel callbacks (via the writer's /fleet/* handlers)
    # ------------------------------------------------------------------
    def register_worker(
        self, payload: Dict[str, object]
    ) -> Dict[str, object]:
        try:
            index = int(payload["process_id"])  # type: ignore[arg-type]
            pid = int(payload["pid"])  # type: ignore[arg-type]
            admin_url = str(payload["admin_url"])
        except (KeyError, TypeError, ValueError):
            raise ServiceError(
                "fleet registration needs integer 'process_id'/'pid' "
                "and string 'admin_url'"
            ) from None
        record = {
            "process_id": index,
            "pid": pid,
            "admin_url": admin_url,
        }
        with self._lock:
            self._registrations[index] = record
            self._publish_workers_locked()
            registered = len(self._registrations)
        self.service.metrics.increment("workers_registered")
        self.service.metrics.record_event("worker_registered", record)
        return {"status": "registered", "workers": registered}

    def merged_metrics(self) -> Dict[str, object]:
        """Fleet-wide ``/metrics``: summed counters, exactly merged
        histograms, per-shard gauges/events under ``shards``."""
        snapshots = [self.service.metrics.snapshot()]
        with self._lock:
            workers = [
                dict(record) for record in self._registrations.values()
            ]
        workers.sort(key=lambda r: int(r["process_id"]))
        results, failures = _scrape_shards(
            workers, lambda shard: shard.metrics()
        )
        scraped = []
        for record, snapshot in results:
            snapshots.append(snapshot)
            scraped.append(record)
        for record, exc in failures:
            # A shard mid-respawn (or hung past the per-shard deadline)
            # answers nothing; report it absent rather than failing the
            # whole scrape.
            self.service.metrics.increment("metrics_scrape_failures")
            self.service.metrics.record_event(
                "metrics_scrape_failed",
                {"process_id": record["process_id"], "error": str(exc)},
            )
        merged = merge_metric_snapshots(snapshots)
        merged["fleet"] = {
            "processes": self.processes,
            "scraped_shards": [r["process_id"] for r in scraped],
            "respawns": self._respawns,
            "generation": self.publisher.generation(),
        }
        return merged

    def wait_ready(
        self, timeout: float = _READY_TIMEOUT_SECONDS
    ) -> "ServiceSupervisor":
        """Block until every worker registered (spawn-time barrier)."""
        deadline = time.monotonic() + timeout
        while True:
            with self._lock:
                if len(self._registrations) >= self.processes:
                    return self
            if time.monotonic() > deadline:
                with self._lock:
                    missing = self.processes - len(self._registrations)
                raise ConfigError(
                    f"fleet startup timed out: {missing} of "
                    f"{self.processes} workers never registered"
                )
            time.sleep(0.05)

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop workers, the control server, and unlink every segment."""
        self._closing.set()
        if self._watch is not None:
            self._watch.join(timeout=5.0)
            self._watch = None
        self._teardown()

    def _teardown(self) -> None:
        with self._lock:
            procs = list(self._procs.values())
            self._procs = {}
            self._registrations = {}
        if any(proc.poll() is None for proc in procs):
            # Drain grace: a worker that just forwarded /shutdown to the
            # writer is still flushing that response to its client;
            # terminating instantly would reset the connection.
            time.sleep(0.3)
        for proc in procs:
            if proc.poll() is None:
                proc.terminate()
        deadline = time.monotonic() + 5.0
        for proc in procs:
            remaining = max(0.0, deadline - time.monotonic())
            try:
                proc.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                self.service.metrics.increment("worker_kill_escalations")
                proc.kill()
                proc.wait(timeout=5.0)
        if self._control is not None:
            self._control.close()
            self._control = None
        for sock in (self._probe_sock, self._listen_sock):
            if sock is not None:
                sock.close()
        self._probe_sock = None
        self._listen_sock = None
        self.publisher.close()

    def __enter__(self) -> "ServiceSupervisor":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()


class WorkerService(ClusteringService):
    """A shard: answers reads locally, forwards writes to the writer.

    Reads run against the zero-copy :class:`AttachedGraphStore`; every
    request revalidates the manifest generation, so an epoch committed
    by the writer is visible to the very next read.  Mutations forward
    over the control channel and then ``refresh()`` before answering —
    read-your-writes for the client that mutated.  Job requests whose
    shard prefix names another worker proxy to that worker's admin URL
    from the published fleet table.
    """

    def __init__(
        self,
        *,
        store: AttachedGraphStore,
        control_url: str,
        process_index: int,
        **kwargs: object,
    ) -> None:
        super().__init__(
            store=store,  # type: ignore[arg-type]
            job_id_prefix=f"w{process_index}-job",
            **kwargs,  # type: ignore[arg-type]
        )
        self.process_index = int(process_index)
        self.control_url = control_url
        self._control = ServiceClient(
            control_url, timeout=self.request_timeout, max_retries=0
        )
        self._peer_lock = threading.Lock()
        self._peers: Dict[str, ServiceClient] = {}
        # Epoch-moved entries evict their stale cache lines eagerly
        # (correctness never depends on it — cache keys embed the
        # fingerprint, which the new epoch changed).
        store.fingerprint_listeners.append(self.cache.invalidate_fingerprint)
        store.metrics = self.metrics
        self.metrics.register_gauge("process", self._process_gauge)

    def _process_gauge(self) -> Dict[str, object]:
        return {
            "role": "worker",
            "process_id": self.process_index,
            "pid": os.getpid(),
            "generation": self.store.generation(),
            "epochs": self.store.epochs(),
        }

    def close(self) -> None:
        super().close()
        self._control.close()
        with self._peer_lock:
            peers = list(self._peers.values())
            self._peers = {}
        for peer in peers:
            peer.close()
        self.store.close()

    # ------------------------------------------------------------------
    # write forwarding (worker → writer over the control channel)
    # ------------------------------------------------------------------
    def _forward(
        self, method: str, path: str, payload: Dict[str, object]
    ) -> Dict[str, object]:
        try:
            body = self._control.request(method, path, payload)
        except ServiceClientError as exc:
            raise ServiceError(
                str(exc), status=exc.status or 502,
                retry_after=exc.retry_after,
            ) from None
        # The writer committed a new epoch before answering; observe it
        # now so this worker's next read serves the mutated graph.
        self.store.refresh()
        return body

    def handle_load_graph(self, payload):
        body = self._forward("POST", "/graphs", payload)
        self.metrics.increment("graphs_loaded")
        return body

    def handle_build_index(self, payload, name):
        body = self._forward("POST", f"/graphs/{name}/index", payload)
        self.metrics.increment("cluster_indexes_built")
        return body

    def handle_update_edges(self, payload, name):
        # Invalidate this shard's cache lines for the pre-update
        # fingerprint *before* refresh() (whose listener would otherwise
        # count them first) so the reported count matches what a
        # single-process server answers for the same request stream.
        try:
            body = self._control.request(
                "POST", f"/graphs/{name}/update-edges", payload
            )
        except ServiceClientError as exc:
            raise ServiceError(
                str(exc), status=exc.status or 502,
                retry_after=exc.retry_after,
            ) from None
        # Local-query lines whose read set misses the update survive by
        # re-keying to the new fingerprint — done before refresh() so
        # the epoch listener's old-fingerprint sweep can't evict them.
        migration = self.cache.migrate_local(
            str(body["previous_fingerprint"]),
            str(body["fingerprint"]),
            list(body.get("affected_vertices") or ()),
            renumbered=int(body.get("vertices_added") or 0) > 0,
        )
        invalidated = self.cache.invalidate_fingerprint(
            str(body["previous_fingerprint"])
        )
        self.store.refresh()
        self.metrics.increment("edge_updates")
        self.metrics.increment("cache_invalidated", invalidated)
        self.metrics.increment(
            "local_results_migrated", migration["moved"]
        )
        self.metrics.increment(
            "local_results_evicted", migration["evicted"]
        )
        return dict(
            body,
            cache_entries_invalidated=invalidated,
            local_results_migrated=migration["moved"],
            local_results_evicted=migration["evicted"],
        )

    def handle_shutdown(self, payload):
        # Stopping one shard of a fleet is not a meaningful client
        # operation; /shutdown stops the whole fleet via the writer.
        body = self._forward("POST", "/shutdown", {})
        self.shutdown_event.set()
        return body

    def _ensure_local_indexes(self, name, entry):
        # The attached store is read-only; local queries serve with
        # whatever σ tier the writer last published (degrading to the
        # oracle tier when no index survived the last update).
        return entry

    # ------------------------------------------------------------------
    # job routing (shard-prefixed ids; foreign ids proxy to the owner)
    # ------------------------------------------------------------------
    def _job_peer(self, job_id: str) -> Optional[ServiceClient]:
        """The owning shard's admin client, or None for local ids."""
        prefix, sep, _ = job_id.partition("-")
        if not sep or not prefix.startswith("w"):
            return None  # not shard-addressed; treat as local
        if prefix == f"w{self.process_index}":
            return None
        try:
            owner = int(prefix[1:])
        except ValueError:
            return None
        for record in self.store.workers():
            if int(record.get("process_id", -1)) == owner:
                admin_url = str(record["admin_url"])
                with self._peer_lock:
                    peer = self._peers.get(admin_url)
                    if peer is None:
                        peer = self._peers[admin_url] = ServiceClient(
                            admin_url,
                            timeout=self.request_timeout,
                            max_retries=0,
                        )
                return peer
        raise ServiceError(
            f"job {job_id!r} belongs to shard {owner}, which has left "
            "the fleet",
            status=410,
        )

    def _job_call(
        self,
        payload: Dict[str, object],
        job_id: str,
        method: str,
        suffix: str,
        local,
    ) -> Dict[str, object]:
        peer = self._job_peer(job_id)
        if peer is None:
            return local(payload, job_id)
        self.metrics.increment("jobs_proxied")
        try:
            return peer.request(method, f"/jobs/{job_id}{suffix}", payload)
        except ServiceClientError as exc:
            raise ServiceError(
                str(exc), status=exc.status or 502,
                retry_after=exc.retry_after,
            ) from None

    def handle_job_status(self, payload, job_id):
        return self._job_call(
            payload, job_id, "GET", "", super().handle_job_status
        )

    def handle_job_snapshot(self, payload, job_id):
        return self._job_call(
            payload, job_id, "GET", "/snapshot", super().handle_job_snapshot
        )

    def handle_job_result(self, payload, job_id):
        return self._job_call(
            payload, job_id, "GET", "/result", super().handle_job_result
        )

    def handle_pause_job(self, payload, job_id):
        return self._job_call(
            payload, job_id, "POST", "/pause", super().handle_pause_job
        )

    def handle_resume_job(self, payload, job_id):
        return self._job_call(
            payload, job_id, "POST", "/resume", super().handle_resume_job
        )

    def handle_cancel_job(self, payload, job_id):
        return self._job_call(
            payload, job_id, "POST", "/cancel", super().handle_cancel_job
        )

    def handle_set_priority(self, payload, job_id):
        return self._job_call(
            payload, job_id, "POST", "/priority", super().handle_set_priority
        )

    def handle_list_jobs(self, payload):
        """Union of every shard's jobs (``shard_only`` stops fan-out)."""
        local = super().handle_list_jobs(payload)
        if get_bool(payload, "shard_only", False):
            return local
        jobs = list(local["jobs"])
        peers = [
            record
            for record in self.store.workers()
            if int(record.get("process_id", -1)) != self.process_index
        ]
        results, failures = _scrape_shards(
            peers,
            lambda peer: peer.request("GET", "/jobs", {"shard_only": True}),
        )
        for _, remote in results:
            jobs.extend(remote["jobs"])
        for _ in failures:
            # A dying shard's jobs are gone with it; listing the
            # survivors is the useful answer.
            self.metrics.increment("job_list_scrape_failures")
        jobs.sort(key=lambda job: str(job.get("job_id", "")))
        return {"jobs": jobs}

    def handle_fleet_metrics(self, payload):
        return self._forward("GET", "/fleet/metrics", payload)


# ----------------------------------------------------------------------
# worker process entry point (`python -m repro.service.fleet <json>`)
# ----------------------------------------------------------------------
def worker_main(argv: Optional[List[str]] = None) -> int:
    """Run one fleet worker until the fleet shuts down."""
    argv = sys.argv[1:] if argv is None else list(argv)
    if len(argv) != 1:
        print(
            "usage: worker_main(['<options json>'])",
            file=sys.stderr,
        )
        return 2
    options = json.loads(argv[0])
    from repro.parallel.processes import install_signal_cleanup

    install_signal_cleanup()
    index = int(options["process_index"])
    fault_plan = (options.get("service") or {}).pop("fault_plan", None)
    if fault_plan:
        from repro.faults import FaultPlan, arm

        with open(fault_plan, "r", encoding="utf-8") as handle:
            arm(FaultPlan.from_json(handle.read()))
    store = AttachedGraphStore(str(options["manifest_name"]))
    service = WorkerService(
        store=store,
        control_url=str(options["control_url"]),
        process_index=index,
        **(options.get("service") or {}),
    )
    if options.get("reuseport"):
        sock = _bind_public_socket(
            str(options["host"]), int(options["port"]), listen=True
        )
    else:
        sock = socket.socket(fileno=int(options["listen_fd"]))
    public = ClusteringServer(service, sock=sock)
    # The private admin endpoint: job proxying and metrics scrapes land
    # here, addressed per-shard, never load-balanced.
    admin = ClusteringServer(service, host="127.0.0.1", port=0)
    public.start()
    admin.start()
    with ServiceClient(
        str(options["control_url"]), timeout=10.0, max_retries=2
    ) as control:
        control.request(
            "POST",
            "/fleet/register",
            {
                "process_id": index,
                "pid": os.getpid(),
                "admin_url": admin.url,
            },
        )
    try:
        while not service.shutdown_event.wait(timeout=0.2):
            if os.getppid() == 1:
                # The supervisor died without reaping us; exit rather
                # than serve a manifest nobody maintains.
                break
    except KeyboardInterrupt:  # ^C stops the worker, cleanly
        service.metrics.increment("keyboard_interrupts")
    finally:
        admin.close()
        public.close()
    return 0


if __name__ == "__main__":
    sys.exit(worker_main())
