"""Stdlib HTTP client for the clustering service.

A thin, dependency-free wrapper over :mod:`http.client` mirroring the
wire protocol one method per endpoint.  Domain failures surface as
:class:`ServiceClientError` carrying the HTTP status and the server's
error message, so callers distinguish "bad request" from "server died"
without parsing bodies themselves.

The transport holds **one persistent keep-alive connection** (the
server speaks HTTP/1.1): repeat requests skip the TCP handshake, which
both halves per-request overhead at bench scales and — against a
``SO_REUSEPORT`` fleet — pins a client to one shard for the
connection's lifetime, so job submit/poll sequences naturally land on
the owning process.  The connection is an optimization, never a
correctness dependency: any transport failure drops it and the next
request dials fresh.

Failure handling (DESIGN.md §9): every request carries a connect/read
timeout, and **idempotent GETs** are retried up to ``max_retries``
times with exponential backoff on transport failures and on 503
(honoring the server's ``Retry-After``).  POSTs are never retried by
the transport — re-submitting ``cluster`` could schedule a duplicate
job; callers wanting safe resubmission pass an ``idempotency_key``.
The one exception is a *reused* connection dying before any response
byte arrives (the server reaped it idle between requests); the request
is re-sent once on a fresh connection, exactly the recovery every
keep-alive HTTP library performs.

A **circuit breaker** guards the transport: after
``breaker_threshold`` consecutive transport failures (status 0 — the
server never answered) the client fails fast for
``breaker_cooldown`` seconds instead of burning a full connect
timeout per call against a dead endpoint.  After the cooldown one
trial request goes through (half-open); its success closes the
breaker, its failure re-opens the window.  HTTP-level errors (4xx/5xx
— the server *answered*) never trip it.
"""

from __future__ import annotations

import json
import threading
import time
from http.client import BadStatusLine, HTTPConnection, HTTPException
from typing import Dict, List, Optional, Sequence
from urllib.parse import urlencode, urlsplit

from repro.errors import ConfigError, ReproError
from repro.graph.csr import Graph
from repro.validation import check_eps_mu

__all__ = ["ServiceClient", "ServiceClientError"]


class ServiceClientError(ReproError):
    """A request the server rejected (or could not receive at all).

    ``status`` is 0 when the server was unreachable; ``retry_after``
    echoes the server's backoff hint when one was sent.
    """

    def __init__(
        self,
        message: str,
        *,
        status: int = 0,
        retry_after: Optional[float] = None,
    ) -> None:
        super().__init__(message)
        self.status = int(status)
        self.retry_after = (
            None if retry_after is None else float(retry_after)
        )


def _retry_after_seconds(value: Optional[str]) -> Optional[float]:
    if value is None:
        return None
    try:
        return max(0.0, float(value))
    except ValueError:
        return None  # HTTP-date form; treat as "no usable hint"


def _error_detail(body: bytes) -> str:
    """The server's ``error`` field, or ``""`` for a non-JSON body."""
    try:
        payload = json.loads(body.decode("utf-8"))
        return str(payload.get("error", ""))
    except (ValueError, UnicodeDecodeError):
        return ""


class ServiceClient:
    """One service endpoint, e.g. ``ServiceClient("http://127.0.0.1:8421")``."""

    def __init__(
        self,
        base_url: str,
        *,
        timeout: float = 30.0,
        max_retries: int = 2,
        retry_backoff: float = 0.2,
        breaker_threshold: int = 3,
        breaker_cooldown: float = 5.0,
    ) -> None:
        if timeout <= 0:
            raise ConfigError("timeout must be positive")
        if max_retries < 0:
            raise ConfigError("max_retries must be >= 0")
        if retry_backoff < 0:
            raise ConfigError("retry_backoff must be >= 0")
        if breaker_threshold < 0:
            raise ConfigError("breaker_threshold must be >= 0 (0 disables)")
        if breaker_cooldown <= 0:
            raise ConfigError("breaker_cooldown must be positive")
        self.base_url = base_url.rstrip("/")
        split = urlsplit(self.base_url)
        if split.scheme != "http" or not split.hostname:
            raise ConfigError(
                f"base_url must look like http://host:port, got {base_url!r}"
            )
        self._host = split.hostname
        self._port = split.port or 80
        self.timeout = float(timeout)
        self.max_retries = int(max_retries)
        self.retry_backoff = float(retry_backoff)
        # The persistent keep-alive connection; one in-flight request at
        # a time (the lock), matching http.client's connection model.
        self._conn: Optional[HTTPConnection] = None
        self._conn_lock = threading.Lock()
        self.breaker_threshold = int(breaker_threshold)
        self.breaker_cooldown = float(breaker_cooldown)
        self._breaker_lock = threading.Lock()
        self._consecutive_failures = 0
        self._breaker_open_until: Optional[float] = None

    def close(self) -> None:
        """Drop the persistent connection (idempotent)."""
        with self._conn_lock:
            if self._conn is not None:
                self._conn.close()
                self._conn = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    def _request(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, object]] = None,
    ) -> Dict[str, object]:
        # Only GETs are retried: they are idempotent by protocol design,
        # so a duplicate delivery cannot change server state.
        attempts = 1 + (self.max_retries if method == "GET" else 0)
        for attempt in range(attempts):
            try:
                return self._request_once(method, path, payload)
            except ServiceClientError as exc:
                transient = exc.status == 0 or exc.status == 503
                if not transient or attempt == attempts - 1:
                    raise
                delay = (
                    exc.retry_after
                    if exc.retry_after is not None
                    else self.retry_backoff * (2.0 ** attempt)
                )
                time.sleep(min(delay, 5.0))
        raise AssertionError("unreachable: loop returns or raises")

    # ------------------------------------------------------------------
    # circuit breaker
    # ------------------------------------------------------------------
    @property
    def breaker_open(self) -> bool:
        """Whether the breaker currently fails requests fast."""
        with self._breaker_lock:
            return (
                self._breaker_open_until is not None
                and time.monotonic() < self._breaker_open_until
            )

    def _breaker_admit(self) -> None:
        """Fail fast while the breaker is open; admit one half-open trial."""
        if self.breaker_threshold <= 0:
            return
        with self._breaker_lock:
            if self._breaker_open_until is None:
                return
            now = time.monotonic()
            remaining = self._breaker_open_until - now
            if remaining > 0:
                raise ServiceClientError(
                    f"circuit breaker open for {self.base_url} after "
                    f"{self._consecutive_failures} consecutive "
                    f"connection failures; cooling down "
                    f"{remaining:.2f}s",
                    status=0,
                    retry_after=remaining,
                )
            # Half-open: this request is the trial; concurrent callers
            # keep failing fast until it reports back.
            self._breaker_open_until = now + self.breaker_cooldown

    def _breaker_record(self, *, transport_failure: bool) -> None:
        if self.breaker_threshold <= 0:
            return
        with self._breaker_lock:
            if transport_failure:
                self._consecutive_failures += 1
                if self._consecutive_failures >= self.breaker_threshold:
                    self._breaker_open_until = (
                        time.monotonic() + self.breaker_cooldown
                    )
            else:
                self._consecutive_failures = 0
                self._breaker_open_until = None

    def _request_once(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, object]] = None,
    ) -> Dict[str, object]:
        self._breaker_admit()
        data = (
            json.dumps(payload).encode("utf-8")
            if payload is not None
            else None
        )
        try:
            with self._conn_lock:
                status, body, retry_after = self._exchange(
                    method, path, data
                )
        except ServiceClientError as exc:
            self._breaker_record(transport_failure=exc.status == 0)
            raise
        # The server answered; HTTP-level failures are its problem, not
        # the transport's, so any response closes the breaker.
        self._breaker_record(transport_failure=False)
        if status >= 400:
            raise ServiceClientError(
                _error_detail(body)
                or f"{method} {path} failed with HTTP {status}",
                status=status,
                retry_after=_retry_after_seconds(retry_after),
            )
        return json.loads(body.decode("utf-8"))

    def _exchange(
        self, method: str, path: str, data: Optional[bytes]
    ) -> "tuple[int, bytes, Optional[str]]":
        """One request/response over the persistent connection.

        Caller holds ``_conn_lock``.  A failure on a **reused**
        connection before any response byte (the server reaped it idle)
        re-dials and re-sends once; every other failure maps to the
        transient status-0 :class:`ServiceClientError`.
        """
        for attempt in (0, 1):
            conn = self._conn
            reused = conn is not None
            if conn is None:
                conn = HTTPConnection(
                    self._host, self._port, timeout=self.timeout
                )
            self._conn = None
            try:
                conn.request(
                    method,
                    path,
                    body=data,
                    headers={"Content-Type": "application/json"},
                )
                response = conn.getresponse()
                body = response.read()
            except (OSError, HTTPException) as exc:
                conn.close()
                stale_reuse = reused and isinstance(
                    exc, (ConnectionError, BadStatusLine)
                )
                if stale_reuse and attempt == 0:
                    continue
                if isinstance(exc, TimeoutError):
                    raise ServiceClientError(
                        f"{method} {path} timed out after "
                        f"{self.timeout}s: {exc}"
                    ) from None
                if not reused and isinstance(exc, ConnectionError):
                    raise ServiceClientError(
                        f"cannot reach {self.base_url}: {exc}"
                    ) from None
                # Connection-level failures (reset, server closed
                # mid-read): transient, so they share retryable status 0.
                raise ServiceClientError(
                    f"connection to {self.base_url} failed: "
                    f"{type(exc).__name__}: {exc}"
                ) from None
            if response.will_close:
                conn.close()
            else:
                self._conn = conn
            return (
                response.status,
                body,
                response.getheader("Retry-After"),
            )
        raise AssertionError("unreachable: loop returns or raises")

    def request(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, object]] = None,
    ) -> Dict[str, object]:
        """Raw wire-level escape hatch (used by the fleet's forwarding
        and job-proxy paths); same retry/error semantics as the typed
        endpoint methods."""
        return self._request(method, path, payload)

    # ------------------------------------------------------------------
    # graphs
    # ------------------------------------------------------------------
    def load_graph(
        self,
        name: str,
        *,
        graph: Optional[Graph] = None,
        edges: Optional[Sequence[Sequence[float]]] = None,
        num_vertices: Optional[int] = None,
        similarity: Optional[Dict[str, object]] = None,
        build_index: bool = False,
        build_cluster_index: bool = False,
        mu_cap: Optional[int] = None,
        replace: bool = False,
    ) -> Dict[str, object]:
        """Host a graph server-side, from a CSR ``graph`` or raw edges."""
        if (graph is None) == (edges is None):
            raise ServiceClientError(
                "pass exactly one of 'graph' or 'edges'"
            )
        if graph is not None:
            edges = [[int(u), int(v), float(w)] for u, v, w in graph.edges()]
            num_vertices = graph.num_vertices
        payload: Dict[str, object] = {
            "name": name,
            "edges": [list(edge) for edge in (edges or [])],
            "build_index": build_index,
            "build_cluster_index": build_cluster_index,
            "replace": replace,
        }
        if num_vertices is not None:
            payload["num_vertices"] = int(num_vertices)
        if mu_cap is not None:
            payload["mu_cap"] = int(mu_cap)
        if similarity is not None:
            payload["similarity"] = similarity
        return self._request("POST", "/graphs", payload)

    def build_cluster_index(
        self, name: str, *, mu_cap: Optional[int] = None
    ) -> Dict[str, object]:
        """Build (or rebuild) the clustering index for a hosted graph.

        Afterwards every ``cluster`` query on the graph is answered
        straight from the index — zero σ evaluations — and the index is
        repatched automatically across ``update_edges`` calls.
        """
        payload: Dict[str, object] = {}
        if mu_cap is not None:
            payload["mu_cap"] = int(mu_cap)
        return self._request("POST", f"/graphs/{name}/index", payload)

    def graphs(self) -> List[Dict[str, object]]:
        return list(self._request("GET", "/graphs")["graphs"])

    def graph_info(self, name: str) -> Dict[str, object]:
        return self._request("GET", f"/graphs/{name}")

    def update_edges(
        self,
        name: str,
        *,
        insert: Sequence[Sequence[float]] = (),
        delete: Sequence[Sequence[int]] = (),
        add_vertices: int = 0,
        idempotency_key: Optional[str] = None,
    ) -> Dict[str, object]:
        """Apply an edge batch; ``idempotency_key`` makes retries safe.

        The key is journaled with the batch on a durable server, so a
        retry deduplicates even across a crash + recovery — the replay
        answers with ``replayed: true`` instead of double-applying.
        """
        payload: Dict[str, object] = {
            "insert": [list(edge) for edge in insert],
            "delete": [list(edge) for edge in delete],
            "add_vertices": int(add_vertices),
        }
        if idempotency_key is not None:
            payload["idempotency_key"] = str(idempotency_key)
        return self._request(
            "POST", f"/graphs/{name}/update-edges", payload
        )

    # ------------------------------------------------------------------
    # clustering jobs
    # ------------------------------------------------------------------
    def cluster(
        self,
        name: str,
        mu: int,
        epsilon: float,
        *,
        wait: Optional[float] = None,
        priority: int = 0,
        alpha: Optional[int] = None,
        beta: Optional[int] = None,
        seed: Optional[int] = None,
        labels: bool = True,
        idempotency_key: Optional[str] = None,
    ) -> Dict[str, object]:
        """Submit a clustering query; ``wait`` seconds for completion.

        ``idempotency_key`` makes resubmission safe: the server replays
        the job it already scheduled for (graph, key) instead of
        starting a duplicate — the knob that lets callers retry a
        ``cluster`` POST that may or may not have reached the server.
        """
        check_eps_mu(mu=mu, epsilon=epsilon)
        payload: Dict[str, object] = {
            "graph": name,
            "mu": int(mu),
            "epsilon": float(epsilon),
            "priority": int(priority),
            "labels": labels,
        }
        if idempotency_key is not None:
            payload["idempotency_key"] = str(idempotency_key)
        if wait is not None:
            payload["wait"] = float(wait)
        if alpha is not None:
            payload["alpha"] = int(alpha)
        if beta is not None:
            payload["beta"] = int(beta)
        if seed is not None:
            payload["seed"] = int(seed)
        return self._request("POST", "/cluster", payload)

    def local_cluster(
        self,
        name: str,
        seed: int,
        mu: int,
        epsilon: float,
        *,
        order_seed: Optional[int] = None,
        boundary: Optional[bool] = None,
    ) -> Dict[str, object]:
        """The seed vertex's exact cluster (seeded local clustering).

        A GET, so the client's bounded idempotent-retry policy applies;
        repeated queries for the same (seed, ε, μ) hit the server's
        seed-aware result cache.
        """
        check_eps_mu(mu=mu, epsilon=epsilon)
        params: Dict[str, object] = {
            "seed": int(seed),
            "mu": int(mu),
            "epsilon": float(epsilon),
        }
        if order_seed is not None:
            params["order_seed"] = int(order_seed)
        if boundary is not None:
            params["boundary"] = "true" if boundary else "false"
        query = urlencode(params)
        return self._request(
            "GET", f"/graphs/{name}/local-cluster?{query}"
        )

    def jobs(self) -> List[Dict[str, object]]:
        return list(self._request("GET", "/jobs")["jobs"])

    def status(self, job_id: str) -> Dict[str, object]:
        return self._request("GET", f"/jobs/{job_id}")

    def snapshot(
        self, job_id: str, *, labels: bool = True
    ) -> Dict[str, object]:
        suffix = "" if labels else "?labels=false"
        return self._request("GET", f"/jobs/{job_id}/snapshot{suffix}")

    def result(
        self,
        job_id: str,
        *,
        wait: Optional[float] = None,
        labels: bool = True,
    ) -> Dict[str, object]:
        params = []
        if wait is not None:
            params.append(f"wait={float(wait)}")
        if not labels:
            params.append("labels=false")
        suffix = "?" + "&".join(params) if params else ""
        return self._request("GET", f"/jobs/{job_id}/result{suffix}")

    def pause(self, job_id: str) -> Dict[str, object]:
        return self._request("POST", f"/jobs/{job_id}/pause", {})

    def resume(self, job_id: str) -> Dict[str, object]:
        return self._request("POST", f"/jobs/{job_id}/resume", {})

    def cancel(self, job_id: str) -> Dict[str, object]:
        return self._request("POST", f"/jobs/{job_id}/cancel", {})

    def set_priority(self, job_id: str, priority: int) -> Dict[str, object]:
        return self._request(
            "POST", f"/jobs/{job_id}/priority", {"priority": int(priority)}
        )

    # ------------------------------------------------------------------
    # observability + shutdown
    # ------------------------------------------------------------------
    def health(self) -> Dict[str, object]:
        return self._request("GET", "/healthz")

    def metrics(self) -> Dict[str, object]:
        return self._request("GET", "/metrics")

    def fleet_metrics(self) -> Dict[str, object]:
        """Fleet-wide merged metrics (single-shard merge off-fleet)."""
        return self._request("GET", "/fleet/metrics")

    def shutdown(self) -> Dict[str, object]:
        return self._request("POST", "/shutdown", {})
