"""Cooperative scheduling of anySCAN runs as budgeted anytime jobs.

The paper's anytime contract (suspend after any block iteration, resume
later, exact result at the end) is precisely the primitive a serving
layer needs to multiplex many clustering requests over one worker pool:

* a *job* wraps one :class:`~repro.core.anyscan.AnySCAN` instance;
* workers repeatedly pop the highest-priority runnable job, run a
  *slice* of ``slice_iterations`` calls to
  :meth:`~repro.core.anyscan.AnySCAN.advance`, and requeue it — so N
  concurrent jobs make interleaved progress instead of running head-of-
  line;
* any job can be paused, resumed, reprioritized, or cancelled between
  slices, and its latest :class:`~repro.core.snapshots.Snapshot`
  (assigned fraction + approximate clustering) is readable at any time;
* paused jobs survive a scheduler restart: :meth:`JobScheduler.export_job`
  pickles the suspended algorithm (its cursor holds all loop state) and
  :meth:`JobScheduler.import_job` revives it elsewhere.

Concurrency contract (the R1 budget of the analysis gate): every shared
mutation — job records, the ready heap, the slice log — happens under
``self._lock``; the only work done *outside* it is the slice itself,
which touches one job's algorithm, owned exclusively by the worker that
marked the job RUNNING.  ``pause_requested``/``cancel_requested`` are
additionally *read* mid-slice without the lock for promptness; those
reads are advisory (a stale value only delays the reaction by at most
one iteration) and the authoritative check happens under the lock.

The ``on_done`` callback runs *under* the scheduler lock, in the same
critical section that makes the job terminal: callers observing a
terminal state (``wait``, ``info``, a status poll) are then guaranteed
the callback's effects — the serving layer's cache fill and counter
updates — already happened.  The callback must only take leaf locks
and must not call back into the scheduler.
"""

from __future__ import annotations

import heapq
import pickle
import threading
import time
import traceback
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.anyscan import AnySCAN
from repro.core.snapshots import Snapshot
from repro.errors import ConfigError, ReproError
from repro.faults import fault_point
from repro.result import Clustering
from repro.validation import check_eps_mu

__all__ = ["JobRecord", "JobScheduler", "JobState"]

_SLICE_LOG_LIMIT = 10_000

#: Most recent failures kept per job (formatted tracebacks), and the
#: size cap of each entry — enough for a full chain, bounded for JSON.
_ERROR_CHAIN_LIMIT = 8
_ERROR_ENTRY_LIMIT = 4_000


class JobState(Enum):
    """Lifecycle of one anytime job (see DESIGN.md §8)."""

    PENDING = "pending"
    RUNNING = "running"
    PAUSED = "paused"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"


#: States from which a job can never run again.
TERMINAL_STATES = frozenset(
    {JobState.DONE, JobState.FAILED, JobState.CANCELLED}
)


@dataclass
class JobRecord:
    """Bookkeeping for one scheduled anySCAN run.

    ``algorithm`` is ``None`` for jobs born terminal (index-served
    answers via :meth:`JobScheduler.submit_completed`); such jobs never
    enter the ready queue, so the worker path always sees a real
    algorithm.
    """

    job_id: str
    graph_name: str
    mu: int
    epsilon: float
    priority: int
    algorithm: Optional[AnySCAN]
    state: JobState = JobState.PENDING
    slices: int = 0
    iterations: int = 0
    latest: Optional[Snapshot] = None
    result: Optional[Clustering] = None
    error: Optional[str] = None
    pause_requested: bool = False
    cancel_requested: bool = False
    meta: Dict[str, object] = field(default_factory=dict)
    #: How many slices of this job have raised.
    failures: int = 0
    #: Formatted tracebacks of those failures, oldest first (bounded).
    error_chain: List[str] = field(default_factory=list)

    def info(self) -> Dict[str, object]:
        """JSON-ready status view (no labels; use snapshots for those)."""
        latest = self.latest
        return {
            "job_id": self.job_id,
            "graph": self.graph_name,
            "mu": self.mu,
            "epsilon": self.epsilon,
            "priority": self.priority,
            "state": self.state.value,
            "slices": self.slices,
            "iterations": self.iterations,
            "finished": self.state in TERMINAL_STATES,
            "assigned_fraction": (
                latest.assigned_fraction if latest is not None else 0.0
            ),
            "num_clusters": (
                latest.num_clusters if latest is not None else 0
            ),
            "error": self.error,
            "failures": self.failures,
            "error_chain": list(self.error_chain),
        }


class JobScheduler:
    """Worker pool running anySCAN jobs in interleaved slices."""

    def __init__(
        self,
        *,
        workers: int = 2,
        slice_iterations: int = 4,
        on_done: Optional[Callable[[JobRecord], None]] = None,
        slice_deadline: Optional[float] = None,
        max_slice_retries: int = 1,
        id_prefix: str = "job",
    ) -> None:
        if workers < 1:
            raise ConfigError("workers must be >= 1")
        if not id_prefix:
            raise ConfigError("id_prefix must be non-empty")
        if slice_iterations < 1:
            raise ConfigError("slice_iterations must be >= 1")
        if slice_deadline is not None and slice_deadline <= 0:
            raise ConfigError("slice_deadline must be positive")
        if max_slice_retries < 0:
            raise ConfigError("max_slice_retries must be >= 0")
        self.slice_iterations = int(slice_iterations)
        self.on_done = on_done
        #: Leading component of generated job ids (``{prefix}-{seq}``).
        #: A sharded fleet gives each worker process a distinct prefix
        #: (``w3-job``), so any process can route a foreign job id to
        #: the shard that owns it.
        self.id_prefix = str(id_prefix)
        #: Wall-clock budget for one slice; checked at iteration
        #: boundaries, so an over-budget slice stops early and requeues
        #: (one job cannot monopolize a worker beyond ~one iteration).
        self.slice_deadline = (
            float(slice_deadline) if slice_deadline is not None else None
        )
        #: How many failed slices are retried (from a checkpoint taken
        #: at slice start) before the job goes FAILED for good.
        self.max_slice_retries = int(max_slice_retries)
        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        self._jobs: Dict[str, JobRecord] = {}
        # Ready queue: (-priority, seq, job_id).  Entries go stale when a
        # job is paused/cancelled/reprioritized; _pop_ready_locked skips
        # them lazily instead of rebuilding the heap.
        self._ready: List[Tuple[int, int, str]] = []
        self._seq = 0
        self._closed = False
        #: Order in which slices completed (job ids) — the observable
        #: interleaving; bounded, oldest half dropped on overflow.
        self.slice_log: List[str] = []
        self._threads = [
            threading.Thread(
                target=self._worker_loop,
                name=f"job-worker-{i}",
                daemon=True,
            )
            for i in range(int(workers))
        ]
        for thread in self._threads:
            thread.start()

    # ------------------------------------------------------------------
    # submission and lifecycle control
    # ------------------------------------------------------------------
    def submit(
        self,
        algorithm: AnySCAN,
        *,
        graph_name: str = "",
        mu: Optional[int] = None,
        epsilon: Optional[float] = None,
        priority: int = 0,
        meta: Optional[Dict[str, object]] = None,
    ) -> str:
        """Queue one anySCAN run; returns its job id immediately."""
        check_eps_mu(mu=mu, epsilon=epsilon)
        mu = int(mu if mu is not None else algorithm.config.mu)
        epsilon = float(
            epsilon if epsilon is not None else algorithm.config.epsilon
        )
        with self._wake:
            if self._closed:
                raise ReproError("scheduler is closed")
            self._seq += 1
            job = JobRecord(
                job_id=f"{self.id_prefix}-{self._seq}",
                graph_name=graph_name,
                mu=mu,
                epsilon=epsilon,
                priority=int(priority),
                algorithm=algorithm,
                meta=dict(meta or {}),
            )
            # Seed the snapshot so status/snapshot reads never race the
            # worker: before the first slice the algorithm is idle.
            job.latest = algorithm.snapshot()
            self._jobs[job.job_id] = job
            if algorithm.finished:
                job.state = JobState.DONE
                job.result = algorithm.result()
                self._notify_done_locked(job)
            else:
                self._push_ready_locked(job)
            self._wake.notify_all()
        return job.job_id

    def submit_completed(
        self,
        result: Clustering,
        *,
        graph_name: str = "",
        mu: int,
        epsilon: float,
        priority: int = 0,
        meta: Optional[Dict[str, object]] = None,
        sigma_evaluations: int = 0,
        compute_seconds: float = 0.0,
    ) -> str:
        """Register an already-computed clustering as a DONE job.

        The short-circuit path for index-served queries: the clustering
        index answers (ε, μ) without running anySCAN, but the answer
        must still flow through the job ledger so status polls,
        ``on_done`` accounting, and the result-cache fill behave exactly
        as for scheduled jobs.  The job is born terminal — it never
        touches the ready queue or a worker — and ``on_done`` runs under
        the lock in the same critical section, preserving the scheduler's
        visibility guarantee (a job observably DONE has already filled
        the cache).
        """
        check_eps_mu(mu=mu, epsilon=epsilon)
        with self._wake:
            if self._closed:
                raise ReproError("scheduler is closed")
            self._seq += 1
            job = JobRecord(
                job_id=f"{self.id_prefix}-{self._seq}",
                graph_name=graph_name,
                mu=int(mu),
                epsilon=float(epsilon),
                priority=int(priority),
                algorithm=None,
                state=JobState.DONE,
                meta=dict(meta or {}),
            )
            job.result = result
            job.latest = Snapshot(
                step="index",
                iteration=0,
                labels=result.labels.copy(),
                num_supernodes=0,
                num_clusters=int(result.num_clusters),
                work_units=0.0,
                sigma_evaluations=int(sigma_evaluations),
                union_calls=0,
                wall_time=float(compute_seconds),
                final=True,
            )
            self._jobs[job.job_id] = job
            self._notify_done_locked(job)
            self._wake.notify_all()
        return job.job_id

    def pause(self, job_id: str) -> Dict[str, object]:
        """Stop a job after its current slice; no-op if already paused."""
        with self._wake:
            job = self._require_locked(job_id)
            if job.state is JobState.PENDING:
                job.state = JobState.PAUSED
            elif job.state is JobState.RUNNING:
                job.pause_requested = True
            elif job.state is not JobState.PAUSED:
                raise ReproError(
                    f"job {job_id} is {job.state.value}; cannot pause"
                )
            return job.info()

    def resume(self, job_id: str) -> Dict[str, object]:
        """Requeue a paused job (or cancel a pending pause request)."""
        with self._wake:
            job = self._require_locked(job_id)
            if job.state is JobState.PAUSED:
                job.state = JobState.PENDING
                job.pause_requested = False
                self._push_ready_locked(job)
                self._wake.notify_all()
            elif job.state in (JobState.PENDING, JobState.RUNNING):
                job.pause_requested = False
            else:
                raise ReproError(
                    f"job {job_id} is {job.state.value}; cannot resume"
                )
            return job.info()

    def cancel(self, job_id: str) -> Dict[str, object]:
        """Terminate a job; running slices stop at the next iteration."""
        with self._wake:
            job = self._require_locked(job_id)
            if job.state in (JobState.PENDING, JobState.PAUSED):
                job.state = JobState.CANCELLED
                self._notify_done_locked(job)
                self._wake.notify_all()
            elif job.state is JobState.RUNNING:
                job.cancel_requested = True
            elif job.state not in TERMINAL_STATES:
                raise ReproError(
                    f"job {job_id} is {job.state.value}; cannot cancel"
                )
            return job.info()

    def reprioritize(self, job_id: str, priority: int) -> Dict[str, object]:
        """Change a job's priority; takes effect at its next queueing."""
        with self._wake:
            job = self._require_locked(job_id)
            if job.state in TERMINAL_STATES:
                raise ReproError(
                    f"job {job_id} is {job.state.value}; cannot reprioritize"
                )
            job.priority = int(priority)
            if job.state is JobState.PENDING:
                self._push_ready_locked(job)
                self._wake.notify_all()
            return job.info()

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def info(self, job_id: str) -> Dict[str, object]:
        with self._lock:
            return self._require_locked(job_id).info()

    def list_jobs(self) -> List[Dict[str, object]]:
        with self._lock:
            return [job.info() for job in self._jobs.values()]

    def snapshot(self, job_id: str) -> Snapshot:
        """Latest post-slice snapshot (pre-run: the empty iteration 0)."""
        with self._lock:
            job = self._require_locked(job_id)
            assert job.latest is not None  # seeded at submit
            return job.latest

    def result(self, job_id: str) -> Clustering:
        """Exact final clustering of a DONE job."""
        with self._lock:
            job = self._require_locked(job_id)
            if job.state is not JobState.DONE or job.result is None:
                raise ReproError(
                    f"job {job_id} is {job.state.value}; no final result"
                )
            return job.result

    def wait(
        self, job_id: str, timeout: Optional[float] = None
    ) -> Dict[str, object]:
        """Block until the job reaches a terminal state (or timeout)."""
        deadline = (
            time.monotonic() + timeout if timeout is not None else None
        )
        with self._wake:
            job = self._require_locked(job_id)
            while job.state not in TERMINAL_STATES:
                remaining = (
                    None
                    if deadline is None
                    else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    break
                self._wake.wait(remaining)
            return job.info()

    def active_count(self) -> int:
        """Jobs currently consuming or queued for worker time.

        The backpressure signal: PENDING + RUNNING, excluding PAUSED
        (parked by a client, holds no worker) and terminal states.
        """
        with self._lock:
            return sum(
                1
                for job in self._jobs.values()
                if job.state in (JobState.PENDING, JobState.RUNNING)
            )

    def state_counts(self) -> Dict[str, int]:
        """Jobs per state — the gauge ``/metrics`` reports."""
        with self._lock:
            counts: Dict[str, int] = {}
            for job in self._jobs.values():
                counts[job.state.value] = counts.get(job.state.value, 0) + 1
            return counts

    # ------------------------------------------------------------------
    # suspend-to-disk (scheduler restarts)
    # ------------------------------------------------------------------
    def export_job(self, job_id: str) -> bytes:
        """Pickle a paused/pending job for re-import after a restart."""
        with self._lock:
            job = self._require_locked(job_id)
            if job.state not in (JobState.PAUSED, JobState.PENDING):
                raise ReproError(
                    f"job {job_id} is {job.state.value}; only paused or "
                    "pending jobs can be exported"
                )
            payload = {
                "job_id": job.job_id,
                "graph_name": job.graph_name,
                "mu": job.mu,
                "epsilon": job.epsilon,
                "priority": job.priority,
                "algorithm": job.algorithm,
                "slices": job.slices,
                "iterations": job.iterations,
                "latest": job.latest,
                "meta": dict(job.meta),
                "failures": job.failures,
                "error_chain": list(job.error_chain),
            }
        return pickle.dumps(payload)

    def import_job(self, data: bytes) -> str:
        """Revive an exported job in PAUSED state; returns its (new) id."""
        payload = pickle.loads(data)
        with self._wake:
            if self._closed:
                raise ReproError("scheduler is closed")
            self._seq += 1
            job_id = str(payload["job_id"])
            if job_id in self._jobs:
                job_id = f"{job_id}-r{self._seq}"
            job = JobRecord(
                job_id=job_id,
                graph_name=str(payload["graph_name"]),
                mu=int(payload["mu"]),
                epsilon=float(payload["epsilon"]),
                priority=int(payload["priority"]),
                algorithm=payload["algorithm"],
                state=JobState.PAUSED,
                slices=int(payload["slices"]),
                iterations=int(payload["iterations"]),
                latest=payload["latest"],
                meta=dict(payload["meta"]),
                failures=int(payload.get("failures", 0)),
                error_chain=list(payload.get("error_chain", [])),
            )
            self._jobs[job.job_id] = job
        return job.job_id

    # ------------------------------------------------------------------
    # shutdown
    # ------------------------------------------------------------------
    def close(self, timeout: Optional[float] = 10.0) -> None:
        """Stop the workers after their current slices; idempotent."""
        with self._wake:
            self._closed = True
            self._wake.notify_all()
        for thread in self._threads:
            thread.join(timeout)

    def __enter__(self) -> "JobScheduler":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # worker internals
    # ------------------------------------------------------------------
    def _notify_done_locked(self, job: JobRecord) -> None:
        """Run ``on_done`` while still holding the scheduler lock.

        A job must never be *observably* terminal (via ``wait``/``info``)
        before its completion callback ran — the serving layer fills the
        result cache in ``on_done``, and releasing the lock first would
        let a repeat query race the cache fill and miss.  The callback
        must therefore only take leaf locks (cache, metrics) and must
        not call back into the scheduler.
        """
        if self.on_done is not None:
            self.on_done(job)

    def _require_locked(self, job_id: str) -> JobRecord:
        job = self._jobs.get(job_id)
        if job is None:
            raise ReproError(f"unknown job {job_id!r}")
        return job

    def _push_ready_locked(self, job: JobRecord) -> None:
        self._seq += 1
        heapq.heappush(self._ready, (-job.priority, self._seq, job.job_id))

    def _pop_ready_locked(self) -> Optional[JobRecord]:
        while self._ready:
            neg_priority, _, job_id = heapq.heappop(self._ready)
            job = self._jobs.get(job_id)
            if (
                job is not None
                and job.state is JobState.PENDING
                and -neg_priority == job.priority
            ):
                return job
            # Stale entry (paused/cancelled/reprioritized since push).
        return None

    def record_failure(self, job: JobRecord, exc: BaseException) -> None:
        """Append one formatted failure (full cause chain) to the job.

        Caller must hold the scheduler lock or own the RUNNING job.
        """
        text = "".join(
            traceback.format_exception(type(exc), exc, exc.__traceback__)
        ).strip()
        if len(text) > _ERROR_ENTRY_LIMIT:
            text = text[-_ERROR_ENTRY_LIMIT:]
        job.failures += 1
        job.error_chain.append(text)
        del job.error_chain[:-_ERROR_CHAIN_LIMIT]

    def _force_fail(self, job: JobRecord, exc: BaseException) -> None:
        """Terminate a job whose slice machinery itself blew up."""
        with self._wake:
            self.record_failure(job, exc)
            job.error = f"{type(exc).__name__}: {exc}"
            job.state = JobState.FAILED
            self._notify_done_locked(job)
            self._wake.notify_all()

    def _worker_loop(self) -> None:
        while True:
            with self._wake:
                job = self._pop_ready_locked()
                while job is None and not self._closed:
                    self._wake.wait()
                    job = self._pop_ready_locked()
                if job is None:
                    return
                job.state = JobState.RUNNING
            try:
                self._run_slice(job)
            except Exception as exc:
                # Crash isolation: a poisoned job (unpicklable state,
                # broken snapshot, pathological callback input) fails
                # alone; the worker loop keeps serving other jobs.
                self._force_fail(job, exc)

    def _run_slice(self, job: JobRecord) -> None:
        """One budgeted slice; the worker owns ``job.algorithm`` here.

        Failure handling: when ``max_slice_retries`` > 0 the algorithm
        is checkpointed (pickled) at slice start; a slice that raises is
        rolled back to that checkpoint and requeued, up to the retry
        budget — the replay is deterministic, so a successful retry
        yields the same result a fault-free run would have.  Beyond the
        budget the job goes FAILED with every failure's formatted
        traceback preserved in ``error_chain``.
        """
        checkpoint: Optional[bytes] = None
        if self.max_slice_retries > 0:
            try:
                checkpoint = pickle.dumps(job.algorithm)
            except Exception as exc:
                checkpoint = None  # unpicklable: retries disabled
                with self._lock:
                    self.record_failure(job, exc)
        snaps: List[Snapshot] = []
        result: Optional[Clustering] = None
        started = time.monotonic()
        try:
            fault_point("jobs.slice")
            for _ in range(self.slice_iterations):
                snap = job.algorithm.advance()
                if snap is None:
                    break
                snaps.append(snap)
                if job.cancel_requested or job.pause_requested:
                    break  # advisory read; authoritative check below
                if (
                    self.slice_deadline is not None
                    and time.monotonic() - started >= self.slice_deadline
                ):
                    break  # over budget: requeue instead of monopolizing
            if job.algorithm.finished:
                result = job.algorithm.result()
        except Exception as exc:
            # Jobs fail; the scheduler must not — _account_slice routes
            # the failure through record_failure.
            self._account_slice(job, snaps, None, exc, checkpoint)
            return
        self._account_slice(job, snaps, result, None, checkpoint)

    def _account_slice(
        self,
        job: JobRecord,
        snaps: List[Snapshot],
        result: Optional[Clustering],
        failure: Optional[BaseException],
        checkpoint: Optional[bytes],
    ) -> None:
        """Post-slice bookkeeping and the job's next state transition."""
        with self._wake:
            job.slices += 1
            job.iterations += len(snaps)
            if snaps:
                job.latest = snaps[-1]
            if len(self.slice_log) >= _SLICE_LOG_LIMIT:
                del self.slice_log[: _SLICE_LOG_LIMIT // 2]
            self.slice_log.append(job.job_id)
            if failure is not None:
                self.record_failure(job, failure)
                restored = False
                if (
                    checkpoint is not None
                    and job.failures <= self.max_slice_retries
                    and not job.cancel_requested
                ):
                    try:
                        job.algorithm = pickle.loads(checkpoint)
                        restored = True
                    except Exception as exc:
                        self.record_failure(job, exc)
                if restored:
                    job.state = JobState.PENDING
                    self._push_ready_locked(job)
                else:
                    job.state = JobState.FAILED
                    job.error = f"{type(failure).__name__}: {failure}"
            elif result is not None:
                job.state = JobState.DONE
                job.result = result
            elif job.cancel_requested:
                job.state = JobState.CANCELLED
            elif job.pause_requested:
                job.state = JobState.PAUSED
                job.pause_requested = False
            else:
                job.state = JobState.PENDING
                self._push_ready_locked(job)
            if job.state in TERMINAL_STATES:
                self._notify_done_locked(job)
            self._wake.notify_all()
