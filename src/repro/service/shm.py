"""Zero-copy shared-memory publication of the GraphStore (DESIGN.md §11).

The multi-process serving fleet needs every worker to see the hosted
graphs — CSR arrays, materialized per-edge σ, and the GS*-style derived
structure — without ever pickling them across process boundaries.  This
module is the storage half of that design:

* :class:`ManifestBlock` — a single shared segment holding a JSON
  manifest under a **seqlock**: an 8-byte generation counter that is odd
  while the writer is mid-update and even when the payload is stable.
  Readers sample the generation, copy the payload, and re-sample; a
  mismatch (or an odd value) means "retry", so torn reads are detected
  rather than served.  One writer, any number of readers, no locks
  shared across processes.
* :class:`StorePublisher` — the single writer's mirror.  Each
  :class:`~repro.service.store.GraphEntry` is published as a group of
  immutable named segments (``repro_{pid}_g{slug}e{epoch}_{label}_…``)
  through the same :class:`~repro.parallel.processes.SegmentRegistry`
  machinery as the process-pool backend, so the atexit/SIGTERM sweep and
  the ``/dev/shm`` leak audit cover the service layer for free.  A
  mutation publishes a **new epoch** (fresh segments), rewrites the
  manifest, then unlinks the previous epoch's segments — attached
  readers keep their mappings (POSIX unlink removes the name, not the
  memory), and new attachments can only land on the new epoch.
* :class:`AttachedGraphStore` — the reader's view.  It attaches every
  array zero-copy (read-only numpy views over the segments; the
  clustering index is rebuilt via
  :meth:`~repro.similarity.gsindex.ClusteringIndex.from_derived`, so no
  O(m log m) re-derivation happens), revalidates the manifest
  generation before every read, and re-attaches exactly the entries
  whose epoch moved.  Stale reads are impossible: an entry is only ever
  swapped in *after* its manifest record — fingerprint included — was
  read consistently under the seqlock.

Epoch protocol invariants (the short version; DESIGN.md §11 has the
full argument):

1. segments are immutable once published — a segment name never serves
   two different byte contents;
2. the manifest write is the commit point — readers act only on records
   they observed under a stable generation;
3. unlink-after-commit cannot strand a reader — a reader that loses the
   attach race (``FileNotFoundError`` on a just-retired name) re-reads
   the manifest and lands on the newer epoch.
"""

from __future__ import annotations

import json
import struct
import threading
import time
from multiprocessing import shared_memory
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.errors import ConfigError
from repro.graph.csr import Graph
from repro.parallel.processes import (
    SegmentRegistry,
    SharedArraySpec,
    untrack_attachment,
)
from repro.service.store import GraphEntry
from repro.similarity.gsindex import ClusteringIndex
from repro.similarity.index import (
    EdgeSimilarityIndex,
    IndexedOracle,
)
from repro.similarity.weighted import SimilarityConfig, SimilarityOracle

__all__ = [
    "DEFAULT_MANIFEST_BYTES",
    "AttachedGraphStore",
    "ManifestBlock",
    "StorePublisher",
]

#: Default manifest capacity.  Manifest records are O(100) bytes per
#: graph plus the worker table, so 1 MiB is orders of magnitude above
#: any realistic fleet; the writer raises loudly on overflow.
DEFAULT_MANIFEST_BYTES = 1 << 20

#: ``(generation, payload length)`` — both unsigned 64-bit.
_HEADER = struct.Struct("<QQ")

#: How long a reader spins on a mid-write manifest before giving up.
#: Writes are one JSON dump plus two header stores, so microseconds;
#: a full second of odd generation means the writer died mid-write.
_READ_TIMEOUT_SECONDS = 1.0


class ManifestBlock:
    """Seqlock'd JSON document in one shared segment.

    The caller supplies the segment; the block never owns it (the
    writer's segment belongs to its :class:`SegmentRegistry`, a reader's
    to whoever attached it).  Writer methods must only ever be called
    from the single writer process — the seqlock protocol has exactly
    one writer by construction.
    """

    def __init__(
        self, shm: shared_memory.SharedMemory, *, writer: bool
    ) -> None:
        self._shm = shm
        self._writer = bool(writer)
        generation, _ = _HEADER.unpack_from(shm.buf, 0)
        # A writer adopting a fresh (zeroed) segment starts at 0; the
        # first write commits generation 2.
        self._generation = int(generation)

    @property
    def capacity(self) -> int:
        return len(self._shm.buf) - _HEADER.size

    def generation(self) -> int:
        """The current commit counter (odd = a write is in flight)."""
        generation, _ = _HEADER.unpack_from(self._shm.buf, 0)
        return int(generation)

    def write(self, payload: Dict[str, object]) -> int:
        """Commit ``payload``; returns the new (even) generation.

        Callers serialize their own writes (the publisher holds its
        lock); the seqlock only orders writer vs readers.
        """
        if not self._writer:
            raise ConfigError("manifest block opened read-only")
        data = json.dumps(payload, sort_keys=True).encode("utf-8")
        if len(data) > self.capacity:
            raise ConfigError(
                f"manifest payload ({len(data)} bytes) exceeds the "
                f"shared block capacity ({self.capacity} bytes)"
            )
        buf = self._shm.buf
        pending = self._generation + 1  # odd: readers must retry
        _HEADER.pack_into(buf, 0, pending, 0)
        buf[_HEADER.size : _HEADER.size + len(data)] = data
        self._generation = pending + 1  # even: stable again
        _HEADER.pack_into(buf, 0, self._generation, len(data))
        return self._generation

    def read(self) -> "tuple[int, Dict[str, object]]":
        """A consistent ``(generation, payload)`` snapshot.

        Spins while a write is in flight (bounded by
        :data:`_READ_TIMEOUT_SECONDS`); raises :class:`ConfigError` on
        timeout or when no payload was ever committed.
        """
        deadline = time.monotonic() + _READ_TIMEOUT_SECONDS
        buf = self._shm.buf
        while True:
            first, length = _HEADER.unpack_from(buf, 0)
            if first and first % 2 == 0:
                data = bytes(
                    buf[_HEADER.size : _HEADER.size + int(length)]
                )
                second, _ = _HEADER.unpack_from(buf, 0)
                if second == first:
                    return int(first), json.loads(data.decode("utf-8"))
            if time.monotonic() > deadline:
                raise ConfigError(
                    "manifest stayed mid-write past the read timeout "
                    "(writer died?)" if first else "manifest never written"
                )
            time.sleep(0.0005)


def _spec_to_wire(spec: SharedArraySpec) -> List[object]:
    return [spec.shm_name, list(int(x) for x in spec.shape), spec.dtype]


def _spec_from_wire(wire: Sequence[object]) -> SharedArraySpec:
    name, shape, dtype = wire
    return SharedArraySpec(str(name), tuple(int(x) for x in shape), str(dtype))


class StorePublisher:
    """Single-writer mirror of a :class:`~repro.service.store.GraphStore`.

    Attach one via :meth:`GraphStore.attach_publisher`; afterwards every
    store mutation republishes the affected entry as a fresh epoch and
    rewrites the manifest.  All segments — the manifest block included —
    are owned by one :class:`SegmentRegistry`, so ``close()`` (or the
    process-wide atexit/SIGTERM sweep) unlinks everything.
    """

    def __init__(
        self,
        *,
        manifest_bytes: int = DEFAULT_MANIFEST_BYTES,
        metrics=None,
        durable: bool = False,
    ) -> None:
        if manifest_bytes < _HEADER.size + 2:
            raise ConfigError("manifest_bytes is too small to hold a header")
        # ``durable`` keeps the segments off the resource tracker so a
        # SIGKILLed writer leaves them for a promoted shard to adopt
        # (the WAL makes the state recoverable; the segments make the
        # failover seamless for attached readers).
        self._registry = SegmentRegistry(untracked=durable)
        self._manifest_shm = self._registry.create_block(
            "manifest", manifest_bytes
        )
        self._block = ManifestBlock(self._manifest_shm, writer=True)
        self._lock = threading.Lock()
        self._graphs: Dict[str, Dict[str, object]] = {}
        self._segment_names: Dict[str, List[str]] = {}
        self._epochs: Dict[str, int] = {}
        self._slugs: Dict[str, int] = {}
        self._workers: List[Dict[str, object]] = []
        self._control_url: Optional[str] = None
        self._epoch_floor = 0
        self._adopted_manifest: Optional[str] = None
        self._foreign_segments: List[str] = []
        self.metrics = metrics
        self._block.write(self._payload())

    @classmethod
    def adopt(cls, manifest_name: str, *, metrics=None) -> "StorePublisher":
        """Become the writer of a dead writer's manifest (failover).

        The promoted process attaches the *existing* manifest segment
        so every reader's attachment point survives the failover, then
        takes over the seqlock as the (again unique) writer:

        * a torn commit — the old writer died mid-write, generation odd
          — is repaired by advancing the counter to the next even value
          and discarding the unreadable payload (the WAL replay rebuilds
          every entry anyway);
        * new epochs start above ``generation // 2 + 1``: each commit
          moves the generation by 2, so no reader can hold any entry at
          an epoch that high — equality on (name, epoch) can therefore
          never confuse an old segment group with a new one;
        * the previous writer's segments are remembered and retired via
          :meth:`retire_foreign_segments` *after* the recovered store
          republished, so mid-read attachments never dangle.
        """
        self = cls.__new__(cls)
        # A promoted writer may itself be killed later; keep its epochs
        # adoptable by the next shard, exactly like the original
        # durable writer's.
        self._registry = SegmentRegistry(untracked=True)
        self._manifest_shm = shared_memory.SharedMemory(name=manifest_name)
        # The manifest is adopted, not created: keep it away from this
        # process's resource tracker (close() unlinks it explicitly).
        untrack_attachment(self._manifest_shm)
        generation, _ = _HEADER.unpack_from(self._manifest_shm.buf, 0)
        self._block = ManifestBlock(self._manifest_shm, writer=True)
        self._lock = threading.Lock()
        self._graphs = {}
        self._segment_names = {}
        self._epochs = {}
        self._slugs = {}
        self._workers = []
        self._control_url = None
        self._epoch_floor = int(generation) // 2 + 1
        self._adopted_manifest = manifest_name
        self._foreign_segments = []
        self.metrics = metrics
        if generation % 2:
            # Torn commit: the payload bytes cannot be trusted.  Repair
            # the seqlock parity; the next write() publishes a fresh,
            # consistent payload at a strictly newer even generation.
            self._block._generation = int(generation) + 1
            if metrics is not None:
                metrics.record_event(
                    "manifest_torn_repaired",
                    {"generation": int(generation)},
                )
        else:
            try:
                _, payload = self._block.read()
            except ConfigError as exc:
                payload = {}
                if metrics is not None:
                    metrics.record_event(
                        "manifest_adopt_unreadable", {"error": str(exc)}
                    )
            for name, record in (payload.get("graphs") or {}).items():
                self._slugs[name] = len(self._slugs)
                self._epochs[name] = int(record.get("epoch", 0))
                for spec in (record.get("arrays") or {}).values():
                    self._foreign_segments.append(str(spec[0]))
            self._workers = list(payload.get("workers", []))
        return self

    def retire_foreign_segments(self) -> int:
        """Unlink the dead writer's segments (call after republishing).

        Readers mid-attach keep their mappings (POSIX unlink removes
        the name, not the memory); new attachments can only land on the
        epochs this publisher republished.
        """
        retired = 0
        names, self._foreign_segments = self._foreign_segments, []
        for name in names:
            try:
                # No untrack here: attaching registered the name with
                # this process's tracker and unlink unregisters it —
                # the ledger stays balanced.
                segment = shared_memory.SharedMemory(name=name)
                segment.close()
                segment.unlink()
            except (FileNotFoundError, OSError) as exc:
                if self.metrics is not None:
                    self.metrics.record_event(
                        "foreign_segment_retire_skipped",
                        {"segment": name, "error": str(exc)},
                    )
                continue
            retired += 1
        return retired

    # ------------------------------------------------------------------
    @property
    def manifest_name(self) -> str:
        """Segment name readers hand to :class:`AttachedGraphStore`."""
        return self._manifest_shm.name

    def generation(self) -> int:
        return self._block.generation()

    def _payload(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "graphs": self._graphs,
            "workers": self._workers,
        }
        if self._control_url is not None:
            payload["control"] = self._control_url
        return payload

    def set_control_url(self, url: str) -> None:
        """Publish the writer's control endpoint to attached readers.

        Workers resolve it (and re-resolve after a failover republished
        the manifest) instead of trusting their spawn-time option.
        """
        with self._lock:
            self._control_url = str(url)
            self._block.write(self._payload())

    # ------------------------------------------------------------------
    def publish_entry(self, entry: GraphEntry) -> int:
        """Publish ``entry`` as a fresh epoch; returns the epoch number.

        Old-epoch segments are unlinked only *after* the manifest commit
        so a reader can never observe a manifest record whose segments
        were already retired at commit time.
        """
        with self._lock:
            if self._registry.closed:
                raise ConfigError("store publisher already closed")
            slug = self._slugs.setdefault(entry.name, len(self._slugs))
            epoch = max(self._epochs.get(entry.name, 0), self._epoch_floor) + 1
            prefix = f"g{slug}e{epoch}"
            published: List[str] = []
            arrays: Dict[str, SharedArraySpec] = {}

            def _publish(label: str, array: np.ndarray) -> None:
                spec = self._registry.publish(f"{prefix}_{label}", array)
                published.append(spec.shm_name)
                arrays[label] = spec

            try:
                graph = entry.graph
                _publish("indptr", graph.indptr)
                _publish("indices", graph.indices)
                _publish("weights", graph.weights)
                if entry.index is not None:
                    _publish("sigmas", entry.index.sigmas)
                if entry.cluster_index is not None:
                    for label, array in (
                        entry.cluster_index.derived_arrays().items()
                    ):
                        _publish(f"ci_{label}", array)
            except BaseException:
                # A half-published epoch must not outlive the failure.
                self._registry.release(published)
                raise
            record: Dict[str, object] = {
                "epoch": epoch,
                "fingerprint": entry.fingerprint,
                "similarity": {
                    "kind": entry.similarity.kind,
                    "closed": entry.similarity.closed,
                    "self_weight": entry.similarity.self_weight,
                    "count_self": entry.similarity.count_self,
                    "pruning": entry.similarity.pruning,
                },
                "mu_cap": int(entry.mu_cap),
                "auto_index": bool(entry.auto_index),
                "auto_cluster_index": bool(entry.auto_cluster_index),
                "updates_applied": int(entry.updates_applied),
                "index_rows_refreshed": int(entry.index_rows_refreshed),
                "indexed": entry.index is not None,
                "cluster_indexed": entry.cluster_index is not None,
                "arrays": {
                    label: _spec_to_wire(spec)
                    for label, spec in arrays.items()
                },
            }
            previous = self._segment_names.get(entry.name, [])
            self._graphs[entry.name] = record
            self._epochs[entry.name] = epoch
            self._segment_names[entry.name] = published
            self._block.write(self._payload())
            self._registry.release(previous)
            return epoch

    def remove_entry(self, name: str) -> None:
        """Drop a graph from the manifest and retire its segments."""
        with self._lock:
            record = self._graphs.pop(name, None)
            if record is None:
                return
            previous = self._segment_names.pop(name, [])
            self._block.write(self._payload())
            self._registry.release(previous)

    def set_workers(self, workers: Sequence[Dict[str, object]]) -> None:
        """Publish the fleet table (worker pids/admin URLs) to readers."""
        with self._lock:
            self._workers = [dict(worker) for worker in workers]
            self._block.write(self._payload())

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Unlink every owned segment, manifest included (idempotent)."""
        self._registry.close()
        if self._adopted_manifest is not None:
            # The adopted manifest lives outside the registry; retire it
            # by name so a drained failover fleet leaves /dev/shm clean.
            name, self._adopted_manifest = self._adopted_manifest, None
            try:
                self._manifest_shm.close()
                # Re-attach registers the name with the tracker and
                # unlink unregisters it — balanced, so no untrack.
                segment = shared_memory.SharedMemory(name=name)
                segment.close()
                segment.unlink()
            except (FileNotFoundError, OSError, BufferError) as exc:
                if self.metrics is not None:
                    self.metrics.record_event(
                        "adopted_manifest_unlink_skipped",
                        {"segment": name, "error": str(exc)},
                    )

    @property
    def closed(self) -> bool:
        return self._registry.closed

    def __enter__(self) -> "StorePublisher":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class AttachedGraphStore:
    """Read-only :class:`GraphStore` lookalike over published segments.

    Serves the same read API the request handlers use (``get``,
    ``names``, ``infos``, ``oracle_for``, ``fill_cache_if_current``) but
    backed entirely by zero-copy attachments.  Every read revalidates
    the manifest generation first — one shared-memory load on the hot
    path — and re-attaches only entries whose epoch moved.  Mutating
    methods raise: mutations belong to the single writer, reached over
    the fleet's control channel.
    """

    def __init__(self, manifest_name: str, *, metrics=None) -> None:
        self._manifest_shm = shared_memory.SharedMemory(name=manifest_name)
        # Attachments must never reach this process's resource tracker:
        # a dying reader's tracker would unlink the writer's segments.
        untrack_attachment(self._manifest_shm)
        self._block = ManifestBlock(self._manifest_shm, writer=False)
        self._lock = threading.Lock()
        self._generation = 0
        #: Odd generation refresh() last gave up on — a writer died
        #: mid-commit.  Remembered so the fast path skips the bounded
        #: spin until a new writer moved the counter again.
        self._stalled_generation = 0
        self._entries: Dict[str, GraphEntry] = {}
        self._workers: List[Dict[str, object]] = []
        self._control: Optional[str] = None
        self.manifest_name = str(manifest_name)
        self.metrics = metrics
        #: Called with the *old* fingerprint whenever a refresh replaces
        #: an entry (epoch moved); the worker service hooks its result
        #: cache here.  Purely an eviction optimization — cache keys
        #: embed the fingerprint, so stale hits are impossible anyway.
        self.fingerprint_listeners: List[Callable[[str], None]] = []
        self.refresh()

    # ------------------------------------------------------------------
    # attachment
    # ------------------------------------------------------------------
    def refresh(self) -> bool:
        """Revalidate against the manifest; returns True when resynced.

        The fast path (generation unchanged) is lock-free: a single
        8-byte read of the seqlock counter.  The slow path re-reads the
        manifest and swaps in re-attached entries under the store lock;
        losing an attach race against the writer's unlink just retries
        the read (the manifest has necessarily moved on).

        A manifest stuck mid-commit (the writer died holding the
        seqlock odd) degrades to **stale-but-consistent** serving: the
        entries attached before the crash keep answering, the stalled
        generation is remembered so later reads skip the bounded spin,
        and the next even generation — committed by a promoted writer —
        resynchronizes normally.
        """
        observed = self._block.generation()
        if observed == self._generation or (
            self._stalled_generation and observed == self._stalled_generation
        ):
            return False
        with self._lock:
            while True:
                try:
                    generation, payload = self._block.read()
                except ConfigError as exc:
                    if not self._entries:
                        raise
                    self._stalled_generation = self._block.generation()
                    if self.metrics is not None:
                        self.metrics.record_event(
                            "manifest_read_stalled",
                            {
                                "generation": self._stalled_generation,
                                "error": str(exc),
                            },
                        )
                    return False
                if generation == self._generation:
                    return False
                try:
                    self._resync(payload)
                except FileNotFoundError as exc:
                    if self._block.generation() != generation:
                        # Lost a real race: the writer retired those
                        # segments and committed a newer generation —
                        # re-read and attach that one instead.
                        if self.metrics is not None:
                            self.metrics.record_event(
                                "attach_race_retried",
                                {"generation": generation},
                            )
                        continue
                    # The generation is not advancing: the writer died
                    # after committing this payload and its segments
                    # are gone (e.g. swept by its resource tracker).
                    # Spinning would hang forever — degrade to
                    # stale-but-consistent until a promoted writer
                    # republishes at a newer generation.
                    if not self._entries:
                        raise ConfigError(
                            "manifest names shared segments that no "
                            "longer exist and no writer is advancing "
                            f"it: {exc}"
                        ) from exc
                    self._stalled_generation = generation
                    if self.metrics is not None:
                        self.metrics.record_event(
                            "manifest_read_stalled",
                            {
                                "generation": generation,
                                "error": str(exc),
                            },
                        )
                    return False
                self._generation = generation
                self._stalled_generation = 0
                return True

    def _resync(self, payload: Dict[str, object]) -> None:
        graphs: Dict[str, Dict[str, object]] = payload.get("graphs", {})
        fresh: Dict[str, GraphEntry] = {}
        dropped_fingerprints: List[str] = []
        for name, record in graphs.items():
            current = self._entries.get(name)
            if current is not None and current.epoch == record["epoch"]:
                fresh[name] = current
                continue
            fresh[name] = self._build_entry(name, record)
            if current is not None:
                dropped_fingerprints.append(current.fingerprint)
        for name, entry in self._entries.items():
            if name not in graphs:
                dropped_fingerprints.append(entry.fingerprint)
        self._entries = fresh
        self._workers = list(payload.get("workers", []))
        control = payload.get("control")
        self._control = str(control) if control is not None else None
        for fingerprint in dropped_fingerprints:
            for listener in self.fingerprint_listeners:
                listener(fingerprint)

    def _build_entry(
        self, name: str, record: Dict[str, object]
    ) -> GraphEntry:
        wire: Dict[str, Sequence[object]] = record["arrays"]
        views = {
            label: SegmentRegistry.attach(_spec_from_wire(spec))
            for label, spec in wire.items()
        }
        # validate=False: the writer validated at build time, and
        # ascontiguousarray over an aligned view is zero-copy.
        graph = Graph(
            views["indptr"],
            views["indices"],
            views["weights"],
            validate=False,
        )
        similarity = SimilarityConfig(**record["similarity"])
        fingerprint = str(record["fingerprint"])
        index: Optional[EdgeSimilarityIndex] = None
        cluster_index: Optional[ClusteringIndex] = None
        if "sigmas" in views:
            index = EdgeSimilarityIndex(
                graph, similarity, views["sigmas"], fingerprint=fingerprint
            )
            derived = {
                label[len("ci_"):]: view
                for label, view in views.items()
                if label.startswith("ci_")
            }
            if derived:
                cluster_index = ClusteringIndex.from_derived(
                    index, mu_cap=int(record["mu_cap"]), arrays=derived
                )
        entry = GraphEntry(
            name=name,
            graph=graph,
            similarity=similarity,
            fingerprint=fingerprint,
            index=index,
            auto_index=bool(record["auto_index"]),
            cluster_index=cluster_index,
            auto_cluster_index=bool(record["auto_cluster_index"]),
            mu_cap=int(record["mu_cap"]),
            updates_applied=int(record["updates_applied"]),
            index_rows_refreshed=int(record["index_rows_refreshed"]),
        )
        entry.epoch = int(record["epoch"])
        return entry

    # ------------------------------------------------------------------
    # GraphStore read API
    # ------------------------------------------------------------------
    def get(self, name: str) -> GraphEntry:
        self.refresh()
        with self._lock:
            entry = self._entries.get(name)
        if entry is None:
            raise ConfigError(f"unknown graph {name!r}")
        return entry

    def names(self) -> List[str]:
        self.refresh()
        with self._lock:
            return sorted(self._entries)

    def __len__(self) -> int:
        self.refresh()
        with self._lock:
            return len(self._entries)

    def infos(self) -> List[Dict[str, object]]:
        self.refresh()
        with self._lock:
            entries = list(self._entries.values())
        return [entry.info() for entry in entries]

    def workers(self) -> List[Dict[str, object]]:
        """The fleet table the writer last published."""
        self.refresh()
        with self._lock:
            return [dict(worker) for worker in self._workers]

    def control_url(self) -> Optional[str]:
        """The current writer's control endpoint, per the manifest.

        ``None`` until a writer published one; after a failover the
        promoted writer's republish updates it, so workers re-resolve
        instead of dialing the dead process forever.
        """
        self.refresh()
        with self._lock:
            return self._control

    def generation(self) -> int:
        return self._block.generation()

    def epochs(self) -> Dict[str, int]:
        """Per-graph publication epochs this reader currently serves."""
        self.refresh()
        with self._lock:
            return {
                name: int(entry.epoch)
                for name, entry in sorted(self._entries.items())
            }

    def republish(self, name: str) -> None:
        """No-op: only the writer's store re-exports entries."""

    def oracle_for(self, entry: GraphEntry) -> SimilarityOracle:
        """Same contract as :meth:`GraphStore.oracle_for`."""
        if entry.index is not None:
            return IndexedOracle(entry.index, config=entry.similarity)
        return SimilarityOracle(entry.graph, entry.similarity)

    def fill_cache_if_current(
        self, cache, name: str, fingerprint: str, key, value
    ) -> bool:
        """Insert only if ``name`` still answers for ``fingerprint``.

        Same guard as the writer's store: revalidate the manifest, then
        check-and-put under the local lock so a refresh cannot
        interleave between the check and the insert.
        """
        self.refresh()
        with self._lock:
            entry = self._entries.get(name)
            if entry is None or entry.fingerprint != fingerprint:
                return False
            cache.put(key, value)
            return True

    # ------------------------------------------------------------------
    # mutations are the writer's job
    # ------------------------------------------------------------------
    def _read_only(self) -> "ConfigError":
        return ConfigError(
            "this store is an attached read-only view; mutations route "
            "to the writer over the fleet control channel"
        )

    def add(self, *args, **kwargs):
        raise self._read_only()

    def remove(self, name: str):
        raise self._read_only()

    def update_edges(self, name: str, **kwargs):
        raise self._read_only()

    def ensure_index(self, name: str) -> GraphEntry:
        """Read-only stores never build; serve whatever is attached."""
        return self.get(name)

    def ensure_cluster_index(
        self, name: str, *, mu_cap: int | None = None
    ) -> GraphEntry:
        """Read-only stores never build; serve whatever is attached."""
        return self.get(name)

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Drop attachments; array views detach via their finalizers."""
        with self._lock:
            self._entries = {}
            self._workers = []
        try:
            self._manifest_shm.close()
        except (OSError, BufferError):  # pragma: no cover
            # A lingering buffer export just defers the unmap to
            # process exit; nothing useful to do about it here.
            return

    def __enter__(self) -> "AttachedGraphStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
