"""Durable mutation log, checkpoints, and crash recovery (DESIGN.md §13).

The serving layer's persistence plane, built from two pieces:

* :class:`WriteAheadLog` — an append-only file of CRC-framed JSON
  records, one per accepted mutation (graph registration, edge-update
  batches with their idempotency keys, index builds).  Records are
  written *before* the mutation is applied and made durable with a
  group-commit ``fsync``: one caller becomes the sync leader and pays
  the barrier for every record written so far, concurrent callers just
  wait for the watermark.  A torn tail (crash mid-write) is detected by
  the frame CRCs on open and truncated; a failed ``fsync`` rolls the
  unsynced suffix back so an unacknowledged record never lingers in the
  file while the live store diverges from it.
* Checkpoints — periodic atomic snapshots (``checkpoints/ckpt-<seq>``)
  holding every graph's CSR arrays, its σ/clustering-index archive, the
  pickled resumable jobs, and the update idempotency-key table, bound
  to the WAL sequence number they reflect.  Recovery is checkpoint-load
  + WAL-tail replay; the WAL is compacted back to the oldest retained
  checkpoint after each successful snapshot.

Recovery invariants (enforced by the ``tests/test_chaos_recovery.py``
battery, which SIGKILLs serving processes at the ``wal.append``,
``wal.fsync``, ``checkpoint.write`` and ``recovery.replay`` fault
sites):

* an acknowledged mutation is always recovered (ack happens only after
  its record is fsynced *and* applied);
* an unacknowledged batch is recovered atomically — fully present or
  fully absent, never partially applied;
* replay dedupes ``update_edges`` records by idempotency key, so a
  keyed client retry that straddles a crash still applies exactly once;
* the recovered store answers byte-identically to a fresh sequential
  build over the same mutation stream (replay *is* such a build).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import shutil
import struct
import threading
import zlib
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.errors import ConfigError, ReproError
from repro.faults import fault_point
from repro.graph.builder import GraphBuilder
from repro.graph.csr import Graph
from repro.service.store import GraphEntry, GraphStore
from repro.similarity.gsindex import ClusteringIndex
from repro.similarity.index import IndexIntegrityError, graph_fingerprint
from repro.similarity.index import EdgeSimilarityIndex
from repro.similarity.weighted import SimilarityConfig

__all__ = [
    "DurabilityError",
    "DurabilityManager",
    "RecoveredState",
    "WriteAheadLog",
    "list_checkpoints",
    "similarity_from_wire",
    "similarity_to_wire",
    "write_checkpoint",
]


class DurabilityError(ReproError):
    """Raised when the WAL or a checkpoint cannot uphold durability."""


#: File name of the log inside a data directory.
WAL_FILENAME = "wal.log"
#: Subdirectory holding checkpoints inside a data directory.
CHECKPOINT_DIRNAME = "checkpoints"

_MAGIC = b"REPROWAL1\n"
#: Frame header: record sequence number, payload byte length, CRC32.
_FRAME = struct.Struct("<QII")
#: The CRC covers (seq, length, payload) so a frame cannot be replayed
#: at the wrong position after file surgery.
_CRC_SEED = struct.Struct("<QI")
_MAX_RECORD_BYTES = 64 * 1024 * 1024
_CHECKPOINT_PREFIX = "ckpt-"
_CHECKPOINT_FORMAT = 1

#: Every :class:`SimilarityConfig` field rides the wire — ``pruning``
#: does not change σ, but round-tripping the exact config keeps a
#: recovered store's entries indistinguishable from the originals.
_SIMILARITY_FIELDS = ("kind", "closed", "self_weight", "count_self", "pruning")


def similarity_to_wire(config: SimilarityConfig) -> Dict[str, object]:
    """JSON-ready dict capturing a similarity config exactly."""
    return {name: getattr(config, name) for name in _SIMILARITY_FIELDS}


def similarity_from_wire(data: Dict[str, object]) -> SimilarityConfig:
    """Rebuild the config a :func:`similarity_to_wire` dict captured."""
    if not isinstance(data, dict):
        raise DurabilityError("similarity record must be an object")
    missing = [name for name in _SIMILARITY_FIELDS if name not in data]
    if missing:
        raise DurabilityError(
            f"similarity record is missing fields {missing}"
        )
    return SimilarityConfig(
        **{name: data[name] for name in _SIMILARITY_FIELDS}
    )


def _open_wal(path: str):
    """Open (creating on first use) a log file, unbuffered.

    Unbuffered (``buffering=0``) so there is exactly one durability
    boundary — the explicit ``fsync`` — with no library-level buffer
    whose flush can fail at a surprising moment.  Listed under the
    analyzer's ``handle-factories`` config, so R8 tracks every caller's
    close obligation the way it tracks shared-memory segments.
    """
    try:
        return open(path, "x+b", buffering=0)
    except FileExistsError:
        return open(path, "r+b", buffering=0)


def _write_all(handle, data: bytes) -> None:
    """Loop a raw-file write to completion (raw IO may write short)."""
    view = memoryview(data)
    while view:
        written = handle.write(view)
        if written is None:
            raise DurabilityError("non-blocking write on the WAL handle")
        view = view[written:]


def _fsync_dir(path: str) -> None:
    """Fsync a directory so a rename into it survives power loss."""
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


class WriteAheadLog:
    """Checksummed, fsync-batched, append-only mutation log.

    Thread-safe: appends serialize under one condition variable that
    also coordinates the group commit.  Opening scans the whole file,
    validating frame CRCs and sequence continuity, and truncates the
    first torn/corrupt frame and everything after it (a crash mid-write
    can only damage the tail; anything before the last good frame was
    covered by an earlier fsync barrier).
    """

    def __init__(self, path, *, metrics=None) -> None:
        self.path = os.fspath(path)
        self.metrics = metrics
        self._cond = threading.Condition()
        self._failed = False
        self._leader = False
        self._handle = _open_wal(self.path)
        try:
            self._seq, self._tail = self._scan_and_repair()
        except BaseException:
            self._handle.close()
            raise
        self._synced_seq = self._seq
        self._synced_tail = self._tail

    # ------------------------------------------------------------------
    # open-time scan
    # ------------------------------------------------------------------
    def _scan_and_repair(self) -> Tuple[int, int]:
        handle = self._handle
        handle.seek(0)
        blob = handle.read()
        if not blob:
            _write_all(handle, _MAGIC)
            os.fsync(handle.fileno())
            return 0, len(_MAGIC)
        if not blob.startswith(_MAGIC):
            raise DurabilityError(
                f"{self.path} is not a repro write-ahead log"
            )
        seq, valid_end = _scan_frames(blob)[-1]
        if valid_end < len(blob):
            # Torn tail: a frame the process died inside.  Nothing in it
            # was ever acknowledged (acks wait for the fsync barrier),
            # so dropping it restores the acked-prefix invariant.
            handle.truncate(valid_end)
            os.fsync(handle.fileno())
            if self.metrics is not None:
                self.metrics.record_event(
                    "wal_tail_truncated",
                    {
                        "path": self.path,
                        "dropped_bytes": len(blob) - valid_end,
                        "last_seq": seq,
                    },
                )
        return seq, valid_end

    # ------------------------------------------------------------------
    # appending
    # ------------------------------------------------------------------
    @property
    def last_seq(self) -> int:
        """Sequence number of the newest written (not necessarily
        synced) record."""
        with self._cond:
            return self._seq

    @property
    def synced_seq(self) -> int:
        """Highest sequence number covered by an fsync barrier."""
        with self._cond:
            return self._synced_seq

    def append(self, record: Dict[str, object], *, sync: bool = True) -> int:
        """Write one record; with ``sync`` (default) block until it is
        durable.  Returns the record's sequence number.

        On any write/fsync failure the unsynced suffix of the file is
        rolled back (truncated) before the exception propagates, so a
        record that was never acknowledged cannot reappear on replay.
        """
        payload = json.dumps(record, sort_keys=True).encode("utf-8")
        if len(payload) > _MAX_RECORD_BYTES:
            raise DurabilityError("WAL record exceeds the 64 MiB frame cap")
        with self._cond:
            if self._failed:
                raise DurabilityError(
                    "write-ahead log is failed-stop after an unrecoverable "
                    "rollback; restart the process to re-open it"
                )
            fault_point("wal.append")
            seq = self._seq + 1
            crc = zlib.crc32(_CRC_SEED.pack(seq, len(payload)) + payload)
            frame = _FRAME.pack(seq, len(payload), crc) + payload
            try:
                self._handle.seek(self._tail)
                _write_all(self._handle, frame)
            except BaseException:
                self._rollback_locked()
                raise
            self._seq = seq
            self._tail += len(frame)
        if sync:
            self.sync(seq)
        return seq

    def sync(self, seq: Optional[int] = None) -> None:
        """Block until records up to ``seq`` are fsynced (group commit).

        The first caller to arrive becomes the leader and fsyncs once
        for everything written so far; concurrent callers wait on the
        condition and return as soon as the barrier covers their
        record.  A failed barrier rolls the whole unsynced suffix back
        and fails every waiter — their records were never durable.
        """
        with self._cond:
            if seq is None:
                seq = self._seq
            while True:
                if self._synced_seq >= seq:
                    return
                if self._failed or self._seq < seq:
                    raise DurabilityError(
                        "write-ahead log record was rolled back by a "
                        "failed sync"
                    )
                if not self._leader:
                    self._leader = True
                    target_seq, target_tail = self._seq, self._tail
                    break
                self._cond.wait(0.5)
        try:
            fault_point("wal.fsync")
            os.fsync(self._handle.fileno())
        except BaseException:
            with self._cond:
                self._leader = False
                self._rollback_locked()
                self._cond.notify_all()
            raise
        with self._cond:
            self._synced_seq = max(self._synced_seq, target_seq)
            self._synced_tail = max(self._synced_tail, target_tail)
            self._leader = False
            self._cond.notify_all()

    def _rollback_locked(self) -> None:
        """Truncate back to the last synced frame after a failure.

        The dropped records were never acknowledged (acks wait for the
        barrier), so removing them keeps the file and the live store in
        agreement.  If even the truncate fails the log goes failed-stop:
        refusing every further mutation beats silently diverging.
        """
        try:
            self._handle.truncate(self._synced_tail)
        except OSError as exc:
            self._failed = True
            if self.metrics is not None:
                self.metrics.record_event(
                    "wal_failed_stop",
                    {"error": f"{type(exc).__name__}: {exc}"},
                )
            return
        dropped = self._seq - self._synced_seq
        self._seq = self._synced_seq
        self._tail = self._synced_tail
        if self.metrics is not None:
            self.metrics.record_event(
                "wal_rolled_back", {"dropped_records": dropped}
            )

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def records(
        self, *, after: int = 0
    ) -> Iterator[Tuple[int, Dict[str, object]]]:
        """Yield ``(seq, record)`` for every record with ``seq > after``.

        Reads through a separate handle up to the current valid tail,
        so iteration never observes a frame an in-flight append is
        still writing.
        """
        with self._cond:
            tail = self._tail
        with open(self.path, "rb") as handle:
            blob = handle.read(tail)
        for seq, record, _ in _parse_frames(self.path, blob):
            if seq > after:
                yield seq, record

    # ------------------------------------------------------------------
    # compaction
    # ------------------------------------------------------------------
    def compact(self, up_to: int) -> int:
        """Drop records with ``seq <= up_to`` (now covered by a
        checkpoint), rewriting the file atomically.  Sequence numbers
        are preserved, so the first frame of a compacted log starts
        above 1.  Returns the number of records dropped.
        """
        with self._cond:
            if self._failed:
                raise DurabilityError(
                    "cannot compact a failed-stop write-ahead log"
                )
            os.fsync(self._handle.fileno())
            self._synced_seq, self._synced_tail = self._seq, self._tail
            with open(self.path, "rb") as reader:
                blob = reader.read(self._tail)
            kept: List[bytes] = []
            dropped = 0
            for seq, _, raw in _parse_frames(self.path, blob):
                if seq > up_to:
                    kept.append(raw)
                else:
                    dropped += 1
            if not dropped:
                return 0
            tmp = self.path + ".compact"
            with open(tmp, "wb") as writer:
                writer.write(_MAGIC)
                for raw in kept:
                    writer.write(raw)
                writer.flush()
                os.fsync(writer.fileno())
            os.replace(tmp, self.path)
            _fsync_dir(os.path.dirname(os.path.abspath(self.path)))
            self._handle.close()
            self._handle = _open_wal(self.path)
            self._tail = len(_MAGIC) + sum(len(raw) for raw in kept)
            self._synced_tail = self._tail
            return dropped

    def close(self) -> None:
        """Fsync (best effort) and close the underlying handle."""
        with self._cond:
            try:
                if not self._failed:
                    os.fsync(self._handle.fileno())
            except OSError as exc:
                if self.metrics is not None:
                    self.metrics.record_event(
                        "wal_close_sync_failed",
                        {"error": f"{type(exc).__name__}: {exc}"},
                    )
            self._handle.close()


def _scan_frames(blob: bytes) -> List[Tuple[int, int]]:
    """Walk frames; returns ``[(seq, end_offset)]`` with a leading
    ``(0, header_end)`` sentinel.  Stops (without raising) at the first
    torn or corrupt frame — tail damage is expected after a crash."""
    offset = len(_MAGIC)
    out: List[Tuple[int, int]] = [(0, offset)]
    seq = 0
    while offset + _FRAME.size <= len(blob):
        frame_seq, length, crc = _FRAME.unpack_from(blob, offset)
        body_start = offset + _FRAME.size
        if length > _MAX_RECORD_BYTES or body_start + length > len(blob):
            break
        payload = blob[body_start : body_start + length]
        if zlib.crc32(_CRC_SEED.pack(frame_seq, length) + payload) != crc:
            break
        if seq and frame_seq != seq + 1:
            break
        if not seq and frame_seq < 1:
            break
        seq = frame_seq
        offset = body_start + length
        out.append((seq, offset))
    return out


def _parse_frames(
    path: str, blob: bytes
) -> Iterator[Tuple[int, Dict[str, object], bytes]]:
    """Yield ``(seq, record, raw_frame)`` for every valid frame."""
    if not blob.startswith(_MAGIC):
        raise DurabilityError(f"{path} is not a repro write-ahead log")
    offset = len(_MAGIC)
    seq = 0
    while offset + _FRAME.size <= len(blob):
        frame_seq, length, crc = _FRAME.unpack_from(blob, offset)
        body_start = offset + _FRAME.size
        if length > _MAX_RECORD_BYTES or body_start + length > len(blob):
            return
        payload = blob[body_start : body_start + length]
        if zlib.crc32(_CRC_SEED.pack(frame_seq, length) + payload) != crc:
            return
        if seq and frame_seq != seq + 1:
            return
        if not seq and frame_seq < 1:
            return
        try:
            record = json.loads(payload.decode("utf-8"))
        except ValueError as exc:
            # CRC passed but the payload is not JSON: we wrote garbage,
            # which is a bug, not tail damage — fail loudly.
            raise DurabilityError(
                f"undecodable WAL record at seq {frame_seq} in {path}"
            ) from exc
        seq = frame_seq
        end = body_start + length
        yield seq, record, blob[offset:end]
        offset = end


# ----------------------------------------------------------------------
# checkpoints
# ----------------------------------------------------------------------
def _sha256_file(path: str) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def list_checkpoints(data_dir) -> List[Tuple[int, str]]:
    """``[(wal_seq, path)]`` of complete checkpoints, newest first."""
    root = os.path.join(os.fspath(data_dir), CHECKPOINT_DIRNAME)
    if not os.path.isdir(root):
        return []
    return _checkpoints_in(root)


def write_checkpoint(
    data_dir,
    *,
    wal_seq: int,
    entries: Sequence[GraphEntry],
    job_blobs: Sequence[bytes] = (),
    update_keys: Sequence[Tuple[str, str]] = (),
    keep: int = 2,
    metrics=None,
) -> str:
    """Write ``checkpoints/ckpt-<wal_seq>`` atomically; returns its path.

    Everything lands in a temporary sibling directory first (graph CSR
    arrays, index archives, job pickles, then the manifest binding them
    with per-file SHA-256 digests), which one ``os.replace`` publishes.
    A crash before the rename leaves only an ignored ``.tmp-*`` dir; a
    crash after it leaves a complete checkpoint.  Older checkpoints
    beyond ``keep`` are pruned afterwards.
    """
    root = os.path.join(os.fspath(data_dir), CHECKPOINT_DIRNAME)
    os.makedirs(root, exist_ok=True)
    final = os.path.join(root, f"{_CHECKPOINT_PREFIX}{int(wal_seq):012d}")
    tmp = os.path.join(root, f".tmp-{os.getpid()}-{int(wal_seq)}")
    if os.path.exists(tmp):
        shutil.rmtree(tmp)
    os.makedirs(tmp)
    try:
        graphs = []
        for position, entry in enumerate(entries):
            graph_file = f"graph-{position}.npz"
            graph_path = os.path.join(tmp, graph_file)
            np.savez(
                graph_path,
                indptr=entry.graph.indptr,
                indices=entry.graph.indices,
                weights=entry.graph.weights,
            )
            record: Dict[str, object] = {
                "name": entry.name,
                "file": graph_file,
                "sha256": _sha256_file(graph_path),
                "fingerprint": entry.fingerprint,
                "similarity": similarity_to_wire(entry.similarity),
                "mu_cap": int(entry.mu_cap),
                "auto_index": bool(entry.auto_index),
                "auto_cluster_index": bool(entry.auto_cluster_index),
                "updates_applied": int(entry.updates_applied),
                "index_rows_refreshed": int(entry.index_rows_refreshed),
                "index_file": None,
                "index_sha256": None,
                "index_kind": None,
            }
            index_file = f"index-{position}.npz"
            index_path = os.path.join(tmp, index_file)
            if entry.cluster_index is not None:
                entry.cluster_index.save(index_path)
                record.update(
                    index_file=index_file,
                    index_kind="cluster",
                    index_sha256=_sha256_file(index_path),
                )
            elif entry.index is not None:
                entry.index.save(index_path)
                record.update(
                    index_file=index_file,
                    index_kind="edge",
                    index_sha256=_sha256_file(index_path),
                )
            graphs.append(record)
        jobs = []
        for position, blob in enumerate(job_blobs):
            job_file = f"job-{position}.pkl"
            job_path = os.path.join(tmp, job_file)
            with open(job_path, "wb") as handle:
                handle.write(blob)
            jobs.append({"file": job_file, "sha256": _sha256_file(job_path)})
        payload = {
            "format": _CHECKPOINT_FORMAT,
            "wal_seq": int(wal_seq),
            "graphs": graphs,
            "jobs": jobs,
            "update_keys": [
                [str(name), str(key)] for name, key in update_keys
            ],
        }
        body = json.dumps(payload, sort_keys=True)
        manifest = {
            "payload": payload,
            "sha256": hashlib.sha256(body.encode("utf-8")).hexdigest(),
        }
        manifest_path = os.path.join(tmp, "manifest.json")
        with open(manifest_path, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle, sort_keys=True)
            handle.flush()
            os.fsync(handle.fileno())
        fault_point("checkpoint.write")
        if os.path.exists(final):
            shutil.rmtree(final)
        os.replace(tmp, final)
        _fsync_dir(root)
    except BaseException:
        shutil.rmtree(tmp, ignore_errors=True)
        raise
    _prune_checkpoints(root, keep=keep, metrics=metrics)
    return final


def _prune_checkpoints(root: str, *, keep: int, metrics=None) -> List[int]:
    """Drop all but the newest ``keep`` checkpoints and stale tmp dirs;
    returns the retained sequence numbers (newest first)."""
    kept: List[int] = []
    for position, (seq, path) in enumerate(_checkpoints_in(root)):
        if position < keep:
            kept.append(seq)
            continue
        try:
            shutil.rmtree(path)
        except OSError as exc:
            if metrics is not None:
                metrics.record_event(
                    "checkpoint_prune_failed",
                    {"path": path, "error": f"{type(exc).__name__}: {exc}"},
                )
    for name in os.listdir(root):
        if name.startswith(".tmp-"):
            shutil.rmtree(os.path.join(root, name), ignore_errors=True)
    return kept


def _checkpoints_in(root: str) -> List[Tuple[int, str]]:
    found: List[Tuple[int, str]] = []
    for name in os.listdir(root):
        if not name.startswith(_CHECKPOINT_PREFIX):
            continue
        suffix = name[len(_CHECKPOINT_PREFIX):]
        if not suffix.isdigit():
            # Not a checkpoint directory, just a name-collision.
            continue
        found.append((int(suffix), os.path.join(root, name)))
    found.sort(reverse=True)
    return found


def _read_manifest(directory: str) -> Dict[str, object]:
    """Load and integrity-check one checkpoint manifest."""
    path = os.path.join(directory, "manifest.json")
    try:
        with open(path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
    except (OSError, ValueError) as exc:
        raise DurabilityError(
            f"unreadable checkpoint manifest {path}: {exc}"
        ) from exc
    payload = manifest.get("payload") if isinstance(manifest, dict) else None
    digest = manifest.get("sha256") if isinstance(manifest, dict) else None
    if not isinstance(payload, dict) or not isinstance(digest, str):
        raise DurabilityError(f"malformed checkpoint manifest {path}")
    body = json.dumps(payload, sort_keys=True)
    if hashlib.sha256(body.encode("utf-8")).hexdigest() != digest:
        raise DurabilityError(f"checkpoint manifest checksum mismatch: {path}")
    if payload.get("format") != _CHECKPOINT_FORMAT:
        raise DurabilityError(
            f"unsupported checkpoint format {payload.get('format')!r}"
        )
    return payload


def _verified_file(directory: str, record: Dict[str, object],
                   file_key: str, sha_key: str) -> str:
    name = record.get(file_key)
    digest = record.get(sha_key)
    if not isinstance(name, str) or not isinstance(digest, str):
        raise DurabilityError(f"checkpoint record missing {file_key}")
    path = os.path.join(directory, name)
    if not os.path.exists(path) or _sha256_file(path) != digest:
        raise DurabilityError(f"checkpoint file damaged or missing: {path}")
    return path


def _load_checkpoint_into(
    store: GraphStore, directory: str, payload: Dict[str, object],
    *, metrics=None,
) -> None:
    """Install every checkpointed graph (and its index) into ``store``.

    Graph damage fails the whole checkpoint (the caller falls back to
    an older one or to pure WAL replay); index damage only degrades —
    the index is a deterministic function of the graph and is rebuilt
    on the spot, bitwise identical to the archived one.
    """
    for record in payload.get("graphs", ()):
        graph_path = _verified_file(directory, record, "file", "sha256")
        with np.load(graph_path) as archive:
            graph = Graph(
                np.array(archive["indptr"]),
                np.array(archive["indices"]),
                np.array(archive["weights"]),
            )
        if graph_fingerprint(graph) != record.get("fingerprint"):
            raise DurabilityError(
                f"checkpointed graph {record.get('name')!r} does not match "
                "its recorded fingerprint"
            )
        similarity = similarity_from_wire(record["similarity"])
        mu_cap = int(record["mu_cap"])
        cluster_index = None
        index = None
        kind = record.get("index_kind")
        if kind == "cluster":
            try:
                index_path = _verified_file(
                    directory, record, "index_file", "index_sha256"
                )
                cluster_index = ClusteringIndex.load(
                    index_path, graph, config=similarity, mu_cap=mu_cap
                )
            except (DurabilityError, IndexIntegrityError, ConfigError) as exc:
                if metrics is not None:
                    metrics.record_event(
                        "recovery_index_rebuilt",
                        {
                            "graph": record.get("name"),
                            "error": f"{type(exc).__name__}: {exc}",
                        },
                    )
                cluster_index = ClusteringIndex.build(
                    graph, similarity, mu_cap=mu_cap
                )
            index = cluster_index.edge
        elif kind == "edge":
            try:
                index_path = _verified_file(
                    directory, record, "index_file", "index_sha256"
                )
                index = EdgeSimilarityIndex.load(
                    index_path, graph, config=similarity
                )
            except (DurabilityError, IndexIntegrityError, ConfigError) as exc:
                if metrics is not None:
                    metrics.record_event(
                        "recovery_index_rebuilt",
                        {
                            "graph": record.get("name"),
                            "error": f"{type(exc).__name__}: {exc}",
                        },
                    )
                index = EdgeSimilarityIndex.build(graph, similarity)
        entry = GraphEntry(
            name=str(record["name"]),
            graph=graph,
            similarity=similarity,
            fingerprint=str(record["fingerprint"]),
            index=index,
            auto_index=bool(record.get("auto_index")),
            cluster_index=cluster_index,
            auto_cluster_index=bool(record.get("auto_cluster_index")),
            mu_cap=mu_cap,
            updates_applied=int(record.get("updates_applied", 0)),
            index_rows_refreshed=int(record.get("index_rows_refreshed", 0)),
        )
        store.adopt_entry(entry, replace=True)


def _load_jobs(
    directory: str, payload: Dict[str, object], *, metrics=None
) -> List[bytes]:
    """Read checkpointed job pickles; damaged blobs are skipped (job
    loss is witnessed, graph integrity is the hard guarantee)."""
    blobs: List[bytes] = []
    for record in payload.get("jobs", ()):
        try:
            path = _verified_file(directory, record, "file", "sha256")
            with open(path, "rb") as handle:
                blobs.append(handle.read())
        except (DurabilityError, OSError) as exc:
            if metrics is not None:
                metrics.record_event(
                    "recovery_job_blob_skipped",
                    {"error": f"{type(exc).__name__}: {exc}"},
                )
    return blobs


# ----------------------------------------------------------------------
# recovery
# ----------------------------------------------------------------------
@dataclass
class RecoveredState:
    """Everything a cold restart reconstructs from a data directory."""

    store: GraphStore
    #: ``(graph, idempotency key)`` pairs already applied, in original
    #: acceptance order — seeds the server's update-replay table.
    update_keys: List[Tuple[str, str]] = field(default_factory=list)
    #: Pickled resumable jobs from the checkpoint, for
    #: :meth:`~repro.service.jobs.JobScheduler.import_job`.
    job_blobs: List[bytes] = field(default_factory=list)
    checkpoint_seq: int = 0
    last_seq: int = 0
    replayed_records: int = 0
    #: Edge operations replayed from the WAL tail (bench: edges/sec).
    replayed_mutations: int = 0
    deduped_records: int = 0
    failed_records: int = 0


def _apply_record(
    store: GraphStore,
    record: Dict[str, object],
    applied_keys: Set[Tuple[str, str]],
    *,
    metrics=None,
) -> Tuple[str, int]:
    """Re-apply one WAL record; returns ``(outcome, edge_ops)``.

    A :class:`ReproError` from the store is the *deterministic replay
    of a deterministic failure* — the original apply failed the same
    way after the record was logged, so witnessing and continuing keeps
    the replayed stream aligned with history.
    """
    op = record.get("op")
    try:
        if op == "add_graph":
            builder = GraphBuilder(int(record["n"]))
            for u, v, w in record["edges"]:
                builder.add_edge(int(u), int(v), float(w))
            store.add(
                str(record["name"]),
                builder.build(),
                similarity=similarity_from_wire(record["similarity"]),
                build_index=bool(record.get("build_index")),
                build_cluster_index=bool(record.get("build_cluster_index")),
                mu_cap=int(record["mu_cap"]),
                replace=bool(record.get("replace")),
            )
            return "applied", len(record["edges"])
        if op == "remove_graph":
            store.remove(str(record["name"]))
            return "applied", 0
        if op == "update_edges":
            name = str(record["name"])
            key = record.get("key")
            if key is not None and (name, str(key)) in applied_keys:
                if metrics is not None:
                    metrics.record_event(
                        "recovery_replay_deduped",
                        {"graph": name, "key": str(key)},
                    )
                return "deduped", 0
            store.update_edges(
                name,
                insert=record.get("insert", ()),
                delete=record.get("delete", ()),
                add_vertices=int(record.get("add_vertices", 0)),
            )
            if key is not None:
                applied_keys.add((name, str(key)))
            return "applied", (
                len(record.get("insert", ()))
                + len(record.get("delete", ()))
                + int(record.get("add_vertices", 0))
            )
        if op == "build_index":
            store.ensure_index(str(record["name"]))
            return "applied", 0
        if op == "build_cluster_index":
            store.ensure_cluster_index(
                str(record["name"]), mu_cap=record.get("mu_cap")
            )
            return "applied", 0
        raise DurabilityError(f"unknown WAL record op {op!r}")
    except DurabilityError:
        raise
    except ReproError as exc:
        if metrics is not None:
            metrics.record_event(
                "recovery_record_failed",
                {"op": op, "error": f"{type(exc).__name__}: {exc}"},
            )
        return "failed", 0


class DurabilityManager:
    """One data directory's durability: WAL + checkpoint cadence.

    The manager is the store's journal (duck-typed
    ``log_mutation``/``last_seq``, see
    :meth:`~repro.service.store.GraphStore.attach_journal`) and the
    server's checkpoint scheduler: every ``checkpoint_every``-th applied
    mutation triggers a snapshot, and the WAL is compacted back to the
    oldest retained checkpoint after each success.
    """

    def __init__(
        self,
        data_dir,
        *,
        checkpoint_every: int = 64,
        keep_checkpoints: int = 2,
        metrics=None,
    ) -> None:
        if checkpoint_every < 1:
            raise ConfigError("checkpoint_every must be >= 1")
        if keep_checkpoints < 1:
            raise ConfigError("keep_checkpoints must be >= 1")
        self.data_dir = os.fspath(data_dir)
        os.makedirs(self.data_dir, exist_ok=True)
        self.checkpoint_every = int(checkpoint_every)
        self.keep_checkpoints = int(keep_checkpoints)
        self.metrics = metrics
        self.wal: Optional[WriteAheadLog] = None
        self._lock = threading.Lock()
        self._since_checkpoint = 0
        self._checkpointing = False

    @property
    def wal_path(self) -> str:
        """Path of the log file inside the data directory."""
        return os.path.join(self.data_dir, WAL_FILENAME)

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------
    def recover(self) -> RecoveredState:
        """Checkpoint-load + WAL-tail replay; returns the rebuilt state.

        Tries checkpoints newest-first; a damaged one is witnessed and
        skipped (falling back to the previous, and ultimately to pure
        WAL replay from an empty store).  Leaves the WAL open for
        subsequent journaling.
        """
        store = GraphStore(metrics=self.metrics)
        checkpoint_seq = 0
        update_keys: List[Tuple[str, str]] = []
        job_blobs: List[bytes] = []
        for seq, path in list_checkpoints(self.data_dir):
            candidate = GraphStore(metrics=self.metrics)
            try:
                payload = _read_manifest(path)
                _load_checkpoint_into(
                    candidate, path, payload, metrics=self.metrics
                )
            except DurabilityError as exc:
                if self.metrics is not None:
                    self.metrics.record_event(
                        "recovery_checkpoint_skipped",
                        {
                            "path": path,
                            "error": f"{type(exc).__name__}: {exc}",
                        },
                    )
                continue
            store = candidate
            checkpoint_seq = int(payload["wal_seq"])
            update_keys = [
                (str(name), str(key))
                for name, key in payload.get("update_keys", ())
            ]
            job_blobs = _load_jobs(path, payload, metrics=self.metrics)
            break
        if self.wal is not None:
            self.wal.close()
        self.wal = WriteAheadLog(self.wal_path, metrics=self.metrics)
        applied_keys = set(update_keys)
        state = RecoveredState(
            store=store,
            update_keys=update_keys,
            job_blobs=job_blobs,
            checkpoint_seq=checkpoint_seq,
        )
        for seq, record in self.wal.records(after=checkpoint_seq):
            fault_point("recovery.replay")
            outcome, edge_ops = _apply_record(
                store, record, applied_keys, metrics=self.metrics
            )
            state.replayed_records += 1
            state.replayed_mutations += edge_ops
            if outcome == "deduped":
                state.deduped_records += 1
            elif outcome == "failed":
                state.failed_records += 1
            elif record.get("op") == "update_edges":
                key = record.get("key")
                if key is not None:
                    state.update_keys.append(
                        (str(record["name"]), str(key))
                    )
        state.last_seq = self.wal.last_seq
        with self._lock:
            self._since_checkpoint = 0
        if self.metrics is not None:
            self.metrics.record_event(
                "recovery_complete",
                {
                    "checkpoint_seq": state.checkpoint_seq,
                    "last_seq": state.last_seq,
                    "replayed_records": state.replayed_records,
                    "deduped_records": state.deduped_records,
                    "failed_records": state.failed_records,
                    "graphs": len(store),
                },
            )
        return state

    # ------------------------------------------------------------------
    # journal protocol (GraphStore.attach_journal)
    # ------------------------------------------------------------------
    def log_mutation(self, record: Dict[str, object]) -> int:
        """Append one mutation record durably; the store calls this
        before applying (log-before-apply)."""
        wal = self.wal
        if wal is None:
            raise DurabilityError(
                "durability manager has no open WAL; call recover() first"
            )
        return wal.append(record)

    @property
    def last_seq(self) -> int:
        """Sequence number of the newest logged mutation (0 if none)."""
        wal = self.wal
        return wal.last_seq if wal is not None else 0

    # ------------------------------------------------------------------
    # checkpoint cadence
    # ------------------------------------------------------------------
    def note_applied(self, snapshot_fn) -> bool:
        """Count one applied mutation; checkpoint at the cadence.

        ``snapshot_fn`` is a zero-argument callable producing the dict
        :meth:`checkpoint` consumes — only invoked when a checkpoint is
        actually due, and never concurrently with another checkpoint.
        """
        with self._lock:
            self._since_checkpoint += 1
            due = (
                self._since_checkpoint >= self.checkpoint_every
                and not self._checkpointing
            )
            if due:
                self._since_checkpoint = 0
                self._checkpointing = True
        if not due:
            return False
        try:
            return self.checkpoint(snapshot_fn()) is not None
        finally:
            with self._lock:
                self._checkpointing = False

    def checkpoint(self, snapshot: Dict[str, object]) -> Optional[str]:
        """Write one checkpoint from a server snapshot; never raises.

        ``snapshot`` holds ``entries`` (a coherent
        :class:`~repro.service.store.GraphEntry` list), ``wal_seq`` (the
        journal position those entries reflect), ``job_blobs`` and
        ``update_keys``.  A failed write is witnessed and degrades to
        WAL-only recovery — the log still has everything.
        """
        try:
            path = write_checkpoint(
                self.data_dir,
                wal_seq=int(snapshot["wal_seq"]),
                entries=snapshot.get("entries", ()),
                job_blobs=snapshot.get("job_blobs", ()),
                update_keys=snapshot.get("update_keys", ()),
                keep=self.keep_checkpoints,
                metrics=self.metrics,
            )
        except Exception as exc:
            if self.metrics is not None:
                self.metrics.record_event(
                    "checkpoint_failed",
                    {"error": f"{type(exc).__name__}: {exc}"},
                )
            return None
        kept = [seq for seq, _ in list_checkpoints(self.data_dir)]
        try:
            # Compact only when an *older* checkpoint remains as the
            # fallback: trimming up to the one and only checkpoint would
            # make it a single point of failure (a damaged manifest
            # would then lose the compacted prefix for good).
            if len(kept) >= 2 and self.wal is not None:
                self.wal.compact(min(kept))
        except (DurabilityError, OSError) as exc:
            # Compaction is pure hygiene; recovery only needs records
            # past the checkpoint, and extra ones are skipped by seq.
            if self.metrics is not None:
                self.metrics.record_event(
                    "wal_compact_failed",
                    {"error": f"{type(exc).__name__}: {exc}"},
                )
        if self.metrics is not None:
            self.metrics.record_event(
                "checkpoint_written",
                {"path": path, "wal_seq": int(snapshot["wal_seq"])},
            )
        return path

    def close(self) -> None:
        """Close the WAL handle (checkpointing is the caller's call)."""
        if self.wal is not None:
            self.wal.close()
            self.wal = None


def entry_snapshot(entry: GraphEntry) -> GraphEntry:
    """A checkpoint-stable copy of one entry (mirror dropped).

    The CSR arrays, fingerprint and index objects are replaced — never
    mutated — by the store's update path, so sharing references with a
    copy taken under the store lock is safe; the
    :class:`~repro.dynamic.scan.DynamicSCAN` mirror is the one mutable
    piece and is excluded (it is rebuilt, σ-seeded, on demand).
    """
    return dataclasses.replace(entry, dynamic=None)
