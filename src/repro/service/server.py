"""The clustering service: endpoint handlers + stdlib HTTP hosting.

:class:`ClusteringService` composes the pieces the previous layers
built — the :class:`~repro.service.store.GraphStore` (named graphs +
σ indexes), the :class:`~repro.service.store.ResultCache`, the
:class:`~repro.service.jobs.JobScheduler` (anytime slices over a worker
pool) and :class:`~repro.service.metrics.ServiceMetrics` — behind the
wire protocol of :mod:`repro.service.api`.  The HTTP layer is a plain
``ThreadingHTTPServer`` (no dependencies beyond the stdlib): each
request thread parses JSON, dispatches to a ``handle_*`` method, and
records the endpoint's latency.

The cache discipline implements the issue's interactivity story:

* a `cluster` request first consults the LRU under the full query
  identity (graph fingerprint, σ semantics, μ, ε) — a hit answers with
  **zero** σ evaluations and no job;
* a miss schedules an anytime job whose oracle is the graph's
  :class:`~repro.similarity.index.IndexedOracle` when σ is
  materialized — near-miss (ε, μ) queries then also run without σ
  evaluations, just threshold passes over stored values;
* `update-edges` mutates through DynamicSCAN and invalidates exactly
  the entries keyed by the pre-update fingerprint.
"""

from __future__ import annotations

import argparse
import json
import signal
import socket
import sys
import threading
import time
from collections import OrderedDict
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Tuple

from repro.core.anyscan import AnySCAN
from repro.core.config import AnyScanConfig
from repro.errors import ConfigError
from repro.faults import FaultInjected, fault_point
from repro.graph.builder import GraphBuilder
from repro.graph.csr import Graph
from repro.parallel.processes import (
    DegradationEvent,
    add_degradation_listener,
    remove_degradation_listener,
)
from repro.service import api
from repro.service.api import (
    ServiceError,
    clustering_payload,
    get_bool,
    get_float,
    get_int,
    get_str,
    snapshot_payload,
)
from repro.service.jobs import JobRecord, JobScheduler, JobState
from repro.service.metrics import ServiceMetrics, merge_metric_snapshots
from repro.local import local_cluster
from repro.service.store import (
    CachedLocalResult,
    CachedResult,
    GraphStore,
    ResultCache,
    make_cache_key,
    make_local_cache_key,
)
from repro.similarity.gsindex import DEFAULT_MU_CAP
from repro.similarity.weighted import SimilarityConfig
from repro.validation import check_eps_mu

__all__ = ["ClusteringServer", "ClusteringService", "serve_main"]

_SIMILARITY_FIELDS = (
    "kind",
    "closed",
    "self_weight",
    "count_self",
    "pruning",
)

#: Remembered (graph, idempotency_key) → job_id pairs; old ones roll off.
_IDEMPOTENCY_LIMIT = 4096


def _similarity_from_payload(spec: object) -> Optional[SimilarityConfig]:
    if spec is None:
        return None
    if not isinstance(spec, dict):
        raise ServiceError("field 'similarity' must be an object")
    unknown = sorted(set(spec) - set(_SIMILARITY_FIELDS))
    if unknown:
        raise ServiceError(
            f"unknown similarity fields {unknown}; "
            f"allowed: {sorted(_SIMILARITY_FIELDS)}"
        )
    config = SimilarityConfig(**spec)
    config.validate()
    return config


class ClusteringService:
    """Endpoint implementations over store + cache + scheduler."""

    def __init__(
        self,
        *,
        workers: int = 2,
        slice_iterations: int = 4,
        cache_capacity: int = 128,
        default_alpha: int = 1024,
        default_beta: int = 1024,
        request_timeout: float = 30.0,
        max_pending_jobs: Optional[int] = None,
        store: Optional[GraphStore] = None,
        job_id_prefix: str = "job",
        metrics: Optional[ServiceMetrics] = None,
    ) -> None:
        if default_alpha < 1 or default_beta < 1:
            raise ConfigError("default block sizes must be >= 1")
        if request_timeout <= 0:
            raise ConfigError("request_timeout must be positive")
        if max_pending_jobs is not None and max_pending_jobs < 1:
            raise ConfigError("max_pending_jobs must be >= 1 (or None)")
        self.default_alpha = int(default_alpha)
        self.default_beta = int(default_beta)
        #: Socket read/write budget per HTTP request (stalled clients).
        self.request_timeout = float(request_timeout)
        #: Active-job ceiling; above it `cluster` answers 503+Retry-After.
        self.max_pending_jobs = (
            None if max_pending_jobs is None else int(max_pending_jobs)
        )
        # A caller-supplied registry lets recovery witness events land in
        # the same snapshot the /metrics endpoint serves.
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        # Fleet workers inject an AttachedGraphStore (zero-copy reader
        # over the writer's shared-memory segments); standalone servers
        # own a plain in-process store.
        self.store = store if store is not None else GraphStore(
            metrics=self.metrics
        )
        if store is not None and getattr(store, "metrics", None) is None:
            store.metrics = self.metrics
        self.cache = ResultCache(capacity=cache_capacity)
        self.scheduler = JobScheduler(
            workers=workers,
            slice_iterations=slice_iterations,
            on_done=self._job_finished,
            id_prefix=job_id_prefix,
        )
        #: Set by :class:`repro.service.fleet.ServiceSupervisor` on the
        #: writer service; ``/fleet/*`` handlers consult it.
        self.fleet = None
        #: Set by `serve_main --data-dir` (or a fleet writer): the
        #: :class:`~repro.service.durability.DurabilityManager` whose
        #: WAL the store journals to and whose checkpoint cadence
        #: :meth:`_durability_note` drives.
        self.durability = None
        self.shutdown_event = threading.Event()
        # Replayed submissions: (graph, key) → the job already scheduled.
        self._idempotency: "OrderedDict[Tuple[str, str], str]" = OrderedDict()
        # Replayed mutations: (graph, key) → the update-edges response
        # already applied.  Keys are journaled with the batch, so the
        # table survives a crash (bodies degrade to replay markers).
        self._update_idempotency: "OrderedDict[Tuple[str, str], Dict[str, object]]" = (
            OrderedDict()
        )
        self._idempotency_lock = threading.Lock()
        # Backend degradations (process pool → threads) land in the
        # metrics audit trail so operators see them without log scraping.
        self._degradation_listener = add_degradation_listener(
            self._backend_degraded
        )
        self.metrics.register_gauge("jobs", self.scheduler.state_counts)
        self.metrics.register_gauge("cache", self.cache.stats)
        self.metrics.register_gauge("graphs", lambda: len(self.store))

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        remove_degradation_listener(self._degradation_listener)
        self.scheduler.close()

    def _backend_degraded(self, event: DegradationEvent) -> None:
        self.metrics.increment("backend_degradations")
        self.metrics.record_event("degradation", event.to_dict())

    def _job_finished(self, job: JobRecord) -> None:
        """Scheduler callback: account terminal jobs, fill the cache.

        Index-served jobs (born DONE via ``submit_completed``) carry no
        algorithm; their cost accounting travels in ``job.meta["stats"]``
        instead — by construction 0 σ evaluations.  Both kinds fill the
        same cache keyspace, so invalidation and hits are uniform.
        """
        if job.state is JobState.DONE and job.result is not None:
            if job.algorithm is not None:
                stats = job.algorithm.statistics()
            else:
                meta_stats = job.meta.get("stats")
                stats = (
                    dict(meta_stats)
                    if isinstance(meta_stats, dict)
                    else {"sigma_evaluations": 0, "compute_seconds": 0.0}
                )
            evaluations = int(stats["sigma_evaluations"])
            self.metrics.increment("jobs_completed")
            self.metrics.increment("sigma_evaluations", evaluations)
            key = job.meta.get("cache_key")
            fingerprint = job.meta.get("fingerprint")
            if key is not None and isinstance(fingerprint, str):
                # Guarded fill: the graph may have been unloaded or
                # mutated while the job ran; the store re-checks the
                # fingerprint under its lock so a finished-late job
                # cannot resurrect an already-invalidated entry.
                filled = self.store.fill_cache_if_current(
                    self.cache,
                    job.graph_name,
                    fingerprint,
                    key,
                    CachedResult(
                        labels=job.result.labels.copy(),
                        num_clusters=job.result.num_clusters,
                        sigma_evaluations=evaluations,
                        compute_seconds=float(stats["compute_seconds"]),
                    ),
                )
                if not filled:
                    self.metrics.increment("cache_fills_skipped_stale")
        elif job.state is JobState.FAILED:
            self.metrics.increment("jobs_failed")
        elif job.state is JobState.CANCELLED:
            self.metrics.increment("jobs_cancelled")

    # ------------------------------------------------------------------
    # graph endpoints
    # ------------------------------------------------------------------
    def handle_load_graph(self, payload: Dict[str, object]) -> Dict[str, object]:
        name = get_str(payload, "name")
        edges = payload.get("edges")
        if not isinstance(edges, list):
            raise ServiceError("field 'edges' must be a list of [u, v(, w)]")
        max_vertex = -1
        for spec in edges:
            if not isinstance(spec, (list, tuple)) or len(spec) not in (2, 3):
                raise ServiceError(
                    "edges entries must be [u, v] or [u, v, weight]"
                )
            max_vertex = max(max_vertex, int(spec[0]), int(spec[1]))
        num_vertices = get_int(payload, "num_vertices", max_vertex + 1)
        assert num_vertices is not None
        if num_vertices <= max_vertex:
            raise ServiceError(
                f"num_vertices={num_vertices} but edges reference vertex "
                f"{max_vertex}"
            )
        builder = GraphBuilder(num_vertices)
        for spec in edges:
            weight = float(spec[2]) if len(spec) == 3 else 1.0
            builder.add_edge(int(spec[0]), int(spec[1]), weight)
        graph = builder.build(dedup="error")
        entry = self.store.add(
            name,
            graph,
            similarity=_similarity_from_payload(payload.get("similarity")),
            build_index=get_bool(payload, "build_index"),
            build_cluster_index=get_bool(payload, "build_cluster_index"),
            mu_cap=get_int(payload, "mu_cap", DEFAULT_MU_CAP) or DEFAULT_MU_CAP,
            replace=get_bool(payload, "replace"),
        )
        self.metrics.increment("graphs_loaded")
        self._durability_note()
        return entry.info()

    def handle_list_graphs(self, payload: Dict[str, object]) -> Dict[str, object]:
        return {"graphs": self.store.infos()}

    def handle_graph_info(
        self, payload: Dict[str, object], name: str
    ) -> Dict[str, object]:
        return self.store.get(name).info()

    def handle_build_index(
        self, payload: Dict[str, object], name: str
    ) -> Dict[str, object]:
        """Build (or widen) the graph's GS*-style clustering index.

        Subsequent ``cluster`` requests for this graph short-circuit to
        index extraction: any (ε, μ), zero σ evaluations.  ``mu_cap``
        bounds the binary-search core path (larger μ stays exact via the
        O(n) gather); re-posting with a larger cap rebuilds the derived
        orders from the existing σ array.
        """
        mu_cap = get_int(payload, "mu_cap")
        entry = self.store.ensure_cluster_index(name, mu_cap=mu_cap)
        # Mark the entry for automatic repatch/rebuild across updates;
        # republish so attached fleet readers see the flag too.
        entry.auto_cluster_index = True
        self.store.republish(name)
        self.metrics.increment("cluster_indexes_built")
        self._durability_note()
        return self.store.get(name).info()

    def handle_update_edges(
        self, payload: Dict[str, object], name: str
    ) -> Dict[str, object]:
        insert = payload.get("insert", [])
        delete = payload.get("delete", [])
        if not isinstance(insert, list) or not isinstance(delete, list):
            raise ServiceError("'insert' and 'delete' must be lists")
        add_vertices = get_int(payload, "add_vertices", 0)
        assert add_vertices is not None
        idem_key = payload.get("idempotency_key")
        if idem_key is not None and not isinstance(idem_key, str):
            raise ServiceError("field 'idempotency_key' must be a string")
        if idem_key:
            map_key = (name, idem_key)
            # Held across lookup + apply: two concurrent retries of the
            # same batch must not both mutate, and the store journals
            # the key inside this window, so a checkpoint snapshot can
            # never capture the mutation without its dedupe entry.
            with self._idempotency_lock:
                replay = self._update_idempotency.get(map_key)
                if replay is not None:
                    self._update_idempotency.move_to_end(map_key)
                    self.metrics.increment("update_idempotent_replays")
                    return dict(replay, replayed=True)
                body = self._apply_update_edges(
                    name,
                    insert,
                    delete,
                    add_vertices,
                    idempotency_key=idem_key,
                )
                self._update_idempotency[map_key] = dict(body)
                while len(self._update_idempotency) > _IDEMPOTENCY_LIMIT:
                    self._update_idempotency.popitem(last=False)
        else:
            body = self._apply_update_edges(
                name, insert, delete, add_vertices
            )
        self._durability_note()
        return body

    def _apply_update_edges(
        self,
        name: str,
        insert: list,
        delete: list,
        add_vertices: int,
        *,
        idempotency_key: Optional[str] = None,
    ) -> Dict[str, object]:
        stats = self.store.update_edges(
            name,
            insert=insert,
            delete=delete,
            add_vertices=add_vertices,
            idempotency_key=idempotency_key,
        )
        # Local-query entries first: those whose read set is disjoint
        # from the update survive (re-keyed to the new fingerprint);
        # only results whose cluster was actually touched are evicted.
        # The global invalidation then sweeps whatever remains under
        # the old fingerprint.
        migration = self.cache.migrate_local(
            stats.old_fingerprint,
            stats.new_fingerprint,
            stats.affected_vertices,
            renumbered=stats.vertices_added > 0,
        )
        invalidated = self.cache.invalidate_fingerprint(
            stats.old_fingerprint
        )
        self.metrics.increment("edge_updates")
        self.metrics.increment("cache_invalidated", invalidated)
        self.metrics.increment(
            "local_results_migrated", migration["moved"]
        )
        self.metrics.increment(
            "local_results_evicted", migration["evicted"]
        )
        return {
            "graph": name,
            "fingerprint": stats.new_fingerprint,
            "previous_fingerprint": stats.old_fingerprint,
            "vertices_added": stats.vertices_added,
            "inserted": stats.inserted,
            "deleted": stats.deleted,
            "sigma_recomputations": stats.sigma_recomputations,
            "index_rows_refreshed": stats.index_rows_refreshed,
            "cache_entries_invalidated": invalidated,
            "affected_vertices": [
                int(v) for v in stats.affected_vertices
            ],
            "local_results_migrated": migration["moved"],
            "local_results_evicted": migration["evicted"],
        }

    # ------------------------------------------------------------------
    # seeded local clustering
    # ------------------------------------------------------------------
    def _ensure_local_indexes(self, name: str, entry):
        """Best available σ tier (mirrors ``_submit_cluster_job``).

        Overridden in fleet workers, whose attached store is read-only:
        they serve with whatever tier the writer last published.
        """
        if entry.auto_cluster_index and entry.cluster_index is None:
            entry = self.store.ensure_cluster_index(name)
        if (
            entry.cluster_index is None
            and entry.auto_index
            and entry.index is None
        ):
            entry = self.store.ensure_index(name)
        return entry

    def handle_local_cluster(
        self, payload: Dict[str, object], name: str
    ) -> Dict[str, object]:
        """The seed vertex's exact cluster, at output-proportional cost.

        Synchronous (no job machinery): local queries are the latency-
        sensitive per-user fast path, and their cost scales with the
        answer, not the graph.  Responses are cached under the seed-
        aware keyspace (:func:`make_local_cache_key`); the boundary is
        always computed before caching so one cache line serves both
        ``boundary`` settings.
        """
        seed = get_int(payload, "seed")
        mu = get_int(payload, "mu")
        epsilon = get_float(payload, "epsilon")
        if epsilon is None:
            epsilon = get_float(payload, "eps")
        if seed is None or mu is None or epsilon is None:
            raise ServiceError(
                "fields 'seed', 'mu' and 'epsilon' (or 'eps') are "
                "required"
            )
        check_eps_mu(mu=mu, epsilon=epsilon)
        order_seed = get_int(payload, "order_seed", 0) or 0
        include_boundary = get_bool(payload, "boundary", True)
        entry = self.store.get(name)
        key = make_local_cache_key(
            entry.fingerprint, entry.similarity, mu, epsilon, seed,
            order_seed,
        )
        self.metrics.increment("local_queries")
        cached = self.cache.get(key)
        if cached is not None:
            self.metrics.increment("local_cache_hits")
            body = dict(cached.payload)
            if not include_boundary:
                body.pop("boundary", None)
            body.update({"graph": name, "cached": True})
            return body
        self.metrics.increment("local_cache_misses")
        entry = self._ensure_local_indexes(name, entry)
        started = time.perf_counter()
        result = local_cluster(
            entry.graph,
            seed,
            epsilon,
            mu,
            cluster_index=entry.cluster_index,
            edge_index=entry.index,
            similarity_config=entry.similarity,
            order_seed=order_seed,
            classify_boundary=True,
        )
        elapsed = time.perf_counter() - started
        stats = result.stats
        # Per-request tier stats are the single accounting source here:
        # the index tiers' shared SimilarityCounters are deliberately
        # not re-read, so the short-circuit path cannot double-count.
        tier_counter = "local_tier_" + stats.tier.replace("-", "_")
        self.metrics.increment(tier_counter)
        self.metrics.increment(
            "local_sigma_evaluations", stats.sigma_evaluations
        )
        self.metrics.increment("local_touched_edges", stats.touched_edges)
        if stats.degraded_from:
            self.metrics.increment(
                "local_tier_degradations", len(stats.degraded_from)
            )
        payload_body = result.to_dict()
        payload_body["compute_seconds"] = elapsed
        self.store.fill_cache_if_current(
            self.cache,
            name,
            entry.fingerprint,
            key,
            CachedLocalResult(
                payload=dict(payload_body),
                touched=result.touched,
                sigma_evaluations=int(stats.sigma_evaluations),
                compute_seconds=elapsed,
            ),
        )
        body = payload_body
        if not include_boundary:
            body = dict(payload_body)
            body.pop("boundary", None)
        body.update({"graph": name, "cached": False})
        return body

    # ------------------------------------------------------------------
    # clustering endpoints
    # ------------------------------------------------------------------
    def handle_cluster(self, payload: Dict[str, object]) -> Dict[str, object]:
        name = get_str(payload, "graph")
        mu = get_int(payload, "mu")
        epsilon = get_float(payload, "epsilon")
        if mu is None or epsilon is None:
            raise ServiceError("fields 'mu' and 'epsilon' are required")
        check_eps_mu(mu=mu, epsilon=epsilon)
        wait = get_float(payload, "wait", 0.0)
        assert wait is not None
        include_labels = get_bool(payload, "labels", True)
        entry = self.store.get(name)
        key = make_cache_key(entry.fingerprint, entry.similarity, mu, epsilon)
        cached = self.cache.get(key)
        if cached is not None:
            self.metrics.increment("cache_hits")
            body = clustering_payload(
                cached.labels, include_labels=include_labels
            )
            body.update(
                {
                    "graph": name,
                    "state": "done",
                    "cached": True,
                    "job_id": None,
                    "sigma_evaluations": 0,
                }
            )
            return body
        self.metrics.increment("cache_misses")
        idem_key = payload.get("idempotency_key")
        if idem_key is not None and not isinstance(idem_key, str):
            raise ServiceError("field 'idempotency_key' must be a string")
        if idem_key:
            map_key = (name, idem_key)
            # Held across lookup + submit: two concurrent retries of the
            # same request must not both schedule a job.
            with self._idempotency_lock:
                job_id = self._idempotency.get(map_key)
                if job_id is None:
                    self._admit_or_reject()
                    job_id = self._submit_cluster_job(
                        payload, entry, name, mu, epsilon, key
                    )
                    self._idempotency[map_key] = job_id
                    while len(self._idempotency) > _IDEMPOTENCY_LIMIT:
                        self._idempotency.popitem(last=False)
                else:
                    self._idempotency.move_to_end(map_key)
                    self.metrics.increment("idempotent_replays")
        else:
            self._admit_or_reject()
            job_id = self._submit_cluster_job(
                payload, entry, name, mu, epsilon, key
            )
        if wait > 0:
            info = self.scheduler.wait(job_id, timeout=wait)
            if info["state"] == JobState.DONE.value:
                return self._result_body(
                    job_id, name, include_labels=include_labels
                )
            return dict(info, cached=False)
        return dict(self.scheduler.info(job_id), cached=False)

    def _admit_or_reject(self) -> None:
        """Backpressure: refuse new jobs while the scheduler is saturated.

        A 503 with ``Retry-After`` is cheap and honest; accepting the
        job would only grow an unbounded queue the client interprets as
        a hang.
        """
        if self.max_pending_jobs is None:
            return
        active = self.scheduler.active_count()
        if active >= self.max_pending_jobs:
            self.metrics.increment("backpressure_rejections")
            raise ServiceError(
                f"scheduler is saturated ({active} active jobs, limit "
                f"{self.max_pending_jobs}); retry later",
                status=503,
                retry_after=1.0,
            )

    def _submit_cluster_job(
        self,
        payload: Dict[str, object],
        entry,
        name: str,
        mu: int,
        epsilon: float,
        key,
    ) -> str:
        if entry.auto_cluster_index and entry.cluster_index is None:
            # The clustering index went stale after update-edges (and
            # could not be patched in place); rebuild lazily.
            entry = self.store.ensure_cluster_index(name)
        if entry.cluster_index is not None:
            # Default query path: the GS*-style index extracts the
            # exact clustering directly — zero σ evaluations, no worker
            # time.  The answer still registers as a (born-DONE) job so
            # polling, accounting, and the cache fill are uniform.
            started = time.perf_counter()
            result = entry.cluster_index.query(
                epsilon, mu, seed=get_int(payload, "seed", 0) or 0
            )
            elapsed = time.perf_counter() - started
            job_id = self.scheduler.submit_completed(
                result,
                graph_name=name,
                mu=mu,
                epsilon=epsilon,
                priority=get_int(payload, "priority", 0) or 0,
                meta={
                    "cache_key": key,
                    "fingerprint": entry.fingerprint,
                    "served_by": "cluster-index",
                    "stats": {
                        "sigma_evaluations": 0,
                        "compute_seconds": elapsed,
                    },
                },
                sigma_evaluations=0,
                compute_seconds=elapsed,
            )
            self.metrics.increment("index_served_queries")
            self.metrics.increment("jobs_submitted")
            return job_id
        if entry.auto_index and entry.index is None:
            # The index went stale after update-edges; rebuild lazily.
            entry = self.store.ensure_index(name)
        config = AnyScanConfig(
            mu=mu,
            epsilon=epsilon,
            alpha=get_int(payload, "alpha", self.default_alpha) or 1,
            beta=get_int(payload, "beta", self.default_beta) or 1,
            seed=get_int(payload, "seed", 0) or 0,
            similarity=entry.similarity,
            record_costs=False,
        )
        algorithm = AnySCAN(
            entry.graph, config, oracle=self.store.oracle_for(entry)
        )
        job_id = self.scheduler.submit(
            algorithm,
            graph_name=name,
            mu=mu,
            epsilon=epsilon,
            priority=get_int(payload, "priority", 0) or 0,
            meta={"cache_key": key, "fingerprint": entry.fingerprint},
        )
        self.metrics.increment("jobs_submitted")
        return job_id

    def _result_body(
        self, job_id: str, graph_name: str, *, include_labels: bool
    ) -> Dict[str, object]:
        labels = self.scheduler.result(job_id).labels
        snap = self.scheduler.snapshot(job_id)
        body = clustering_payload(labels, include_labels=include_labels)
        body.update(
            {
                "graph": graph_name,
                "job_id": job_id,
                "state": "done",
                "cached": False,
                "sigma_evaluations": int(snap.sigma_evaluations),
            }
        )
        return body

    # ------------------------------------------------------------------
    # job endpoints
    # ------------------------------------------------------------------
    def handle_list_jobs(self, payload: Dict[str, object]) -> Dict[str, object]:
        return {"jobs": self.scheduler.list_jobs()}

    def handle_job_status(
        self, payload: Dict[str, object], job_id: str
    ) -> Dict[str, object]:
        return self.scheduler.info(job_id)

    def handle_job_snapshot(
        self, payload: Dict[str, object], job_id: str
    ) -> Dict[str, object]:
        include_labels = get_bool(payload, "labels", True)
        snap = self.scheduler.snapshot(job_id)
        body = snapshot_payload(snap, include_labels=include_labels)
        body["job_id"] = job_id
        body.update(
            state=self.scheduler.info(job_id)["state"],
        )
        return body

    def handle_job_result(
        self, payload: Dict[str, object], job_id: str
    ) -> Dict[str, object]:
        wait = get_float(payload, "wait")
        include_labels = get_bool(payload, "labels", True)
        if wait is not None:
            info = self.scheduler.wait(job_id, timeout=wait)
        else:
            info = self.scheduler.info(job_id)
        if info["state"] == JobState.DONE.value:
            return self._result_body(
                job_id, str(info["graph"]), include_labels=include_labels
            )
        if info["state"] == JobState.FAILED.value:
            raise ServiceError(
                f"job {job_id} failed: {info['error']}", status=500
            )
        raise ServiceError(
            f"job {job_id} is {info['state']}; result not available",
            status=409,
        )

    def handle_pause_job(
        self, payload: Dict[str, object], job_id: str
    ) -> Dict[str, object]:
        return self.scheduler.pause(job_id)

    def handle_resume_job(
        self, payload: Dict[str, object], job_id: str
    ) -> Dict[str, object]:
        return self.scheduler.resume(job_id)

    def handle_cancel_job(
        self, payload: Dict[str, object], job_id: str
    ) -> Dict[str, object]:
        return self.scheduler.cancel(job_id)

    def handle_set_priority(
        self, payload: Dict[str, object], job_id: str
    ) -> Dict[str, object]:
        priority = get_int(payload, "priority")
        if priority is None:
            raise ServiceError("field 'priority' is required")
        return self.scheduler.reprioritize(job_id, priority)

    # ------------------------------------------------------------------
    # durability (WAL + checkpoints; see repro.service.durability)
    # ------------------------------------------------------------------
    def seed_update_keys(self, keys) -> None:
        """Prime the update-edges dedupe table from recovered WAL keys.

        Replay bodies after a restart are markers, not the original
        responses — the durable contract is exactly-once application,
        so a batch retried across the crash answers ``replayed`` /
        ``recovered`` instead of double-applying.
        """
        with self._idempotency_lock:
            for name, key in keys:
                self._update_idempotency[(str(name), str(key))] = {
                    "graph": str(name),
                    "idempotency_key": str(key),
                    "recovered": True,
                }
            while len(self._update_idempotency) > _IDEMPOTENCY_LIMIT:
                self._update_idempotency.popitem(last=False)

    def import_recovered_jobs(self, blobs) -> int:
        """Revive checkpointed paused/pending jobs; returns the count."""
        revived = 0
        for blob in blobs:
            try:
                self.scheduler.import_job(blob)
            except Exception as exc:  # pickle payloads fail arbitrarily
                self.metrics.record_event(
                    "recovery_job_import_failed",
                    {"error": f"{type(exc).__name__}: {exc}"},
                )
                continue
            revived += 1
        if revived:
            self.metrics.increment("jobs_recovered", revived)
        return revived

    def durability_snapshot(self) -> Dict[str, object]:
        """One coherent checkpoint input: entries + keys + paused jobs.

        Lock order matters: the idempotency lock is taken first (same
        order as the keyed update path), then the store lock inside
        ``checkpoint_snapshot`` — so every journaled mutation at or
        below the returned ``wal_seq`` is reflected in the entries and
        every key journaled with those mutations is in the table.
        """
        with self._idempotency_lock:
            update_keys = list(self._update_idempotency.keys())
            entries, wal_seq = self.store.checkpoint_snapshot()
        job_blobs = []
        for info in self.scheduler.list_jobs():
            if info["state"] in (
                JobState.PAUSED.value,
                JobState.PENDING.value,
            ):
                try:
                    job_blobs.append(
                        self.scheduler.export_job(str(info["job_id"]))
                    )
                except Exception as exc:
                    # The job raced into RUNNING (or its algorithm does
                    # not pickle); the WAL still covers the mutations,
                    # only this job's resumability is lost.
                    self.metrics.record_event(
                        "checkpoint_job_skipped",
                        {
                            "job_id": info["job_id"],
                            "error": f"{type(exc).__name__}: {exc}",
                        },
                    )
        return {
            "wal_seq": wal_seq,
            "entries": entries,
            "job_blobs": job_blobs,
            "update_keys": update_keys,
        }

    def _durability_note(self) -> None:
        """Tick the checkpoint cadence after an applied mutation."""
        if self.durability is not None:
            self.durability.note_applied(self.durability_snapshot)

    # ------------------------------------------------------------------
    # observability + shutdown
    # ------------------------------------------------------------------
    def handle_health(self, payload: Dict[str, object]) -> Dict[str, object]:
        return {
            "status": "ok",
            "graphs": len(self.store),
            "jobs": sum(self.scheduler.state_counts().values()),
        }

    def handle_metrics(self, payload: Dict[str, object]) -> Dict[str, object]:
        return self.metrics.snapshot()

    def handle_shutdown(self, payload: Dict[str, object]) -> Dict[str, object]:
        self.shutdown_event.set()
        return {"status": "shutting-down"}

    # ------------------------------------------------------------------
    # fleet endpoints (overridden / activated by repro.service.fleet)
    # ------------------------------------------------------------------
    def handle_fleet_register(
        self, payload: Dict[str, object]
    ) -> Dict[str, object]:
        if self.fleet is None:
            raise ServiceError(
                "this server is not a fleet supervisor; "
                "start it with `repro serve --processes N`",
                status=400,
            )
        return self.fleet.register_worker(payload)

    def handle_fleet_metrics(
        self, payload: Dict[str, object]
    ) -> Dict[str, object]:
        """Fleet-wide merged metrics; degenerate single-shard merge
        when no fleet is attached, so the response shape is uniform."""
        if self.fleet is not None:
            return self.fleet.merged_metrics()
        return merge_metric_snapshots([self.metrics.snapshot()])

    def handle_fleet_promote(
        self, payload: Dict[str, object]
    ) -> Dict[str, object]:
        """Writer failover target; only fleet workers can be promoted."""
        raise ServiceError(
            "this server is not a fleet worker; promotion addresses a "
            "worker's admin endpoint after the writer died",
            status=400,
        )


class _ServiceHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        address,
        handler,
        service: ClusteringService,
        *,
        sock: Optional[socket.socket] = None,
    ) -> None:
        if sock is None:
            super().__init__(address, handler)
        else:
            # Adopt an already-listening socket (fleet workers: either a
            # per-process SO_REUSEPORT listener or the supervisor's
            # inherited pre-fork socket) instead of binding a new one.
            super().__init__(address, handler, bind_and_activate=False)
            placeholder = self.socket
            self.socket = sock
            placeholder.close()
            host, port = sock.getsockname()[:2]
            self.server_address = (host, port)
            self.server_name = host
            self.server_port = port
        self.service = service
        self.request_timeout = service.request_timeout


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-service/1.0"
    protocol_version = "HTTP/1.1"

    # The metrics histograms carry the traffic story; per-request stderr
    # lines would swamp test output.
    def log_message(self, format: str, *args: object) -> None:
        pass

    def setup(self) -> None:
        # Bound every socket read/write: a stalled client must not pin
        # a handler thread forever (StreamRequestHandler applies
        # ``timeout`` to the connection in ``setup``).
        self.timeout = getattr(self.server, "request_timeout", 30.0)
        super().setup()

    def do_GET(self) -> None:
        self._serve("GET")

    def do_POST(self) -> None:
        self._serve("POST")

    def _serve(self, method: str) -> None:
        service = self.server.service  # type: ignore[attr-defined]
        started = time.perf_counter()
        payload: Dict[str, object] = {}
        status = 400
        endpoint = "unmatched"
        body: Dict[str, object]
        try:
            fault_point("http.request")
            length = int(self.headers.get("Content-Length") or 0)
            raw = self.rfile.read(length) if length > 0 else b""
        except (TimeoutError, OSError, FaultInjected):
            # The client stalled or reset mid-body; there is no one
            # left to answer, so drop the connection and account it.
            service.metrics.increment("request_read_failures")
            self.close_connection = True
            return
        try:
            if raw:
                decoded = json.loads(raw)
                if not isinstance(decoded, dict):
                    raise ValueError("request body must be a JSON object")
                payload = decoded
        except ValueError as exc:
            service.metrics.increment("bad_request_bodies")
            body = {"error": f"invalid JSON body: {exc}", "type": "BadRequest"}
        else:
            status, body, endpoint = api.dispatch(
                service, method, self.path, payload
            )
        data = json.dumps(body).encode("utf-8")
        try:
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(data)))
            retry_after = body.get("retry_after")
            if isinstance(retry_after, (int, float)):
                # Lift the body hint into the standard backoff header.
                self.send_header("Retry-After", f"{float(retry_after):g}")
            self.end_headers()
            self.wfile.write(data)
        except (TimeoutError, OSError):
            # The client went away while we answered; nothing to send
            # the error to, so count it and close.
            service.metrics.increment("response_write_failures")
            self.close_connection = True
        service.metrics.observe_latency(
            endpoint, time.perf_counter() - started
        )
        service.metrics.increment("requests_total")
        if status >= 400:
            service.metrics.increment("errors_total")


class ClusteringServer:
    """One service bound to a listening socket, served from a thread."""

    def __init__(
        self,
        service: Optional[ClusteringService] = None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        sock: Optional[socket.socket] = None,
        **service_kwargs: object,
    ) -> None:
        self.service = service or ClusteringService(**service_kwargs)
        self._httpd = _ServiceHTTPServer(
            (host, port), _Handler, self.service, sock=sock
        )
        self._thread: Optional[threading.Thread] = None

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return int(self._httpd.server_address[1])

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ClusteringServer":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                kwargs={"poll_interval": 0.05},
                name="service-http",
                daemon=True,
            )
            self._thread.start()
        return self

    def close(self) -> None:
        if self._thread is not None:
            self._httpd.shutdown()
            self._thread.join(timeout=10.0)
            self._thread = None
        self._httpd.server_close()
        self.service.close()

    def __enter__(self) -> "ClusteringServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close()


# ----------------------------------------------------------------------
# `repro serve` / `anyscan serve`
# ----------------------------------------------------------------------
def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Interactive anytime-clustering server (JSON over HTTP).",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=8421, help="0 picks a free port"
    )
    parser.add_argument(
        "--processes",
        type=int,
        default=1,
        help="server processes; >1 starts a sharded fleet sharing the "
        "graph store zero-copy through named shared-memory segments "
        "(SO_REUSEPORT when available, pre-forked accept otherwise)",
    )
    parser.add_argument(
        "--workers", type=int, default=2, help="scheduler worker threads"
    )
    parser.add_argument(
        "--slice-iterations",
        type=int,
        default=4,
        help="anytime iterations one job runs before yielding the worker",
    )
    parser.add_argument("--cache-capacity", type=int, default=128)
    parser.add_argument(
        "--request-timeout",
        type=float,
        default=30.0,
        help="per-request socket read/write budget in seconds",
    )
    parser.add_argument(
        "--max-pending",
        type=int,
        default=64,
        help="active-job ceiling before `cluster` answers 503 with "
        "Retry-After; 0 disables backpressure",
    )
    parser.add_argument(
        "--fault-plan",
        default=None,
        metavar="PLAN.json",
        help="arm a serialized fault plan at startup (chaos testing)",
    )
    parser.add_argument(
        "--alpha", type=int, default=1024, help="default block size α"
    )
    parser.add_argument(
        "--beta", type=int, default=1024, help="default block size β"
    )
    parser.add_argument(
        "--graph",
        action="append",
        default=None,
        metavar="NAME=PATH",
        help="preload an edge-list file (repeatable)",
    )
    parser.add_argument(
        "--weighted",
        action="store_true",
        help="read the third edge-list column as weight when preloading",
    )
    parser.add_argument(
        "--build-index",
        action="store_true",
        help="build the edge-similarity index for preloaded graphs",
    )
    parser.add_argument(
        "--build-cluster-index",
        action="store_true",
        help="build the GS*-style clustering index for preloaded graphs "
        "(cluster requests then answer from the index: any (ε, μ), "
        "zero σ evaluations)",
    )
    parser.add_argument(
        "--mu-cap",
        type=int,
        default=None,
        help="largest μ with a precomputed core order in the clustering "
        "index (larger μ stays exact via an O(n) pass)",
    )
    parser.add_argument(
        "--data-dir",
        default=None,
        metavar="PATH",
        help="durable mode: journal every accepted mutation to a "
        "write-ahead log under PATH and checkpoint periodically "
        "(graphs, σ indexes, idempotency keys, paused jobs)",
    )
    parser.add_argument(
        "--recover",
        action="store_true",
        help="restore the newest checkpoint under --data-dir and replay "
        "the WAL tail before serving; without it a non-empty data "
        "directory is refused rather than silently rebuilt",
    )
    parser.add_argument(
        "--checkpoint-every",
        type=int,
        default=64,
        help="checkpoint after this many applied mutations (durable "
        "mode); the WAL is compacted back to the oldest retained "
        "checkpoint after each one",
    )
    return parser


def _worker_options(args) -> Dict[str, object]:
    return {
        "workers": args.workers,
        "slice_iterations": args.slice_iterations,
        "cache_capacity": args.cache_capacity,
        "default_alpha": args.alpha,
        "default_beta": args.beta,
        "request_timeout": args.request_timeout,
        "max_pending_jobs": args.max_pending or None,
        "fault_plan": args.fault_plan,
    }


def _parse_graph_specs(specs) -> Optional[List[Tuple[str, str]]]:
    graphs: List[Tuple[str, str]] = []
    for spec in specs or []:
        name, sep, path = spec.partition("=")
        if not sep or not name or not path:
            print(f"--graph expects NAME=PATH, got {spec!r}", file=sys.stderr)
            return None
        graphs.append((name, path))
    return graphs


def serve_main(argv=None) -> int:
    """Entry point behind ``repro serve`` (and ``anyscan serve``)."""
    args = _build_parser().parse_args(argv)
    # Shared-memory hygiene: a SIGTERM'd server must not leak segments.
    from repro.parallel.processes import install_signal_cleanup

    install_signal_cleanup()
    if args.fault_plan:
        from repro.faults import FaultPlan, arm

        with open(args.fault_plan, "r", encoding="utf-8") as handle:
            plan = arm(FaultPlan.from_json(handle.read()))
        print(
            f"fault plan {plan.name or 'unnamed'!r} armed "
            f"({len(plan.rules)} rules) from {args.fault_plan}",
            file=sys.stderr,
        )
    graphs = _parse_graph_specs(args.graph)
    if graphs is None:
        return 2
    if args.processes > 1 and args.data_dir:
        # Durable fleet: the writer runs as its own subprocess so the
        # supervisor can SIGKILL-survive it and promote a shard.
        return _serve_fleet_durable(args, graphs)
    durability = None
    recovered = None
    metrics = None
    if args.data_dir:
        from repro.service.durability import DurabilityManager

        metrics = ServiceMetrics()
        durability = DurabilityManager(
            args.data_dir,
            checkpoint_every=args.checkpoint_every,
            metrics=metrics,
        )
        recovered = durability.recover()
        if not args.recover and (
            recovered.last_seq > 0 or len(recovered.store) > 0
        ):
            print(
                f"data dir {args.data_dir!r} holds existing state "
                f"(WAL seq {recovered.last_seq}, "
                f"{len(recovered.store)} graphs); pass --recover to "
                "restore it",
                file=sys.stderr,
            )
            durability.close()
            return 2
        if args.recover:
            print(
                f"recovered {len(recovered.store)} graph(s) from "
                f"checkpoint seq {recovered.checkpoint_seq} + "
                f"{recovered.replayed_records} replayed WAL record(s); "
                f"{len(recovered.job_blobs)} suspended job(s)",
                file=sys.stderr,
            )
    service = ClusteringService(
        workers=args.workers,
        slice_iterations=args.slice_iterations,
        cache_capacity=args.cache_capacity,
        default_alpha=args.alpha,
        default_beta=args.beta,
        request_timeout=args.request_timeout,
        max_pending_jobs=args.max_pending or None,
        store=recovered.store if recovered is not None else None,
        metrics=metrics,
    )
    if durability is not None and recovered is not None:
        service.seed_update_keys(recovered.update_keys)
        service.import_recovered_jobs(recovered.job_blobs)
        service.store.attach_journal(durability)
        service.durability = durability
        # Graceful SIGTERM: drain and flush a final checkpoint instead
        # of dying mid-request (install_signal_cleanup would re-raise).
        signal.signal(
            signal.SIGTERM,
            lambda signum, frame: service.shutdown_event.set(),
        )
    hosted = set(service.store.names())
    for name, path in graphs:
        if name in hosted:
            # Recovery already rebuilt it; re-adding would double-journal.
            print(
                f"skipping preload of {name!r}: already recovered",
                file=sys.stderr,
            )
            continue
        from repro.graph.io import load_edge_list

        graph, _ = load_edge_list(path, weighted=args.weighted)
        service.store.add(
            name,
            graph,
            build_index=args.build_index,
            build_cluster_index=args.build_cluster_index,
            mu_cap=args.mu_cap if args.mu_cap is not None else DEFAULT_MU_CAP,
        )
        print(
            f"loaded {name}: {graph.num_vertices:,d} vertices, "
            f"{graph.num_edges:,d} edges",
            file=sys.stderr,
        )
    if args.processes > 1:
        from repro.service.fleet import ServiceSupervisor

        supervisor = ServiceSupervisor(
            service,
            host=args.host,
            port=args.port,
            processes=args.processes,
            worker_options=_worker_options(args),
        )
        supervisor.start()
        # The probe socket never accepts; the port only answers once a
        # worker is listening, so gate the banner on registration.
        supervisor.wait_ready()
        print(
            f"serving on {supervisor.url} "
            f"({args.processes} processes, control {supervisor.control_url})",
            flush=True,
        )
        try:
            _wait_for_shutdown(service.shutdown_event)
        finally:
            supervisor.close()
        return 0
    server = ClusteringServer(service, host=args.host, port=args.port)
    server.start()
    print(f"serving on {server.url}", flush=True)
    try:
        _wait_for_shutdown(service.shutdown_event)
    finally:
        server.close()
        if durability is not None:
            # The scheduler is drained; checkpoint whatever jobs stayed
            # paused/pending so `--recover` can revive them.
            durability.checkpoint(service.durability_snapshot())
            durability.close()
    return 0


def _wait_for_shutdown(event) -> None:
    """Block the serve loop until the shutdown event is set."""
    try:
        while not event.wait(timeout=0.2):
            pass
    except KeyboardInterrupt:  # repro: allow[swallow] - ^C is the shutdown signal
        print("interrupted; shutting down", file=sys.stderr)


def _serve_fleet_durable(args, graphs) -> int:
    """`repro serve --processes N --data-dir PATH`: HA fleet mode."""
    from repro.service.fleet import ServiceSupervisor

    supervisor = ServiceSupervisor(
        None,
        host=args.host,
        port=args.port,
        processes=args.processes,
        worker_options=_worker_options(args),
        data_dir=args.data_dir,
        recover=args.recover,
        checkpoint_every=args.checkpoint_every,
        writer_graphs=[
            [
                name,
                path,
                bool(args.weighted),
                bool(args.build_index),
                bool(args.build_cluster_index),
                args.mu_cap,
            ]
            for name, path in graphs
        ],
    )
    supervisor.start()
    supervisor.wait_ready()
    print(
        f"serving on {supervisor.url} "
        f"({args.processes} processes, durable writer, "
        f"control {supervisor.control_url})",
        flush=True,
    )
    # SIGTERM drains the fleet: the writer checkpoints on its own
    # SIGTERM (forwarded by close()) before the segments are retired.
    signal.signal(
        signal.SIGTERM,
        lambda signum, frame: supervisor.shutdown_event.set(),
    )
    try:
        _wait_for_shutdown(supervisor.shutdown_event)
    finally:
        supervisor.close()
    return 0
