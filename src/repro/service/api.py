"""JSON wire protocol: routes, payload helpers, error mapping.

The protocol is deliberately plain — JSON request bodies, JSON response
bodies, HTTP status codes — so any stdlib client can drive it.  One
table (:data:`ROUTES`) defines every endpoint; the HTTP layer
(:mod:`repro.service.server`) and the docs (DESIGN.md §8) are both
generated from it, so they cannot drift apart.

| method | path                      | handler        | purpose                               |
|--------|---------------------------|----------------|---------------------------------------|
| GET    | /healthz                  | health         | liveness + hosted graph/job counts    |
| GET    | /metrics                  | metrics        | counters, gauges, latency histograms  |
| POST   | /graphs                   | load_graph     | host a graph (edges + similarity)     |
| GET    | /graphs                   | list_graphs    | enumerate hosted graphs               |
| GET    | /graphs/{name}            | graph_info     | one graph's fingerprint/size/index    |
| GET    | /graphs/{name}/local-cluster | local_cluster | the seed vertex's exact cluster (§12) |
| POST   | /graphs/{name}/index      | build_index    | build the GS*-style clustering index  |
| POST   | /graphs/{name}/update-edges | update_edges | incremental inserts/deletes (DynamicSCAN) |
| POST   | /cluster                  | cluster        | submit an anytime clustering job      |
| GET    | /jobs                     | list_jobs      | enumerate jobs                        |
| GET    | /jobs/{id}                | job_status     | state/progress of one job             |
| GET    | /jobs/{id}/snapshot       | job_snapshot   | latest anytime snapshot (+labels)     |
| GET    | /jobs/{id}/result         | job_result     | final exact clustering (optional wait)|
| POST   | /jobs/{id}/pause          | pause_job      | suspend after the current slice       |
| POST   | /jobs/{id}/resume         | resume_job     | requeue a paused job                  |
| POST   | /jobs/{id}/cancel         | cancel_job     | terminate a job                       |
| POST   | /jobs/{id}/priority       | set_priority   | reprioritize a live job               |
| POST   | /shutdown                 | shutdown       | stop the server loop                  |
| POST   | /fleet/register           | fleet_register | worker → supervisor announce (fleet)  |
| GET    | /fleet/metrics            | fleet_metrics  | merged fleet-wide /metrics            |
| POST   | /fleet/promote            | fleet_promote  | failover: shard becomes the writer    |

Errors are JSON too: ``{"error": message, "type": exception_class}``
with status 400 for domain errors (:class:`~repro.errors.ReproError`),
404 for unknown routes, 409 for not-yet-available results, and 500 for
unexpected failures.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

import numpy as np

from repro.core.snapshots import Snapshot
from repro.errors import ReproError
from repro.result import Clustering

__all__ = [
    "ROUTES",
    "Route",
    "ServiceError",
    "clustering_payload",
    "dispatch",
    "snapshot_payload",
    "wire_table",
]


class ServiceError(ReproError):
    """A request-level failure carrying its HTTP status.

    ``retry_after`` (seconds) marks the failure as transient — the HTTP
    layer lifts it into a ``Retry-After`` header so well-behaved clients
    back off instead of hammering a saturated scheduler.
    """

    def __init__(
        self,
        message: str,
        *,
        status: int = 400,
        retry_after: Optional[float] = None,
    ) -> None:
        super().__init__(message)
        self.status = int(status)
        self.retry_after = (
            None if retry_after is None else float(retry_after)
        )


class Route:
    """One wire endpoint: method + path pattern + handler name."""

    def __init__(
        self, method: str, pattern: str, handler: str, description: str
    ) -> None:
        self.method = method
        self.pattern = pattern
        self.handler = handler
        self.description = description
        self.regex = re.compile(
            "^"
            + re.sub(r"\{[a-z_]+\}", r"([^/]+)", pattern)
            + "$"
        )


ROUTES: Tuple[Route, ...] = (
    Route("GET", "/healthz", "health", "liveness + hosted counts"),
    Route("GET", "/metrics", "metrics", "counters/gauges/latency"),
    Route("POST", "/graphs", "load_graph", "host a graph"),
    Route("GET", "/graphs", "list_graphs", "enumerate hosted graphs"),
    Route("GET", "/graphs/{name}", "graph_info", "one graph's metadata"),
    Route(
        "GET",
        "/graphs/{name}/local-cluster",
        "local_cluster",
        "seeded local clustering: the seed vertex's exact cluster",
    ),
    Route(
        "POST",
        "/graphs/{name}/index",
        "build_index",
        "build the GS*-style clustering index (any-(ε, μ) queries)",
    ),
    Route(
        "POST",
        "/graphs/{name}/update-edges",
        "update_edges",
        "incremental edge inserts/deletes via DynamicSCAN",
    ),
    Route("POST", "/cluster", "cluster", "submit an anytime job"),
    Route("GET", "/jobs", "list_jobs", "enumerate jobs"),
    Route("GET", "/jobs/{job_id}", "job_status", "one job's progress"),
    Route(
        "GET",
        "/jobs/{job_id}/snapshot",
        "job_snapshot",
        "latest anytime snapshot",
    ),
    Route(
        "GET",
        "/jobs/{job_id}/result",
        "job_result",
        "final exact clustering",
    ),
    Route("POST", "/jobs/{job_id}/pause", "pause_job", "suspend a job"),
    Route("POST", "/jobs/{job_id}/resume", "resume_job", "requeue a job"),
    Route("POST", "/jobs/{job_id}/cancel", "cancel_job", "terminate a job"),
    Route(
        "POST",
        "/jobs/{job_id}/priority",
        "set_priority",
        "reprioritize a job",
    ),
    Route("POST", "/shutdown", "shutdown", "stop the server loop"),
    Route(
        "POST",
        "/fleet/register",
        "fleet_register",
        "worker → supervisor: announce pid/admin URL (control channel)",
    ),
    Route(
        "GET",
        "/fleet/metrics",
        "fleet_metrics",
        "fleet-wide merged /metrics (summed counters, merged histograms)",
    ),
    Route(
        "POST",
        "/fleet/promote",
        "fleet_promote",
        "supervisor → shard: replay the WAL and take over as writer",
    ),
)


def wire_table() -> List[Dict[str, str]]:
    """The protocol as data (docs and clients introspect this)."""
    return [
        {
            "method": route.method,
            "path": route.pattern,
            "handler": route.handler,
            "description": route.description,
        }
        for route in ROUTES
    ]


# ----------------------------------------------------------------------
# payload helpers
# ----------------------------------------------------------------------
def snapshot_payload(
    snap: Snapshot, *, include_labels: bool = True
) -> Dict[str, object]:
    """JSON view of one anytime snapshot."""
    payload: Dict[str, object] = {
        "step": snap.step,
        "iteration": int(snap.iteration),
        "final": bool(snap.final),
        "assigned_fraction": float(snap.assigned_fraction),
        "num_clusters": int(snap.num_clusters),
        "num_supernodes": int(snap.num_supernodes),
        "work_units": float(snap.work_units),
        "sigma_evaluations": int(snap.sigma_evaluations),
    }
    if include_labels:
        payload["labels"] = [int(x) for x in snap.labels]
    return payload


def clustering_payload(
    labels: np.ndarray, *, include_labels: bool = True
) -> Dict[str, object]:
    """JSON view of a final labeling (canonical Clustering semantics)."""
    clustering = Clustering(labels=np.asarray(labels, dtype=np.int64))
    payload: Dict[str, object] = {
        "num_vertices": int(clustering.num_vertices),
        "num_clusters": int(clustering.num_clusters),
        "num_hubs": int(clustering.hubs.shape[0]),
        "num_outliers": int(clustering.outliers.shape[0]),
    }
    if include_labels:
        payload["labels"] = [int(x) for x in clustering.labels]
    return payload


# ----------------------------------------------------------------------
# dispatch
# ----------------------------------------------------------------------
def _match(method: str, path: str) -> Tuple[Optional[Route], Tuple[str, ...]]:
    for route in ROUTES:
        if route.method != method:
            continue
        found = route.regex.match(path)
        if found:
            return route, found.groups()
    return None, ()


def dispatch(
    service: object,
    method: str,
    raw_path: str,
    payload: Optional[Dict[str, object]] = None,
) -> Tuple[int, Dict[str, object], str]:
    """Route one request to ``service.handle_<name>``.

    Returns ``(status, body, endpoint_name)``; the endpoint name labels
    the latency histogram even for failed requests.  Query-string
    parameters are merged into the payload (body keys win) so GET
    endpoints can take options such as ``?wait=5``.
    """
    split = urlsplit(raw_path)
    merged: Dict[str, object] = {
        key: values[-1]
        for key, values in parse_qs(split.query).items()
    }
    merged.update(payload or {})
    route, args = _match(method, split.path)
    if route is None:
        return (
            404,
            {"error": f"no route for {method} {split.path}", "type": "NotFound"},
            "unmatched",
        )
    handler = getattr(service, f"handle_{route.handler}")
    try:
        body = handler(merged, *args)
        return 200, body, route.handler
    except ServiceError as exc:
        body: Dict[str, object] = {
            "error": str(exc),
            "type": type(exc).__name__,
        }
        if exc.retry_after is not None:
            body["retry_after"] = exc.retry_after
        return exc.status, body, route.handler
    except ReproError as exc:
        return (
            400,
            {"error": str(exc), "type": type(exc).__name__},
            route.handler,
        )
    except Exception as exc:  # surface, don't kill the handler thread
        return (
            500,
            {"error": str(exc), "type": type(exc).__name__},
            route.handler,
        )


# ----------------------------------------------------------------------
# payload coercion (wire values arrive as strings from query params)
# ----------------------------------------------------------------------
def get_str(payload: Dict[str, object], key: str) -> str:
    value = payload.get(key)
    if not isinstance(value, str) or not value:
        raise ServiceError(f"field {key!r} must be a non-empty string")
    return value


def get_int(
    payload: Dict[str, object], key: str, default: Optional[int] = None
) -> Optional[int]:
    value = payload.get(key, default)
    if value is None:
        return None
    try:
        return int(value)
    except (TypeError, ValueError):
        raise ServiceError(f"field {key!r} must be an integer") from None


def get_float(
    payload: Dict[str, object], key: str, default: Optional[float] = None
) -> Optional[float]:
    value = payload.get(key, default)
    if value is None:
        return None
    try:
        return float(value)
    except (TypeError, ValueError):
        raise ServiceError(f"field {key!r} must be a number") from None


def get_bool(
    payload: Dict[str, object], key: str, default: bool = False
) -> bool:
    value = payload.get(key, default)
    if isinstance(value, bool):
        return value
    if isinstance(value, str):
        lowered = value.strip().lower()
        if lowered in ("1", "true", "yes", "on"):
            return True
        if lowered in ("0", "false", "no", "off", ""):
            return False
    raise ServiceError(f"field {key!r} must be a boolean")
