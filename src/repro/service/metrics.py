"""Service observability: latency histograms, counters, and gauges.

Everything the ``/metrics`` endpoint reports lives here:

* :class:`LatencyHistogram` — log-spaced bucket histogram with exact
  count/sum/min/max, good for p50/p99 within one bucket's resolution
  (10 buckets per decade, so quantile error is bounded by ~26%
  multiplicative — plenty for dashboards and the bench's latency
  tables) at O(1) memory per endpoint.
* :class:`ServiceMetrics` — a registry of named monotonic counters
  (cache hits, σ evaluations, …), per-endpoint latency histograms, and
  *gauge callbacks* sampled at snapshot time (the job scheduler
  registers its per-state job counts this way, so ``/metrics`` always
  reflects the live queue without the metrics layer holding scheduler
  state).

Concurrency: HTTP handler threads and scheduler workers record
concurrently, so every mutation happens under one internal lock (the
R1 budget of the analysis gate).  Gauge callbacks are invoked *outside*
that lock — they typically take their owner's lock (e.g. the
scheduler's), and nesting foreign locks under ours invites ordering
deadlocks.
"""

from __future__ import annotations

import bisect
import threading
from typing import Callable, Dict, List

from repro.errors import ConfigError

__all__ = [
    "LatencyHistogram",
    "ServiceMetrics",
    "merge_histogram_snapshots",
    "merge_metric_snapshots",
]

# Bucket upper bounds in seconds: 10 per decade from 100µs to 100s; one
# overflow bucket catches anything slower.
_BOUNDS: List[float] = [
    10.0 ** (-4 + k / 10.0) for k in range(0, 61)
]


class LatencyHistogram:
    """Fixed-bucket latency histogram (seconds); not itself locked —
    the owning :class:`ServiceMetrics` serializes access."""

    def __init__(self) -> None:
        self._counts = [0] * (len(_BOUNDS) + 1)
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = 0.0

    def record(self, seconds: float) -> None:
        if seconds < 0:
            raise ConfigError("latency cannot be negative")
        self._counts[bisect.bisect_left(_BOUNDS, seconds)] += 1
        self.count += 1
        self.total += seconds
        self.min = min(self.min, seconds)
        self.max = max(self.max, seconds)

    def percentile(self, p: float) -> float:
        """Upper bound of the bucket holding the p-th percentile sample.

        Clamped to the exact observed ``[min, max]`` so degenerate
        distributions (all samples in one bucket) stay tight.
        """
        if not 0.0 <= p <= 100.0:
            raise ConfigError("percentile must be in [0, 100]")
        if self.count == 0:
            return 0.0
        target = max(1, int(p / 100.0 * self.count + 0.5))
        cumulative = 0
        for idx, count in enumerate(self._counts):
            cumulative += count
            if cumulative >= target:
                upper = _BOUNDS[idx] if idx < len(_BOUNDS) else self.max
                return min(max(upper, self.min), self.max)
        return self.max

    def snapshot(self) -> Dict[str, object]:
        if self.count == 0:
            return {"count": 0}
        return {
            "count": self.count,
            "mean_s": self.total / self.count,
            "min_s": self.min,
            "max_s": self.max,
            "p50_s": self.percentile(50.0),
            "p99_s": self.percentile(99.0),
            # Sparse bucket counts ([index, count] pairs) so snapshots
            # from different processes can be merged exactly — summed
            # buckets re-derive percentiles with no extra error.
            "buckets": [
                [idx, count]
                for idx, count in enumerate(self._counts)
                if count
            ],
        }

    @classmethod
    def from_snapshot(cls, snap: Dict[str, object]) -> "LatencyHistogram":
        """Rebuild a histogram from a :meth:`snapshot` payload."""
        histogram = cls()
        count = int(snap.get("count", 0))
        if count == 0:
            return histogram
        for idx, bucket_count in snap.get("buckets", []):
            histogram._counts[int(idx)] += int(bucket_count)
        histogram.count = count
        histogram.total = float(snap["mean_s"]) * count
        histogram.min = float(snap["min_s"])
        histogram.max = float(snap["max_s"])
        return histogram

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold ``other``'s samples into this histogram, exactly."""
        for idx, count in enumerate(other._counts):
            self._counts[idx] += count
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)


def merge_histogram_snapshots(
    snapshots: List[Dict[str, object]],
) -> Dict[str, object]:
    """Exact cross-process merge of histogram snapshots.

    Counters and bucket counts add; min/max fold; percentiles are
    re-derived from the summed buckets, so the merged p50/p99 carry the
    same (bucket-bounded) error as a single-process histogram — not the
    unbounded error of averaging per-shard percentiles.
    """
    merged = LatencyHistogram()
    for snap in snapshots:
        merged.merge(LatencyHistogram.from_snapshot(snap))
    return merged.snapshot()


#: Structured events kept per kind; old entries roll off.
_EVENT_LIMIT = 64


class ServiceMetrics:
    """Thread-safe counters + per-endpoint latency + gauge callbacks."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self._latency: Dict[str, LatencyHistogram] = {}
        self._gauges: Dict[str, Callable[[], object]] = {}
        self._events: Dict[str, List[Dict[str, object]]] = {}

    # ------------------------------------------------------------------
    # counters
    # ------------------------------------------------------------------
    def increment(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + int(amount)

    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    # ------------------------------------------------------------------
    # latency
    # ------------------------------------------------------------------
    def observe_latency(self, endpoint: str, seconds: float) -> None:
        with self._lock:
            histogram = self._latency.get(endpoint)
            if histogram is None:
                histogram = self._latency[endpoint] = LatencyHistogram()
            histogram.record(seconds)

    # ------------------------------------------------------------------
    # structured events
    # ------------------------------------------------------------------
    def record_event(self, kind: str, data: Dict[str, object]) -> None:
        """Append one structured event (e.g. a backend degradation).

        Events are the failure-model audit trail (DESIGN.md §9): each
        ``kind`` keeps its last ``_EVENT_LIMIT`` entries, reported
        verbatim by :meth:`snapshot` under ``"events"``.
        """
        with self._lock:
            entries = self._events.setdefault(kind, [])
            entries.append(dict(data))
            del entries[:-_EVENT_LIMIT]

    def events(self, kind: str) -> List[Dict[str, object]]:
        with self._lock:
            return [dict(entry) for entry in self._events.get(kind, [])]

    # ------------------------------------------------------------------
    # gauges
    # ------------------------------------------------------------------
    def register_gauge(self, name: str, fn: Callable[[], object]) -> None:
        """Register a callable sampled on every :meth:`snapshot`.

        The callable runs outside the metrics lock and must return a
        JSON-serializable value.
        """
        with self._lock:
            self._gauges[name] = fn

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """One JSON-ready view of every counter/histogram/gauge."""
        with self._lock:
            gauges = dict(self._gauges)
        sampled = {name: fn() for name, fn in gauges.items()}
        with self._lock:
            return {
                "counters": dict(self._counters),
                "latency": {
                    endpoint: histogram.snapshot()
                    for endpoint, histogram in self._latency.items()
                },
                "gauges": sampled,
                "events": {
                    kind: [dict(entry) for entry in entries]
                    for kind, entries in self._events.items()
                },
            }


def merge_metric_snapshots(
    snapshots: List[Dict[str, object]],
) -> Dict[str, object]:
    """Fleet-wide ``/metrics`` view from per-process snapshots.

    Counters sum; per-endpoint latency histograms merge exactly through
    their bucket counts; gauges and events are *not* summed (a queue
    depth summed across shards is meaningless) — each input snapshot's
    gauges/events instead appear verbatim under ``"shards"``, in input
    order, so per-shard ``process_id``/``epoch`` gauges stay visible.
    """
    counters: Dict[str, int] = {}
    latency: Dict[str, List[Dict[str, object]]] = {}
    shards: List[Dict[str, object]] = []
    for snap in snapshots:
        for name, value in snap.get("counters", {}).items():
            counters[name] = counters.get(name, 0) + int(value)
        for endpoint, histogram in snap.get("latency", {}).items():
            latency.setdefault(endpoint, []).append(histogram)
        shards.append(
            {
                "gauges": snap.get("gauges", {}),
                "events": snap.get("events", {}),
            }
        )
    return {
        "counters": counters,
        "latency": {
            endpoint: merge_histogram_snapshots(histograms)
            for endpoint, histograms in latency.items()
        },
        "shards": shards,
    }
