"""Graph/index registry and the (fingerprint, config, ε, μ) result cache.

The serving layer's data plane:

* :class:`GraphStore` hosts named graphs together with their similarity
  semantics and (optionally) an :class:`~repro.similarity.index.EdgeSimilarityIndex`,
  so repeat clustering queries at new (ε, μ) settings are answered from
  stored σ values with zero σ evaluations.
* ``update-edges`` requests are routed through
  :class:`~repro.dynamic.scan.DynamicSCAN` on a lazily-built mutable
  mirror: each update repairs only the O(deg(u)+deg(v)) affected σ
  entries, the CSR snapshot and fingerprint are refreshed, and the old
  fingerprint is returned so the caller can invalidate exactly the
  cache entries that answered for the pre-update graph.
* :class:`ResultCache` is an LRU over :class:`CacheKey` — the full
  identity of a clustering query: exact graph content (fingerprint),
  the σ-semantics fields of the similarity config, μ and ε.  Anything
  that changes the answer changes the key; anything that does not
  (e.g. ``pruning``, a pure scheduling knob) is excluded.

Both classes are safe to share across HTTP handler threads and
scheduler workers: every mutation happens under an internal lock.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.dynamic.graph import AdjacencyGraph
from repro.dynamic.scan import DynamicSCAN
from repro.errors import ConfigError
from repro.graph.csr import Graph
from repro.similarity.index import (
    EdgeSimilarityIndex,
    IndexedOracle,
    graph_fingerprint,
)
from repro.similarity.weighted import SimilarityConfig, SimilarityOracle
from repro.validation import check_eps_mu

__all__ = [
    "CacheKey",
    "CachedResult",
    "GraphEntry",
    "GraphStore",
    "ResultCache",
    "make_cache_key",
    "similarity_signature",
]

#: Config fields that change σ values (mirrors the index's semantic
#: compatibility check); ``pruning`` never changes results, only work.
_SEMANTIC_FIELDS = ("kind", "closed", "self_weight", "count_self")


def similarity_signature(config: SimilarityConfig) -> Tuple[object, ...]:
    """Hashable tuple of the σ-semantic fields of a similarity config."""
    return tuple(getattr(config, name) for name in _SEMANTIC_FIELDS)


@dataclass(frozen=True)
class CacheKey:
    """Full identity of a clustering query (cache-key semantics §8)."""

    fingerprint: str
    similarity: Tuple[object, ...]
    mu: int
    epsilon: float


def make_cache_key(
    fingerprint: str, config: SimilarityConfig, mu: int, epsilon: float
) -> CacheKey:
    """Build the cache key for one (graph, semantics, μ, ε) query."""
    check_eps_mu(mu=mu, epsilon=epsilon)
    return CacheKey(
        fingerprint=fingerprint,
        similarity=similarity_signature(config),
        mu=int(mu),
        epsilon=float(epsilon),
    )


@dataclass
class CachedResult:
    """A completed clustering plus the cost it took to produce."""

    labels: np.ndarray
    num_clusters: int
    sigma_evaluations: int
    compute_seconds: float
    hits: int = 0


class ResultCache:
    """LRU cache over :class:`CacheKey`; eviction at ``capacity``."""

    def __init__(self, capacity: int = 128) -> None:
        if capacity < 1:
            raise ConfigError("cache capacity must be >= 1")
        self.capacity = int(capacity)
        self._lock = threading.Lock()
        self._entries: "OrderedDict[CacheKey, CachedResult]" = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._invalidations = 0

    def get(self, key: CacheKey) -> Optional[CachedResult]:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            entry.hits += 1
            self._hits += 1
            return entry

    def put(self, key: CacheKey, value: CachedResult) -> None:
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._evictions += 1

    def invalidate_fingerprint(self, fingerprint: str) -> int:
        """Drop every entry answering for ``fingerprint``; returns count."""
        with self._lock:
            stale = [
                key
                for key in self._entries
                if key.fingerprint == fingerprint
            ]
            for key in stale:
                del self._entries[key]
            self._invalidations += len(stale)
            return len(stale)

    def keys(self) -> List[CacheKey]:
        with self._lock:
            return list(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "size": len(self._entries),
                "capacity": self.capacity,
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "invalidations": self._invalidations,
            }


@dataclass
class GraphEntry:
    """One hosted graph: CSR snapshot + semantics + optional σ index."""

    name: str
    graph: Graph
    similarity: SimilarityConfig
    fingerprint: str
    index: Optional[EdgeSimilarityIndex] = None
    auto_index: bool = False
    updates_applied: int = 0
    # Mutable mirror backing update-edges; built on the first update.
    dynamic: Optional[DynamicSCAN] = field(default=None, repr=False)

    def info(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "num_vertices": int(self.graph.num_vertices),
            "num_edges": int(self.graph.num_edges),
            "fingerprint": self.fingerprint,
            "indexed": self.index is not None,
            "auto_index": self.auto_index,
            "updates_applied": self.updates_applied,
            "similarity": {
                name: getattr(self.similarity, name)
                for name in _SEMANTIC_FIELDS
            },
        }


@dataclass(frozen=True)
class UpdateStats:
    """Outcome of one update-edges request."""

    old_fingerprint: str
    new_fingerprint: str
    vertices_added: int
    inserted: int
    deleted: int
    sigma_recomputations: int


class GraphStore:
    """Named-graph registry shared by every service endpoint."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._entries: Dict[str, GraphEntry] = {}

    # ------------------------------------------------------------------
    # registry
    # ------------------------------------------------------------------
    def add(
        self,
        name: str,
        graph: Graph,
        *,
        similarity: SimilarityConfig | None = None,
        build_index: bool = False,
        replace: bool = False,
    ) -> GraphEntry:
        """Host ``graph`` under ``name``; optionally build its σ index."""
        if not name:
            raise ConfigError("graph name must be non-empty")
        similarity = similarity or SimilarityConfig()
        similarity.validate()
        index = (
            EdgeSimilarityIndex.build(graph, similarity)
            if build_index
            else None
        )
        entry = GraphEntry(
            name=name,
            graph=graph,
            similarity=similarity,
            fingerprint=graph_fingerprint(graph),
            index=index,
            auto_index=build_index,
        )
        with self._lock:
            if name in self._entries and not replace:
                raise ConfigError(
                    f"graph {name!r} is already loaded; pass replace=true "
                    "to overwrite it"
                )
            self._entries[name] = entry
        return entry

    def get(self, name: str) -> GraphEntry:
        with self._lock:
            entry = self._entries.get(name)
        if entry is None:
            raise ConfigError(f"unknown graph {name!r}")
        return entry

    def remove(self, name: str) -> str:
        """Unload a graph; returns its fingerprint (for invalidation)."""
        with self._lock:
            entry = self._entries.pop(name, None)
        if entry is None:
            raise ConfigError(f"unknown graph {name!r}")
        return entry.fingerprint

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._entries)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # ------------------------------------------------------------------
    # query plumbing
    # ------------------------------------------------------------------
    def oracle_for(self, entry: GraphEntry) -> SimilarityOracle:
        """A fresh per-job oracle: indexed when σ is materialized.

        Per-job (rather than shared) because the oracle's counters are
        the per-query cost accounting the service reports.
        """
        if entry.index is not None:
            return IndexedOracle(entry.index, config=entry.similarity)
        return SimilarityOracle(entry.graph, entry.similarity)

    def fill_cache_if_current(
        self,
        cache: ResultCache,
        name: str,
        fingerprint: str,
        key: CacheKey,
        value: CachedResult,
    ) -> bool:
        """Insert ``value`` only if ``name`` still answers for ``fingerprint``.

        A clustering job can outlive its graph: by the time the job
        completes, the graph may have been unloaded, replaced, or
        mutated by update-edges.  Filling the cache then would plant an
        entry that ``invalidate_fingerprint`` already purged (or never
        saw), so a revert-to-the-old-graph sequence could read a result
        whose provenance is gone.  The check and the put happen under
        the store lock, so no remove/replace/update can interleave.
        """
        with self._lock:
            entry = self._entries.get(name)
            if entry is None or entry.fingerprint != fingerprint:
                return False
            cache.put(key, value)
            return True

    def ensure_index(self, name: str) -> GraphEntry:
        """(Re)build the σ index for ``name`` if it is missing."""
        entry = self.get(name)
        if entry.index is not None:
            return entry
        index = EdgeSimilarityIndex.build(entry.graph, entry.similarity)
        with self._lock:
            current = self._entries.get(name)
            # Only install if the graph didn't change under us.
            if (
                current is entry
                and current.fingerprint == index.fingerprint
            ):
                current.index = index
        return entry

    # ------------------------------------------------------------------
    # dynamic updates (routed through DynamicSCAN)
    # ------------------------------------------------------------------
    def update_edges(
        self,
        name: str,
        *,
        insert: Sequence[Sequence[float]] = (),
        delete: Sequence[Sequence[int]] = (),
        add_vertices: int = 0,
    ) -> UpdateStats:
        """Apply an edge-update batch and refresh the CSR snapshot.

        Updates go through the entry's persistent
        :class:`~repro.dynamic.scan.DynamicSCAN`, so the per-edge σ
        cache is repaired incrementally rather than recomputed.  The σ
        index (if any) answers for the *old* graph and is dropped;
        ``auto_index`` entries rebuild it lazily on the next query.
        """
        if add_vertices < 0:
            raise ConfigError("add_vertices must be non-negative")
        with self._lock:
            entry = self._entries.get(name)
            if entry is None:
                raise ConfigError(f"unknown graph {name!r}")
            if entry.dynamic is None:
                # μ/ε are irrelevant for updates (only for DynamicSCAN's
                # own clustering reads); any valid pair works here.
                entry.dynamic = DynamicSCAN(
                    AdjacencyGraph.from_csr(entry.graph),
                    mu=2,
                    epsilon=0.5,
                    similarity=entry.similarity,
                )
            dynamic = entry.dynamic
            before_recomputations = dynamic.sigma_recomputations
            old_fingerprint = entry.fingerprint
            inserted = deleted = 0
            try:
                for _ in range(add_vertices):
                    dynamic.add_vertex()
                for spec in insert:
                    if len(spec) == 2:
                        dynamic.add_edge(int(spec[0]), int(spec[1]))
                    elif len(spec) == 3:
                        dynamic.add_edge(
                            int(spec[0]), int(spec[1]), float(spec[2])
                        )
                    else:
                        raise ConfigError(
                            "insert entries must be [u, v] or "
                            "[u, v, weight]"
                        )
                    inserted += 1
                for spec in delete:
                    if len(spec) != 2:
                        raise ConfigError("delete entries must be [u, v]")
                    dynamic.remove_edge(int(spec[0]), int(spec[1]))
                    deleted += 1
            finally:
                # A mid-batch failure leaves the mirror partially
                # mutated; the CSR snapshot must follow it either way.
                if inserted or deleted or add_vertices:
                    entry.graph = dynamic.graph.to_csr()
                    entry.fingerprint = graph_fingerprint(entry.graph)
                    entry.index = None
                    entry.updates_applied += 1
            return UpdateStats(
                old_fingerprint=old_fingerprint,
                new_fingerprint=entry.fingerprint,
                vertices_added=int(add_vertices),
                inserted=inserted,
                deleted=deleted,
                sigma_recomputations=(
                    dynamic.sigma_recomputations - before_recomputations
                ),
            )

    def infos(self) -> List[Dict[str, object]]:
        with self._lock:
            entries = list(self._entries.values())
        return [entry.info() for entry in entries]
