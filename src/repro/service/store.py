"""Graph/index registry and the (fingerprint, config, ε, μ) result cache.

The serving layer's data plane:

* :class:`GraphStore` hosts named graphs together with their similarity
  semantics and (optionally) an :class:`~repro.similarity.index.EdgeSimilarityIndex`,
  so repeat clustering queries at new (ε, μ) settings are answered from
  stored σ values with zero σ evaluations.
* ``update-edges`` requests are routed through
  :class:`~repro.dynamic.scan.DynamicSCAN` on a lazily-built mutable
  mirror: each update repairs only the O(deg(u)+deg(v)) affected σ
  entries, the CSR snapshot and fingerprint are refreshed, and the old
  fingerprint is returned so the caller can invalidate exactly the
  cache entries that answered for the pre-update graph.
* :class:`ResultCache` is an LRU over :class:`CacheKey` — the full
  identity of a clustering query: exact graph content (fingerprint),
  the σ-semantics fields of the similarity config, μ and ε.  Anything
  that changes the answer changes the key; anything that does not
  (e.g. ``pruning``, a pure scheduling knob) is excluded.

Both classes are safe to share across HTTP handler threads and
scheduler workers: every mutation happens under an internal lock.
"""

from __future__ import annotations

import dataclasses
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.dynamic.graph import AdjacencyGraph
from repro.dynamic.scan import DynamicSCAN
from repro.errors import ConfigError
from repro.faults import fault_point
from repro.graph.csr import Graph
from repro.similarity.gsindex import DEFAULT_MU_CAP, ClusteringIndex
from repro.similarity.index import (
    EdgeSimilarityIndex,
    IndexedOracle,
    graph_fingerprint,
)
from repro.similarity.weighted import SimilarityConfig, SimilarityOracle
from repro.validation import check_eps_mu

__all__ = [
    "CacheKey",
    "CachedResult",
    "CachedLocalResult",
    "GraphEntry",
    "GraphStore",
    "ResultCache",
    "make_cache_key",
    "make_local_cache_key",
    "similarity_signature",
]

#: Config fields that change σ values (mirrors the index's semantic
#: compatibility check); ``pruning`` never changes results, only work.
_SEMANTIC_FIELDS = ("kind", "closed", "self_weight", "count_self")

#: Journal records round-trip the *whole* config (``pruning`` included)
#: so a recovered entry is indistinguishable from the original — must
#: match ``repro.service.durability._SIMILARITY_FIELDS``.
_JOURNAL_SIMILARITY_FIELDS = _SEMANTIC_FIELDS + ("pruning",)


def similarity_signature(config: SimilarityConfig) -> Tuple[object, ...]:
    """Hashable tuple of the σ-semantic fields of a similarity config."""
    return tuple(getattr(config, name) for name in _SEMANTIC_FIELDS)


def _collect_affected(
    affected: set, mirror: AdjacencyGraph, u: int, v: int
) -> None:
    """Record the σ rows an edge op on (u, v) can change.

    A row x changes when x's own neighborhood changes (x ∈ {u, v}) or
    when an entry σ(x, u)/σ(x, v) of it does (x adjacent to u or v).
    Out-of-range endpoints are skipped — the op itself raises the
    proper error; this collector must not pre-empt it.
    """
    n = mirror.num_vertices
    for x in (u, v):
        if 0 <= x < n:
            affected.add(x)
            affected.update(mirror.neighbors(x))


@dataclass(frozen=True)
class CacheKey:
    """Full identity of a clustering query (cache-key semantics §8).

    Global clusterings leave ``seed``/``order_seed`` at their defaults;
    a seeded local query adds the query vertex and the reference visit
    order it replays, giving per-user results their own keyspace rows
    in the same LRU.
    """

    fingerprint: str
    similarity: Tuple[object, ...]
    mu: int
    epsilon: float
    seed: Optional[int] = None
    order_seed: int = 0


def make_cache_key(
    fingerprint: str, config: SimilarityConfig, mu: int, epsilon: float
) -> CacheKey:
    """Build the cache key for one (graph, semantics, μ, ε) query."""
    check_eps_mu(mu=mu, epsilon=epsilon)
    return CacheKey(
        fingerprint=fingerprint,
        similarity=similarity_signature(config),
        mu=int(mu),
        epsilon=float(epsilon),
    )


def make_local_cache_key(
    fingerprint: str,
    config: SimilarityConfig,
    mu: int,
    epsilon: float,
    seed: int,
    order_seed: int = 0,
) -> CacheKey:
    """Cache key for one seeded local query (§12 keyspace)."""
    check_eps_mu(mu=mu, epsilon=epsilon)
    return CacheKey(
        fingerprint=fingerprint,
        similarity=similarity_signature(config),
        mu=int(mu),
        epsilon=float(epsilon),
        seed=int(seed),
        order_seed=int(order_seed),
    )


@dataclass
class CachedResult:
    """A completed clustering plus the cost it took to produce."""

    labels: np.ndarray
    num_clusters: int
    sigma_evaluations: int
    compute_seconds: float
    hits: int = 0


@dataclass
class CachedLocalResult:
    """A completed seeded local query plus its read set.

    ``touched`` is the set of vertices whose σ row or adjacency the
    query inspected.  An edge update whose affected-vertex set is
    disjoint from it cannot change the answer, so the entry survives
    the update (re-keyed to the new fingerprint) instead of being
    evicted — see :meth:`ResultCache.migrate_local`.
    """

    payload: Dict[str, object]
    touched: frozenset
    sigma_evaluations: int
    compute_seconds: float
    hits: int = 0


class ResultCache:
    """LRU cache over :class:`CacheKey`; eviction at ``capacity``."""

    def __init__(self, capacity: int = 128) -> None:
        if capacity < 1:
            raise ConfigError("cache capacity must be >= 1")
        self.capacity = int(capacity)
        self._lock = threading.Lock()
        self._entries: "OrderedDict[CacheKey, CachedResult]" = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._invalidations = 0

    def get(self, key: CacheKey) -> Optional[CachedResult]:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            entry.hits += 1
            self._hits += 1
            return entry

    def put(self, key: CacheKey, value: CachedResult) -> None:
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._evictions += 1

    def invalidate_fingerprint(self, fingerprint: str) -> int:
        """Drop every entry answering for ``fingerprint``; returns count."""
        with self._lock:
            stale = [
                key
                for key in self._entries
                if key.fingerprint == fingerprint
            ]
            for key in stale:
                del self._entries[key]
            self._invalidations += len(stale)
            return len(stale)

    def migrate_local(
        self,
        old_fingerprint: str,
        new_fingerprint: str,
        affected: Sequence[int],
        *,
        renumbered: bool = False,
    ) -> Dict[str, int]:
        """Carry local-query entries across an edge update, exactly.

        A cached :class:`CachedLocalResult` is a pure function of its
        read set (the σ rows and adjacency it touched) plus the visit
        permutation.  An update that is disjoint from the read set and
        does not change the vertex count (``renumbered`` — a different
        n means a different permutation) therefore cannot change the
        answer: the entry is re-keyed to the post-update fingerprint.
        Entries whose cluster was actually touched are evicted.  Global
        entries for ``old_fingerprint`` are untouched — follow with
        :meth:`invalidate_fingerprint`.
        """
        affected_set = set(int(v) for v in affected)
        moved = evicted = 0
        with self._lock:
            local_keys = [
                key
                for key in self._entries
                if key.fingerprint == old_fingerprint
                and key.seed is not None
            ]
            for key in local_keys:
                entry = self._entries.pop(key)
                touched = getattr(entry, "touched", None)
                if (
                    renumbered
                    or touched is None
                    or not affected_set.isdisjoint(touched)
                ):
                    evicted += 1
                    continue
                new_key = CacheKey(
                    fingerprint=new_fingerprint,
                    similarity=key.similarity,
                    mu=key.mu,
                    epsilon=key.epsilon,
                    seed=key.seed,
                    order_seed=key.order_seed,
                )
                self._entries[new_key] = entry
                moved += 1
            self._invalidations += evicted
        return {"moved": moved, "evicted": evicted}

    def keys(self) -> List[CacheKey]:
        with self._lock:
            return list(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "size": len(self._entries),
                "capacity": self.capacity,
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "invalidations": self._invalidations,
            }


@dataclass
class GraphEntry:
    """One hosted graph: CSR snapshot + semantics + optional indexes.

    ``index`` (per-edge σ) accelerates scheduled anySCAN jobs;
    ``cluster_index`` (GS*-style) answers whole (ε, μ) queries directly
    and is the default query path when present.  The two share the σ
    array (``cluster_index.edge`` *is* an edge index), so building the
    clustering index implies the edge index at no extra σ cost.
    """

    name: str
    graph: Graph
    similarity: SimilarityConfig
    fingerprint: str
    index: Optional[EdgeSimilarityIndex] = None
    auto_index: bool = False
    cluster_index: Optional[ClusteringIndex] = field(
        default=None, repr=False
    )
    auto_cluster_index: bool = False
    mu_cap: int = DEFAULT_MU_CAP
    updates_applied: int = 0
    #: σ-row refreshes the clustering index absorbed in-place (as
    #: opposed to full rebuilds) across update-edges batches.
    index_rows_refreshed: int = 0
    #: Shared-memory publication epoch (0 = never published).  Bumped
    #: by the store's publisher on every mutation that republishes the
    #: entry; attached readers compare epochs to revalidate.
    epoch: int = 0
    # Mutable mirror backing update-edges; built on the first update.
    dynamic: Optional[DynamicSCAN] = field(default=None, repr=False)

    def info(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "num_vertices": int(self.graph.num_vertices),
            "num_edges": int(self.graph.num_edges),
            "fingerprint": self.fingerprint,
            "epoch": int(self.epoch),
            "indexed": self.index is not None,
            "auto_index": self.auto_index,
            "cluster_indexed": self.cluster_index is not None,
            "auto_cluster_index": self.auto_cluster_index,
            "mu_cap": int(self.mu_cap),
            "updates_applied": self.updates_applied,
            "index_rows_refreshed": self.index_rows_refreshed,
            "similarity": {
                name: getattr(self.similarity, name)
                for name in _SEMANTIC_FIELDS
            },
        }


@dataclass(frozen=True)
class UpdateStats:
    """Outcome of one update-edges request.

    ``index_rows_refreshed`` counts the σ rows the clustering index
    recomputed in place (0 when no clustering index was present, or
    when it had to be dropped instead of patched).
    """

    old_fingerprint: str
    new_fingerprint: str
    vertices_added: int
    inserted: int
    deleted: int
    sigma_recomputations: int
    index_rows_refreshed: int = 0
    #: σ rows the batch could have changed (endpoints plus everything
    #: adjacent to them, pre- and post-op).  Local-query cache entries
    #: whose read set is disjoint from this survive the update
    #: (:meth:`ResultCache.migrate_local`).
    affected_vertices: Tuple[int, ...] = ()


class GraphStore:
    """Named-graph registry shared by every service endpoint.

    ``metrics`` (any object with ``record_event(kind, data)``, e.g.
    :class:`~repro.service.metrics.ServiceMetrics`) receives the audit
    trail for degraded-mode decisions such as a dropped clustering
    index; ``None`` keeps the store usable standalone.
    """

    def __init__(self, metrics=None) -> None:
        self._lock = threading.Lock()
        self._entries: Dict[str, GraphEntry] = {}
        self.metrics = metrics
        # Optional shared-memory mirror (repro.service.shm.StorePublisher):
        # when attached, every mutation republishes the affected entry so
        # attached reader processes revalidate by epoch, never serve stale.
        self._publisher = None
        # Optional write-ahead journal (repro.service.durability.
        # DurabilityManager): when attached, every mutation is logged —
        # and fsynced — before it is applied, under the store lock, so
        # WAL order equals apply order exactly.
        self._journal = None

    # ------------------------------------------------------------------
    # shared-memory publication (single-writer side of DESIGN.md §11)
    # ------------------------------------------------------------------
    def attach_publisher(self, publisher) -> None:
        """Mirror current entries — and every future mutation — into
        ``publisher`` (duck-typed: ``publish_entry``/``remove_entry``).

        Publish failures propagate: a mutation that cannot reach the
        shared manifest must fail loudly rather than let attached
        readers drift behind the writer's private state.
        """
        with self._lock:
            self._publisher = publisher
            for entry in self._entries.values():
                self._publish_locked(entry)

    def _publish_locked(self, entry: GraphEntry) -> None:
        if self._publisher is not None:
            entry.epoch = self._publisher.publish_entry(entry)

    def republish(self, name: str) -> None:
        """Re-export one entry's current state (e.g. a metadata flag
        flip) to attached readers; no-op without a publisher."""
        with self._lock:
            entry = self._entries.get(name)
            if entry is not None:
                self._publish_locked(entry)

    # ------------------------------------------------------------------
    # durability (write-ahead journal, DESIGN.md §13)
    # ------------------------------------------------------------------
    def attach_journal(self, journal) -> None:
        """Log every future mutation to ``journal`` before applying it.

        ``journal`` is duck-typed — ``log_mutation(record) -> int`` plus
        a ``last_seq`` property; in practice a
        :class:`~repro.service.durability.DurabilityManager`.  A journal
        failure on a primary mutation (add/remove/update) aborts the
        mutation before any state changes; derived-data events (index
        builds) degrade to a witnessed skip instead, because an index is
        a deterministic function of the graph and recovery can simply
        not have it.
        """
        with self._lock:
            self._journal = journal

    def _journal_locked(self, record: Dict[str, object]) -> None:
        if self._journal is not None:
            self._journal.log_mutation(record)

    def _journal_best_effort(self, record: Dict[str, object]) -> None:
        try:
            self._journal_locked(record)
        except Exception as exc:
            # Derived-data event only: losing it cannot change any
            # recovered answer, so keep serving and witness the gap.
            if self.metrics is not None:
                self.metrics.record_event(
                    "journal_record_skipped",
                    {
                        "op": record.get("op"),
                        "error": f"{type(exc).__name__}: {exc}",
                    },
                )

    @staticmethod
    def _similarity_record(config: SimilarityConfig) -> Dict[str, object]:
        return {
            name: getattr(config, name)
            for name in _JOURNAL_SIMILARITY_FIELDS
        }

    def checkpoint_snapshot(self) -> Tuple[List[GraphEntry], int]:
        """A coherent ``(entries, wal_seq)`` pair for checkpointing.

        Taken under the store lock: because journaled mutations append
        *and* apply while holding it, every record up to the returned
        sequence number is reflected in the copied entries and no later
        one is.  The copies share the immutable CSR/index objects (the
        update path replaces them, never mutates) and drop the mutable
        :class:`~repro.dynamic.scan.DynamicSCAN` mirror.
        """
        with self._lock:
            entries = [
                dataclasses.replace(entry, dynamic=None)
                for entry in self._entries.values()
            ]
            seq = (
                self._journal.last_seq if self._journal is not None else 0
            )
        return entries, seq

    def adopt_entry(
        self, entry: GraphEntry, *, replace: bool = True
    ) -> GraphEntry:
        """Install a pre-built entry verbatim (recovery/promotion path).

        No journaling (the entry's history is already in the log or a
        checkpoint) and no index building; publishes to attached
        readers when a publisher is present.
        """
        with self._lock:
            if entry.name in self._entries and not replace:
                raise ConfigError(
                    f"graph {entry.name!r} is already loaded"
                )
            self._entries[entry.name] = entry
            self._publish_locked(entry)
        return entry

    # ------------------------------------------------------------------
    # registry
    # ------------------------------------------------------------------
    def add(
        self,
        name: str,
        graph: Graph,
        *,
        similarity: SimilarityConfig | None = None,
        build_index: bool = False,
        build_cluster_index: bool = False,
        mu_cap: int = DEFAULT_MU_CAP,
        replace: bool = False,
    ) -> GraphEntry:
        """Host ``graph`` under ``name``; optionally build its indexes.

        ``build_cluster_index`` implies the edge index: the clustering
        index wraps one, and its σ array serves both paths.
        """
        if not name:
            raise ConfigError("graph name must be non-empty")
        similarity = similarity or SimilarityConfig()
        similarity.validate()
        cluster_index = (
            ClusteringIndex.build(graph, similarity, mu_cap=mu_cap)
            if build_cluster_index
            else None
        )
        if cluster_index is not None:
            index: Optional[EdgeSimilarityIndex] = cluster_index.edge
        elif build_index:
            index = EdgeSimilarityIndex.build(graph, similarity)
        else:
            index = None
        entry = GraphEntry(
            name=name,
            graph=graph,
            similarity=similarity,
            fingerprint=graph_fingerprint(graph),
            index=index,
            auto_index=build_index or build_cluster_index,
            cluster_index=cluster_index,
            auto_cluster_index=build_cluster_index,
            mu_cap=int(mu_cap),
        )
        record = None
        if self._journal is not None:
            # The edge list (CSR order, u < v) rebuilds through
            # GraphBuilder into bitwise-identical arrays, so replaying
            # this record reproduces the exact fingerprint.
            record = {
                "op": "add_graph",
                "name": name,
                "n": int(graph.num_vertices),
                "edges": [
                    [int(u), int(v), float(w)] for u, v, w in graph.edges()
                ],
                "similarity": self._similarity_record(similarity),
                "build_index": bool(build_index),
                "build_cluster_index": bool(build_cluster_index),
                "mu_cap": int(mu_cap),
                "replace": bool(replace),
            }
        with self._lock:
            if name in self._entries and not replace:
                raise ConfigError(
                    f"graph {name!r} is already loaded; pass replace=true "
                    "to overwrite it"
                )
            if record is not None:
                self._journal_locked(record)
            self._entries[name] = entry
            self._publish_locked(entry)
        return entry

    def get(self, name: str) -> GraphEntry:
        with self._lock:
            entry = self._entries.get(name)
        if entry is None:
            raise ConfigError(f"unknown graph {name!r}")
        return entry

    def remove(self, name: str) -> str:
        """Unload a graph; returns its fingerprint (for invalidation)."""
        with self._lock:
            if name not in self._entries:
                raise ConfigError(f"unknown graph {name!r}")
            self._journal_locked({"op": "remove_graph", "name": name})
            entry = self._entries.pop(name)
            if self._publisher is not None:
                self._publisher.remove_entry(name)
        return entry.fingerprint

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._entries)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # ------------------------------------------------------------------
    # query plumbing
    # ------------------------------------------------------------------
    def oracle_for(self, entry: GraphEntry) -> SimilarityOracle:
        """A fresh per-job oracle: indexed when σ is materialized.

        Per-job (rather than shared) because the oracle's counters are
        the per-query cost accounting the service reports.
        """
        if entry.index is not None:
            return IndexedOracle(entry.index, config=entry.similarity)
        return SimilarityOracle(entry.graph, entry.similarity)

    def fill_cache_if_current(
        self,
        cache: ResultCache,
        name: str,
        fingerprint: str,
        key: CacheKey,
        value: CachedResult,
    ) -> bool:
        """Insert ``value`` only if ``name`` still answers for ``fingerprint``.

        A clustering job can outlive its graph: by the time the job
        completes, the graph may have been unloaded, replaced, or
        mutated by update-edges.  Filling the cache then would plant an
        entry that ``invalidate_fingerprint`` already purged (or never
        saw), so a revert-to-the-old-graph sequence could read a result
        whose provenance is gone.  The check and the put happen under
        the store lock, so no remove/replace/update can interleave.
        """
        with self._lock:
            entry = self._entries.get(name)
            if entry is None or entry.fingerprint != fingerprint:
                return False
            cache.put(key, value)
            return True

    def ensure_index(self, name: str) -> GraphEntry:
        """(Re)build the σ index for ``name`` if it is missing."""
        entry = self.get(name)
        if entry.index is not None:
            return entry
        index = EdgeSimilarityIndex.build(entry.graph, entry.similarity)
        with self._lock:
            current = self._entries.get(name)
            # Only install if the graph didn't change under us.
            if (
                current is entry
                and current.fingerprint == index.fingerprint
            ):
                self._journal_best_effort(
                    {"op": "build_index", "name": name}
                )
                current.index = index
                self._publish_locked(current)
        return entry

    def ensure_cluster_index(
        self, name: str, *, mu_cap: int | None = None
    ) -> GraphEntry:
        """(Re)build the clustering index for ``name`` if it is missing.

        Also installs the wrapped edge index (same σ array) so the
        anySCAN fallback path benefits too.  Like :meth:`ensure_index`,
        the build happens outside the store lock and is only installed
        when the graph has not changed underneath it.
        """
        entry = self.get(name)
        cap = int(mu_cap) if mu_cap is not None else entry.mu_cap
        if (
            entry.cluster_index is not None
            and entry.cluster_index.mu_cap >= cap
        ):
            return entry
        cluster_index = ClusteringIndex.build(
            entry.graph, entry.similarity, mu_cap=cap
        )
        with self._lock:
            current = self._entries.get(name)
            if (
                current is entry
                and current.fingerprint == cluster_index.fingerprint
            ):
                self._journal_best_effort(
                    {
                        "op": "build_cluster_index",
                        "name": name,
                        "mu_cap": cap,
                    }
                )
                current.cluster_index = cluster_index
                current.index = cluster_index.edge
                current.mu_cap = cap
                self._publish_locked(current)
        return entry

    # ------------------------------------------------------------------
    # dynamic updates (routed through DynamicSCAN)
    # ------------------------------------------------------------------
    @staticmethod
    def _wire_batch(
        specs: Sequence[Sequence[float]],
    ) -> List[List[float]]:
        """JSON-ready copy of raw update specs, shape *not* validated.

        Journaling precedes apply, and a malformed spec must fail at
        its position in the batch — after the valid prefix applied —
        identically live and on replay, so the record carries the
        batch as given rather than a pre-validated normal form.
        """
        wire: List[List[float]] = []
        for spec in specs:
            row: List[float] = []
            for value in spec:
                number = float(value)
                row.append(
                    int(number) if number.is_integer() else number
                )
            wire.append(row)
        return wire

    def _sigma_seed_locked(self, entry: GraphEntry):
        """σ seed for the entry's mirror, from its edge index.

        When the index answers for the current fingerprint it already
        holds σ for every edge, so the mirror can start from those rows
        instead of recomputing all of them (ROADMAP item 4 leftover:
        the seed also survives recovery and shared-memory epochs, since
        checkpoints archive the index).  Keys are ``(min, max)`` pairs —
        :meth:`~repro.similarity.index.EdgeSimilarityIndex.forward_edges`
        iterates u < v, matching the mirror's key order.
        """
        index = entry.index
        if index is None or index.fingerprint != entry.fingerprint:
            return None
        us, vs, sigmas = index.forward_edges()
        seed = {
            (int(u), int(v)): float(s)
            for u, v, s in zip(us.tolist(), vs.tolist(), sigmas.tolist())
        }
        if self.metrics is not None:
            self.metrics.record_event(
                "mirror_sigma_seeded",
                {"graph": entry.name, "rows": len(seed)},
            )
        return seed

    def update_edges(
        self,
        name: str,
        *,
        insert: Sequence[Sequence[float]] = (),
        delete: Sequence[Sequence[int]] = (),
        add_vertices: int = 0,
        idempotency_key: Optional[str] = None,
    ) -> UpdateStats:
        """Apply an edge-update batch and refresh the CSR snapshot.

        Updates go through the entry's persistent
        :class:`~repro.dynamic.scan.DynamicSCAN`, so the per-edge σ
        cache is repaired incrementally rather than recomputed.  The σ
        index (if any) answers for the *old* graph and is dropped;
        ``auto_index`` entries rebuild it lazily on the next query.

        With a journal attached the batch — including
        ``idempotency_key``, which the store records but does not
        enforce (the HTTP layer and WAL replay dedupe on it) — is
        logged and fsynced before the first mutation, under the store
        lock, so the WAL's order is exactly the apply order.
        """
        if add_vertices < 0:
            raise ConfigError("add_vertices must be non-negative")
        with self._lock:
            entry = self._entries.get(name)
            if entry is None:
                raise ConfigError(f"unknown graph {name!r}")
            if self._journal is not None:
                self._journal_locked(
                    {
                        "op": "update_edges",
                        "name": name,
                        "insert": self._wire_batch(insert),
                        "delete": self._wire_batch(delete),
                        "add_vertices": int(add_vertices),
                        "key": idempotency_key,
                    }
                )
            if entry.dynamic is None:
                # μ/ε are irrelevant for updates (only for DynamicSCAN's
                # own clustering reads); any valid pair works here.
                entry.dynamic = DynamicSCAN(
                    AdjacencyGraph.from_csr(entry.graph),
                    mu=2,
                    epsilon=0.5,
                    similarity=entry.similarity,
                    seed_sigmas=self._sigma_seed_locked(entry),
                )
            dynamic = entry.dynamic
            before_recomputations = dynamic.sigma_recomputations
            old_fingerprint = entry.fingerprint
            inserted = deleted = 0
            # σ rows the batch touches: for an edge op on (u, v), the
            # endpoints plus everything adjacent to either — before
            # *and* after the op, so deletions cover the lost
            # adjacency and insertions the gained one.  Collected even
            # for ops that subsequently fail (a superset only costs a
            # few extra row recomputations, never correctness).
            affected: set = set()
            rows_refreshed = 0
            try:
                for _ in range(add_vertices):
                    dynamic.add_vertex()
                for spec in insert:
                    if len(spec) == 2:
                        u, v, weight = int(spec[0]), int(spec[1]), 1.0
                    elif len(spec) == 3:
                        u, v, weight = (
                            int(spec[0]),
                            int(spec[1]),
                            float(spec[2]),
                        )
                    else:
                        raise ConfigError(
                            "insert entries must be [u, v] or "
                            "[u, v, weight]"
                        )
                    _collect_affected(affected, dynamic.graph, u, v)
                    dynamic.add_edge(u, v, weight)
                    _collect_affected(affected, dynamic.graph, u, v)
                    inserted += 1
                for spec in delete:
                    if len(spec) != 2:
                        raise ConfigError("delete entries must be [u, v]")
                    u, v = int(spec[0]), int(spec[1])
                    _collect_affected(affected, dynamic.graph, u, v)
                    dynamic.remove_edge(u, v)
                    _collect_affected(affected, dynamic.graph, u, v)
                    deleted += 1
            finally:
                # A mid-batch failure leaves the mirror partially
                # mutated; the CSR snapshot (and any index) must follow
                # it either way — a stale index answering for the old
                # graph would be silent corruption.
                if inserted or deleted or add_vertices:
                    entry.graph = dynamic.graph.to_csr()
                    entry.fingerprint = graph_fingerprint(entry.graph)
                    entry.updates_applied += 1
                    rows_refreshed = self._refresh_indexes_locked(
                        entry, affected
                    )
                    # One epoch bump per batch: attached readers flip to
                    # the post-update snapshot atomically (DESIGN.md §11).
                    self._publish_locked(entry)
            n = entry.graph.num_vertices
            return UpdateStats(
                old_fingerprint=old_fingerprint,
                new_fingerprint=entry.fingerprint,
                vertices_added=int(add_vertices),
                inserted=inserted,
                deleted=deleted,
                sigma_recomputations=(
                    dynamic.sigma_recomputations - before_recomputations
                ),
                index_rows_refreshed=rows_refreshed,
                affected_vertices=tuple(
                    sorted(v for v in affected if 0 <= v < n)
                ),
            )

    def _refresh_indexes_locked(
        self, entry: GraphEntry, affected: set
    ) -> int:
        """Carry the entry's indexes across a graph mutation.

        With a clustering index present, only the ``affected`` σ rows
        are recomputed (:meth:`ClusteringIndex.refresh` — bitwise equal
        to a fresh build); the wrapped edge index is re-derived from the
        same σ array for free.  Without one, the edge index is dropped
        (``auto_index`` entries rebuild lazily on the next query).  Any
        patch failure degrades to the drop path: the one unacceptable
        outcome is an index still answering for the pre-update graph.
        """
        cluster_index = entry.cluster_index
        entry.index = None
        entry.cluster_index = None
        if cluster_index is None:
            return 0
        n = entry.graph.num_vertices
        valid = {v for v in affected if 0 <= v < n}
        try:
            fault_point("store.index_refresh")
            patched, stats = cluster_index.refresh(entry.graph, valid)
        except Exception as exc:
            # Degraded mode: drop the index (auto entries rebuild
            # lazily) — stale reads are impossible either way.  The
            # swallow is witnessed on the metrics audit trail.
            if self.metrics is not None:
                self.metrics.record_event(
                    "index_refresh_failed",
                    {
                        "graph": entry.name,
                        "error": f"{type(exc).__name__}: {exc}",
                        "rows_affected": len(valid),
                    },
                )
            return 0
        entry.cluster_index = patched
        entry.index = patched.edge
        entry.index_rows_refreshed += int(stats["rows_recomputed"])
        return int(stats["rows_recomputed"])

    def infos(self) -> List[Dict[str, object]]:
        with self._lock:
            entries = list(self._entries.values())
        return [entry.info() for entry in entries]
