"""SCAN (Xu et al., KDD 2007), extended to weighted graphs.

The reference batch algorithm and the ground truth every other algorithm
in this repository is validated against.  It expands clusters from core
vertices by BFS over structural neighborhoods, evaluating the structural
similarity of (essentially) every edge — the O(|E|) cost the paper sets
out to beat.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.baselines._postprocess import finalize_clustering
from repro.graph.csr import Graph
from repro.result import Clustering
from repro.similarity.weighted import SimilarityConfig, SimilarityOracle
from repro.validation import check_eps_mu

__all__ = ["scan"]


def scan(
    graph: Graph,
    mu: int,
    epsilon: float,
    *,
    oracle: SimilarityOracle | None = None,
    similarity_config: SimilarityConfig | None = None,
    seed: int = 0,
    use_pruned_queries: bool = False,
) -> Clustering:
    """Cluster ``graph`` with SCAN.

    Parameters
    ----------
    graph:
        The undirected (optionally weighted) graph.
    mu, epsilon:
        SCAN's density parameters (Definition 3).
    oracle:
        Similarity oracle to reuse (and whose counters to charge);
        a fresh one is created otherwise.
    similarity_config:
        Similarity semantics when building a fresh oracle.  Plain SCAN
        disables the Lemma 5 pruning — that variant is
        :func:`repro.baselines.scan_b.scan_b`.
    seed:
        Vertex-visit order shuffle; SCAN's member partition is order
        independent, but shared borders may move between clusters.
    use_pruned_queries:
        Evaluate range queries with per-neighbor threshold tests (Lemma 5
        filter + early exit) instead of full σ evaluations.  This is what
        SCAN-B does; see :func:`repro.baselines.scan_b.scan_b`.

    Returns
    -------
    Clustering
        Clusters, hubs, and outliers with per-vertex roles.
    """
    check_eps_mu(mu=mu, epsilon=epsilon)
    if oracle is None:
        config = similarity_config or SimilarityConfig(pruning=False)
        oracle = SimilarityOracle(graph, config)

    n = graph.num_vertices
    labels = np.full(n, -3, dtype=np.int64)  # -3: not yet classified
    core_mask = np.zeros(n, dtype=bool)
    core_known = np.zeros(n, dtype=np.int8)  # 0 unknown / 1 core / 2 non-core
    eps_cache: dict = {}

    def is_core(v: int) -> bool:
        if core_known[v] == 0:
            if use_pruned_queries:
                hood = oracle.eps_neighborhood_pruned(v, epsilon)
            else:
                hood = oracle.eps_neighborhood(v, epsilon)
            eps_cache[v] = hood
            size = hood.shape[0] + (1 if oracle.config.count_self else 0)
            core_known[v] = 1 if size >= mu else 2
        return core_known[v] == 1

    rng = np.random.default_rng(seed)
    order = rng.permutation(n)
    next_cluster = 0
    for start in order:
        start = int(start)
        if labels[start] != -3:
            continue
        if not is_core(start):
            labels[start] = -4  # provisional non-member
            continue
        cid = next_cluster
        next_cluster += 1
        labels[start] = cid
        core_mask[start] = True
        queue = deque([start])
        while queue:
            v = queue.popleft()
            if not is_core(v):
                continue
            core_mask[v] = True
            labels[v] = cid
            for q in eps_cache[v]:
                q = int(q)
                if labels[q] == -3 or labels[q] == -4:
                    labels[q] = cid
                    queue.append(q)
                # Already-labeled vertices stay where they are: a shared
                # border keeps its first cluster (paper, Lemma 4 note).

    labels[labels == -3] = -4
    return finalize_clustering(graph, labels, core_mask)
