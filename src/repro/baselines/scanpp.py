"""SCAN++ (Shiokawa, Fujiwara, Onizuka — VLDB 2015), weighted extension.

SCAN++ exploits the density of real networks: it picks *pivots* that are
two hops apart, computes exact similarities only for pivot-incident edges
("true" similarity evaluations), and resolves the remaining vertices with
cheaper evaluations that reuse the overlap with the pivots' neighborhoods
("similarity sharing").  Local clusters around core pivots are then
connected through bridge vertices, and the final result equals SCAN's.

This reproduction is a behavioral twin of the published algorithm: the
pivot selection via DTAR (directly two-hop-away reachable) expansion, the
phase split, and the two evaluation counters (pivot-incident "true" vs
phase-2 "sharing" evaluations) match, each edge's σ is computed at most
once, and the DTAR bookkeeping is charged as extra work units — exactly
the overhead the anySCAN paper blames for SCAN++ sometimes losing to the
simpler SCAN-B despite using fewer evaluations.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Tuple

import numpy as np

from repro.baselines._postprocess import finalize_clustering
from repro.validation import check_eps_mu
from repro.graph.csr import Graph
from repro.result import Clustering
from repro.similarity.weighted import SimilarityConfig, SimilarityOracle
from repro.structures.disjoint_set import DisjointSet

__all__ = ["scanpp"]


def scanpp(
    graph: Graph,
    mu: int,
    epsilon: float,
    *,
    oracle: SimilarityOracle | None = None,
    seed: int = 0,
    stats: Dict[str, float] | None = None,
) -> Clustering:
    """Cluster ``graph`` with SCAN++.

    Parameters
    ----------
    graph, mu, epsilon:
        As in :func:`repro.baselines.scan.scan`.
    oracle:
        Similarity oracle to reuse; fresh (non-pruning, like the original
        SCAN++) otherwise.
    seed:
        Pivot-selection shuffle.
    stats:
        Optional dict populated with ``true_evaluations``,
        ``sharing_evaluations``, ``num_pivots`` and ``dtar_overhead``
        (work units spent maintaining DTAR sets).

    Returns
    -------
    Clustering identical to SCAN's partition.
    """
    check_eps_mu(mu=mu, epsilon=epsilon)
    if oracle is None:
        oracle = SimilarityOracle(graph, SimilarityConfig(pruning=False))

    n = graph.num_vertices
    self_count = 1 if oracle.config.count_self else 0
    rng = np.random.default_rng(seed)

    similar_cache: Dict[Tuple[int, int], bool] = {}
    core_state = np.zeros(n, dtype=np.int8)  # 0 unknown / 1 core / 2 non-core
    pivot_done = np.zeros(n, dtype=bool)
    covered = np.zeros(n, dtype=bool)  # adjacent to (or equal to) a pivot
    dsu = DisjointSet(n)  # over core vertices only
    border_of: Dict[int, int] = {}  # non-core vertex -> an adjacent core
    eps_hoods: Dict[int, np.ndarray] = {}

    true_evaluations = 0
    sharing_evaluations = 0
    dtar_overhead = 0.0
    num_pivots = 0

    def edge_key(u: int, v: int) -> Tuple[int, int]:
        return (u, v) if u < v else (v, u)

    def similar(u: int, v: int, *, sharing: bool) -> bool:
        nonlocal true_evaluations, sharing_evaluations
        key = edge_key(u, v)
        hit = similar_cache.get(key)
        if hit is not None:
            return hit
        result = oracle.sigma(u, v) >= epsilon
        if sharing:
            sharing_evaluations += 1
        else:
            true_evaluations += 1
        similar_cache[key] = result
        return result

    def eps_neighborhood(p: int, *, sharing: bool) -> np.ndarray:
        hood = eps_hoods.get(p)
        if hood is None:
            hood = np.asarray(
                [int(q) for q in graph.neighbors(p) if similar(p, int(q), sharing=sharing)],
                dtype=np.int64,
            )
            eps_hoods[p] = hood
        return hood

    def resolve_core(p: int, *, sharing: bool) -> bool:
        if core_state[p] == 0:
            hood = eps_neighborhood(p, sharing=sharing)
            core_state[p] = 1 if hood.shape[0] + self_count >= mu else 2
        return core_state[p] == 1

    # ------------------------------------------------------------------
    # Phase 1: pivot selection by DTAR expansion + local clusters.
    # ------------------------------------------------------------------
    order = rng.permutation(n)
    for start in order:
        start = int(start)
        if covered[start] or pivot_done[start]:
            continue
        queue = deque([start])
        while queue:
            p = int(queue.popleft())
            if pivot_done[p] or covered[p]:
                continue
            pivot_done[p] = True
            covered[p] = True
            num_pivots += 1
            hood = eps_neighborhood(p, sharing=False)
            for q in graph.neighbors(p):
                covered[int(q)] = True
            if not resolve_core(p, sharing=False):
                continue
            # Local cluster: p with its ε-neighborhood (Definition 4).
            for q in hood:
                q = int(q)
                if core_state[q] == 1:
                    dsu.union(p, q)
                else:
                    border_of.setdefault(q, p)
            # DTAR: two-hop-away vertices become the next pivots.
            p_neighbors = set(int(x) for x in graph.neighbors(p))
            for q in hood:
                row = graph.neighbors(int(q))
                dtar_overhead += float(row.shape[0])
                for w in row:
                    w = int(w)
                    if w != p and w not in p_neighbors and not covered[w]:
                        queue.append(w)

    # ------------------------------------------------------------------
    # Phase 2: connect local clusters through bridge vertices.
    # ------------------------------------------------------------------
    candidates = [
        v
        for v in range(n)
        if core_state[v] == 0 and graph.degree(v) + self_count >= mu
    ]
    for v in candidates:
        if not resolve_core(v, sharing=True):
            continue
        for q in eps_neighborhood(v, sharing=True):
            q = int(q)
            if core_state[q] == 1:
                dsu.union(v, q)
            else:
                border_of.setdefault(q, v)
    # Vertices that can never be core are non-core by definition.
    for v in range(n):
        if core_state[v] == 0:
            core_state[v] = 2
    # Core-core edges between already-identified cores still need checking
    # when the two ends were resolved via different pivots.
    for u in np.flatnonzero(core_state == 1):
        u = int(u)
        for q in graph.neighbors(u):
            q = int(q)
            if core_state[q] == 1 and not dsu.same(u, q):
                if similar(u, q, sharing=True):
                    dsu.union(u, q)

    core_mask = core_state == 1
    labels = np.full(n, -4, dtype=np.int64)
    roots: Dict[int, int] = {}
    for u in np.flatnonzero(core_mask):
        root = dsu.find(int(u))
        labels[u] = roots.setdefault(root, len(roots))
    # Borders inherit the cluster of the core that reached them first; a
    # core's ε-neighbors that are non-core are borders by Definition 3.
    for v, anchor in border_of.items():
        if labels[v] < 0 and core_mask[anchor]:
            labels[v] = labels[anchor]
    oracle.counters.work_units += dtar_overhead  # bookkeeping cost

    if stats is not None:
        stats["true_evaluations"] = true_evaluations
        stats["sharing_evaluations"] = sharing_evaluations
        stats["num_pivots"] = num_pivots
        stats["dtar_overhead"] = dtar_overhead
    return finalize_clustering(graph, labels, core_mask)
