"""Hub/outlier classification shared by all SCAN-family algorithms.

After clusters are formed, SCAN splits the remaining vertices into *hubs*
(adjacent to two or more distinct clusters) and *outliers* (everything
else).  All baselines and anySCAN share this post-processing so their
outputs are directly comparable.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import Graph
from repro.result import HUB, OUTLIER, Clustering, VertexRole

__all__ = ["classify_non_members", "finalize_clustering"]


def classify_non_members(graph: Graph, labels: np.ndarray) -> np.ndarray:
    """Replace provisional non-member labels with HUB / OUTLIER.

    ``labels`` uses cluster ids ≥ 0 for members and any negative value for
    non-members; the returned copy refines the negatives.
    """
    out = labels.copy()
    for v in np.flatnonzero(labels < 0):
        seen: set = set()
        for q in graph.neighbors(int(v)):
            lbl = int(labels[int(q)])
            if lbl >= 0:
                seen.add(lbl)
            if len(seen) >= 2:
                break
        out[int(v)] = HUB if len(seen) >= 2 else OUTLIER
    return out


def finalize_clustering(
    graph: Graph,
    labels: np.ndarray,
    core_mask: np.ndarray,
) -> Clustering:
    """Build the final :class:`Clustering` with roles.

    Parameters
    ----------
    labels:
        Cluster ids ≥ 0 for members, negatives for non-members.
    core_mask:
        Boolean array marking the vertices determined to be cores.
    """
    labels = classify_non_members(graph, labels)
    roles = np.empty(graph.num_vertices, dtype=np.int8)
    for v in range(graph.num_vertices):
        if core_mask[v]:
            roles[v] = int(VertexRole.CORE)
        elif labels[v] >= 0:
            roles[v] = int(VertexRole.BORDER)
        elif labels[v] == HUB:
            roles[v] = int(VertexRole.HUB)
        else:
            roles[v] = int(VertexRole.OUTLIER)
    return Clustering(labels=labels, roles=roles)
