"""The "ideal" parallel algorithm of Figure 11.

The paper's scalability yardstick: evaluate the structural similarity of
every edge of the graph — the dominant cost of SCAN — with zero label
propagation and zero synchronization.  Its speedup is bounded only by load
balance, so it upper-bounds what any parallel SCAN variant can achieve.

:func:`ideal_edge_costs` exposes the per-edge work items that the
multicore simulator schedules; :func:`ideal_total_work` is their sum.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.graph.csr import Graph
from repro.similarity.weighted import SimilarityConfig, SimilarityOracle
from repro.validation import check_eps_mu

__all__ = ["ideal_edge_costs", "ideal_total_work", "ideal_evaluate_all"]


def ideal_edge_costs(graph: Graph) -> np.ndarray:
    """Work cost of each undirected edge's σ evaluation (``|N_u| + |N_v|``).

    The order matches :meth:`repro.graph.csr.Graph.edges`.
    """
    degrees = graph.degrees
    costs: List[float] = []
    for u, v, _ in graph.edges():
        costs.append(float(degrees[u] + degrees[v]))
    return np.asarray(costs, dtype=np.float64)


def ideal_total_work(graph: Graph) -> float:
    """Total sequential work of the ideal algorithm."""
    return float(ideal_edge_costs(graph).sum())


def ideal_evaluate_all(
    graph: Graph,
    epsilon: float,
    *,
    oracle: SimilarityOracle | None = None,
) -> int:
    """Actually evaluate σ for every edge; returns how many pass ε.

    Used by tests to pin the ideal workload to real similarity values and
    by the Figure 11 bench to report the similarity pass rate alongside
    the speedups.
    """
    check_eps_mu(epsilon=epsilon)
    if oracle is None:
        oracle = SimilarityOracle(graph, SimilarityConfig(pruning=False))
    passing = 0
    for u, v, _ in graph.edges():
        if oracle.sigma(u, v) >= epsilon:
            passing += 1
    return passing
