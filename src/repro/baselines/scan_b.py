"""SCAN-B: SCAN with the Section III-D pruning optimizations.

The paper introduces SCAN-B as "an extension of SCAN using optimization
techniques described in Section III-D": the traversal is unchanged, but
every range query goes through the Lemma 5 constant-time filter and the
two-sided early-exit threshold test.  On sparse graphs with high ε most σ
evaluations are skipped, which is why the paper finds SCAN-B occasionally
beating pSCAN and anySCAN despite its simplicity.
"""

from __future__ import annotations

from repro.graph.csr import Graph
from repro.result import Clustering
from repro.baselines.scan import scan
from repro.similarity.weighted import SimilarityConfig, SimilarityOracle
from repro.validation import check_eps_mu

__all__ = ["scan_b"]


def scan_b(
    graph: Graph,
    mu: int,
    epsilon: float,
    *,
    oracle: SimilarityOracle | None = None,
    seed: int = 0,
) -> Clustering:
    """Cluster ``graph`` with SCAN-B (pruned range queries).

    See :func:`repro.baselines.scan.scan` for the shared parameters; the
    result is identical to SCAN's, only the amount of similarity work
    differs.
    """
    check_eps_mu(mu=mu, epsilon=epsilon)
    if oracle is None:
        oracle = SimilarityOracle(graph, SimilarityConfig(pruning=True))
    return scan(
        graph,
        mu,
        epsilon,
        oracle=oracle,
        seed=seed,
        use_pruned_queries=True,
    )
