"""Baseline algorithms the paper compares against.

All baselines produce the exact SCAN clustering (modulo shared-border
assignment); they differ only in how much similarity work they spend,
which is what the Figure 6/7 benches measure.
"""

from repro.baselines.ideal import (
    ideal_edge_costs,
    ideal_evaluate_all,
    ideal_total_work,
)
from repro.baselines.pscan import pscan
from repro.baselines.scan import scan
from repro.baselines.scan_b import scan_b
from repro.baselines.scanpp import scanpp

__all__ = [
    "scan",
    "scan_b",
    "pscan",
    "scanpp",
    "ideal_edge_costs",
    "ideal_total_work",
    "ideal_evaluate_all",
]
