"""pSCAN (Chang, Li, Lin, Qin, Zhang — ICDE 2016), weighted extension.

The strongest sequential baseline in the paper.  pSCAN avoids computing
full neighborhoods: it maintains, per vertex, a *similar-degree* ``sd``
(confirmed ε-similar neighbors) and an *effective-degree* ``ed`` (upper
bound on the achievable ``sd``) and stops evaluating a vertex's edges as
soon as ``sd ≥ μ`` (core) or ``ed < μ`` (non-core).  Each edge's σ is
evaluated at most once thanks to a shared cache; cluster cores are merged
in a disjoint set and non-cores are attached in a second phase.

This implementation processes vertices in non-increasing initial-degree
order (the reference implementation keeps a dynamic ed-ordering; the
static order preserves the algorithm's work profile and exactness and is
noted in DESIGN.md).
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.baselines._postprocess import finalize_clustering
from repro.validation import check_eps_mu
from repro.graph.csr import Graph
from repro.result import Clustering
from repro.similarity.weighted import SimilarityConfig, SimilarityOracle
from repro.structures.disjoint_set import DisjointSet

__all__ = ["pscan"]


def pscan(
    graph: Graph,
    mu: int,
    epsilon: float,
    *,
    oracle: SimilarityOracle | None = None,
    stats: Dict[str, int] | None = None,
) -> Clustering:
    """Cluster ``graph`` with pSCAN.

    Parameters
    ----------
    graph, mu, epsilon:
        As in :func:`repro.baselines.scan.scan`.
    oracle:
        Similarity oracle to reuse; defaults to one with pruning enabled
        (pSCAN ships the same pruning rules).
    stats:
        Optional dict populated with ``union_calls``, ``effective_unions``,
        ``find_calls`` and ``edges_evaluated`` (the Figure 12 series).

    Returns
    -------
    Clustering identical to SCAN's partition.
    """
    check_eps_mu(mu=mu, epsilon=epsilon)
    if oracle is None:
        oracle = SimilarityOracle(graph, SimilarityConfig(pruning=True))

    n = graph.num_vertices
    self_count = 1 if oracle.config.count_self else 0
    sd = np.full(n, self_count, dtype=np.int64)  # confirmed similar neighbors
    ed = graph.degrees.astype(np.int64) + self_count  # optimistic bound
    core_state = np.zeros(n, dtype=np.int8)  # 0 unknown / 1 core / 2 non-core
    similar_cache: Dict[Tuple[int, int], bool] = {}
    # Per-vertex cursor into its adjacency list: edges before it are done.
    cursor = np.zeros(n, dtype=np.int64)
    dsu = DisjointSet(n)

    def edge_key(u: int, v: int) -> Tuple[int, int]:
        return (u, v) if u < v else (v, u)

    def evaluate(u: int, v: int) -> bool:
        """σ(u, v) ≥ ε with caching and sd/ed maintenance for both ends."""
        key = edge_key(u, v)
        hit = similar_cache.get(key)
        if hit is not None:
            return hit
        result = oracle.similar(u, v, epsilon)
        similar_cache[key] = result
        for x in key:
            if result:
                sd[x] += 1
            else:
                ed[x] -= 1
        return result

    def check_core(u: int) -> bool:
        """Resolve ``u``'s core status, evaluating as few edges as possible."""
        if core_state[u] != 0:
            return core_state[u] == 1
        row = graph.neighbors(u)
        while sd[u] < mu and ed[u] >= mu and cursor[u] < row.shape[0]:
            v = int(row[cursor[u]])
            cursor[u] += 1
            if edge_key(u, v) in similar_cache:
                continue  # already folded into sd/ed by the other endpoint
            evaluate(u, v)
        core_state[u] = 1 if sd[u] >= mu else 2
        return core_state[u] == 1

    # ------------------------------------------------------------------
    # Phase 1: cluster the cores.
    # ------------------------------------------------------------------
    order = np.argsort(-graph.degrees, kind="stable")
    for u in order:
        u = int(u)
        if ed[u] < mu:
            core_state[u] = 2
            continue
        if not check_core(u):
            continue
        # Merge u with every ε-similar neighboring core.
        for v in graph.neighbors(u):
            v = int(v)
            if ed[v] < mu:
                continue  # cannot be core, skip (pSCAN's candidate filter)
            if core_state[v] == 2:
                continue
            if dsu.same(u, v):
                continue  # avoid evaluating edges inside one cluster core
            if not evaluate(u, v):
                continue
            if check_core(v):
                dsu.union(u, v)

    core_mask = core_state == 1

    # ------------------------------------------------------------------
    # Phase 2: attach non-cores (borders) to clusters.
    # ------------------------------------------------------------------
    labels = np.full(n, -4, dtype=np.int64)
    roots: Dict[int, int] = {}
    for u in np.flatnonzero(core_mask):
        root = dsu.find(int(u))
        labels[u] = roots.setdefault(root, len(roots))
    for u in np.flatnonzero(core_mask):
        u = int(u)
        for v in graph.neighbors(u):
            v = int(v)
            if core_mask[v] or labels[v] >= 0:
                continue
            if evaluate(u, v):
                labels[v] = labels[u]

    if stats is not None:
        stats["union_calls"] = dsu.union_calls
        stats["effective_unions"] = dsu.effective_unions
        stats["find_calls"] = dsu.find_calls
        stats["edges_evaluated"] = len(similar_cache)
    return finalize_clustering(graph, labels, core_mask)
