"""Exception hierarchy for the :mod:`repro` library.

Every error raised intentionally by the library derives from
:class:`ReproError`, so callers can catch library failures without
accidentally swallowing programming errors such as :class:`TypeError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """Raised when a graph is structurally invalid or misused."""


class GraphFormatError(GraphError):
    """Raised when parsing a graph file that is malformed."""


class GeneratorError(ReproError):
    """Raised when a random-graph generator receives unsatisfiable knobs."""


class ConfigError(ReproError):
    """Raised when algorithm parameters are out of their valid domain."""


class IndexIntegrityError(ConfigError):
    """Raised when a persisted similarity index fails integrity checks
    (unreadable archive, missing fields, or checksum mismatch)."""


class StateTransitionError(ReproError):
    """Raised when a vertex state change violates the Figure 3 schema."""


class SimulationError(ReproError):
    """Raised when the multicore simulator is driven inconsistently."""


class ExperimentError(ReproError):
    """Raised when a benchmark experiment is misconfigured."""


class BenchError(ExperimentError):
    """Raised when benchmark output (tables, charts) is malformed."""
