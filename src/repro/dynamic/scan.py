"""Incremental SCAN maintenance under edge insertions and deletions.

The paper's related work cites DENGRAPH for clustering *dynamic* social
networks; this module provides that capability on top of our similarity
semantics, as a natural extension of the reproduction.

Key observation: σ(x, y) (Definition 1) depends only on the
neighborhoods of ``x`` and ``y``.  Inserting or deleting the edge
``(u, v)`` therefore only changes

* σ(u, ·) and σ(v, ·) for pairs incident to ``u`` or ``v`` (their
  neighborhoods and lengths ``l_u``, ``l_v`` changed), and
* nothing else.

:class:`DynamicSCAN` keeps a per-edge σ cache; each update recomputes
only the O(deg(u) + deg(v)) affected entries and marks the labeling
dirty.  :meth:`clustering` rebuilds labels from the cache with one
O(n + |E|) relabel pass — no σ work — so a stream of updates costs
"σ on touched pairs" + "one cheap relabel per read", versus a full
O(Σ degree-sums) batch re-run.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

import numpy as np

from repro.baselines._postprocess import finalize_clustering
from repro.core.backend_scan import _expand_clusters
from repro.dynamic.graph import AdjacencyGraph
from repro.errors import ConfigError
from repro.result import Clustering
from repro.similarity.weighted import SimilarityConfig

__all__ = ["DynamicSCAN"]


class DynamicSCAN:
    """SCAN clustering maintained under edge updates.

    Parameters
    ----------
    graph:
        The mutable graph; updates must go through this object's
        :meth:`add_edge` / :meth:`remove_edge` so the σ cache stays
        consistent (mutating the graph directly desynchronizes it).
    mu, epsilon:
        SCAN parameters.
    similarity:
        Similarity semantics (closed neighborhoods etc.), matching the
        batch oracle's defaults.
    seed_sigmas:
        Optional pre-computed σ cache, keyed by undirected edge (order
        of endpoints is normalized).  When it covers the graph's exact
        edge set, the O(m) σ sweep of a fresh build is skipped entirely
        — the service seeds this from a current
        :class:`~repro.similarity.index.EdgeSimilarityIndex` so the
        update mirror starts warm after recovery or an index build.

    Examples
    --------
    >>> g = AdjacencyGraph(5)
    >>> dyn = DynamicSCAN(g, mu=2, epsilon=0.5)
    >>> dyn.add_edge(0, 1); dyn.add_edge(1, 2); dyn.add_edge(0, 2)
    >>> dyn.clustering().num_clusters
    1
    """

    def __init__(
        self,
        graph: AdjacencyGraph,
        mu: int,
        epsilon: float,
        *,
        similarity: SimilarityConfig | None = None,
        seed_sigmas: Dict[Tuple[int, int], float] | None = None,
    ) -> None:
        if mu < 1:
            raise ConfigError("mu must be a positive integer")
        if not 0.0 < epsilon <= 1.0:
            raise ConfigError("epsilon must be in (0, 1]")
        self.graph = graph
        self.mu = mu
        self.epsilon = epsilon
        self.config = similarity or SimilarityConfig()
        self.config.validate()
        self._sigma: Dict[Tuple[int, int], float] = {}
        self._lengths: Dict[int, float] = {}
        self.sigma_recomputations = 0
        self._dirty = True
        for u in range(graph.num_vertices):
            self._lengths[u] = self._length_of(u)
        if seed_sigmas is not None:
            self._sigma = {
                self._key(int(u), int(v)): float(sigma)
                for (u, v), sigma in seed_sigmas.items()
            }
            expected = {self._key(u, v) for u, v, _ in graph.edges()}
            if set(self._sigma) != expected:
                raise ConfigError(
                    "seed_sigmas must cover exactly the graph's current "
                    "edge set"
                )
        else:
            for u, v, _ in graph.edges():
                self._sigma[self._key(u, v)] = self._compute_sigma(u, v)

    # ------------------------------------------------------------------
    # similarity over the adjacency representation
    # ------------------------------------------------------------------
    @staticmethod
    def _key(u: int, v: int) -> Tuple[int, int]:
        return (u, v) if u < v else (v, u)

    def _length_of(self, v: int) -> float:
        total = sum(w * w for w in self.graph.neighbors(v).values())
        if self.config.closed:
            total += self.config.self_weight ** 2
        return total

    def _compute_sigma(self, u: int, v: int) -> float:
        self.sigma_recomputations += 1
        nu = self.graph.neighbors(u)
        nv = self.graph.neighbors(v)
        if len(nu) > len(nv):
            u, v, nu, nv = v, u, nv, nu
        total = sum(w * nv[r] for r, w in nu.items() if r in nv)
        if self.config.closed:
            sw = self.config.self_weight
            if u == v:
                total += sw * sw
            elif v in nu:
                total += 2.0 * sw * nu[v]
        denom = math.sqrt(self._lengths[u] * self._lengths[v])
        return total / denom if denom > 0 else 0.0

    def _refresh_incident(self, *vertices: int) -> None:
        """Recompute lengths of ``vertices`` and σ of incident edges."""
        for x in vertices:
            self._lengths[x] = self._length_of(x)
        seen = set()
        for x in vertices:
            for y in self.graph.neighbors(x):
                key = self._key(x, int(y))
                if key not in seen:
                    seen.add(key)
                    self._sigma[key] = self._compute_sigma(*key)

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def add_vertex(self) -> int:
        """Append an isolated vertex."""
        v = self.graph.add_vertex()
        self._lengths[v] = self._length_of(v)
        self._dirty = True
        return v

    def add_edge(self, u: int, v: int, weight: float = 1.0) -> None:
        """Insert an edge and repair the affected σ entries."""
        self.graph.add_edge(u, v, weight)
        self._refresh_incident(u, v)
        self._dirty = True

    def remove_edge(self, u: int, v: int) -> None:
        """Delete an edge and repair the affected σ entries."""
        self.graph.remove_edge(u, v)
        self._sigma.pop(self._key(u, v), None)
        self._refresh_incident(u, v)
        self._dirty = True

    def set_weight(self, u: int, v: int, weight: float) -> None:
        """Change an edge weight and repair the affected σ entries."""
        self.graph.set_weight(u, v, weight)
        self._refresh_incident(u, v)
        self._dirty = True

    # ------------------------------------------------------------------
    # reading the clustering
    # ------------------------------------------------------------------
    def core_mask(self) -> np.ndarray:
        """Current boolean core indicator from the σ cache."""
        n = self.graph.num_vertices
        counts = np.zeros(n, dtype=np.int64)
        if self.config.count_self:
            counts += 1
        for (u, v), sigma in self._sigma.items():
            if sigma >= self.epsilon:
                counts[u] += 1
                counts[v] += 1
        return counts >= self.mu

    def clustering(self, *, seed: int = 0) -> Clustering:
        """Exact SCAN clustering of the current graph (cheap relabel).

        Replays the reference BFS expansion of
        :func:`repro.baselines.scan.scan` over the cached σ values —
        same seeded visit order, same first-cluster-wins rule for shared
        borders — so the labels are byte-identical to a fresh batch run
        at the same ``seed``, not merely the same member partition.  No
        σ work happens here; the ε-neighborhoods are threshold passes
        over the cache.
        """
        n = self.graph.num_vertices
        hoods: List[List[int]] = [[] for _ in range(n)]
        for (u, v), sigma in self._sigma.items():
            if sigma >= self.epsilon:
                hoods[u].append(v)
                hoods[v].append(u)
        for hood in hoods:
            hood.sort()  # CSR rows are sorted; match the oracle's order
        bonus = 1 if self.config.count_self else 0
        core = np.asarray(
            [len(hood) + bonus >= self.mu for hood in hoods], dtype=bool
        ).reshape(n)
        labels = _expand_clusters(hoods, core, seed)
        self._dirty = False
        return finalize_clustering(self.graph.to_csr(), labels, core)

    @property
    def pending_changes(self) -> bool:
        """Whether updates arrived since the last :meth:`clustering`."""
        return self._dirty

    def verify_cache(self) -> bool:
        """Recompute every σ from scratch and compare (test hook)."""
        before = self.sigma_recomputations
        for (u, v), cached in self._sigma.items():
            fresh = self._compute_sigma(u, v)
            if abs(fresh - cached) > 1e-9:
                return False
        self.sigma_recomputations = before
        return True
