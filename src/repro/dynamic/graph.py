"""Mutable adjacency-based graph for dynamic clustering.

The CSR :class:`~repro.graph.csr.Graph` is immutable by design; dynamic
clustering (edges arriving/leaving over time, as in the DENGRAPH line of
work the paper cites) needs a mutable counterpart.  ``AdjacencyGraph``
stores per-vertex neighbor→weight dicts, supports O(1) edge updates, and
converts to/from CSR for interoperability with the batch algorithms.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

from repro.errors import GraphError
from repro.graph.builder import GraphBuilder
from repro.graph.csr import Graph

__all__ = ["AdjacencyGraph"]


class AdjacencyGraph:
    """Mutable undirected weighted graph."""

    def __init__(self, num_vertices: int = 0) -> None:
        if num_vertices < 0:
            raise GraphError("num_vertices must be non-negative")
        self._adj: List[Dict[int, float]] = [
            {} for _ in range(num_vertices)
        ]
        self._num_edges = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_csr(cls, graph: Graph) -> "AdjacencyGraph":
        """Copy a CSR graph into mutable form."""
        out = cls(graph.num_vertices)
        for u, v, w in graph.edges():
            out.add_edge(u, v, w)
        return out

    def to_csr(self) -> Graph:
        """Snapshot the current topology as an immutable CSR graph."""
        builder = GraphBuilder(self.num_vertices)
        for u, v, w in self.edges():
            builder.add_edge(u, v, w)
        return builder.build(dedup="error")

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add_vertex(self) -> int:
        """Append an isolated vertex; returns its id."""
        self._adj.append({})
        return self.num_vertices - 1

    def add_edge(self, u: int, v: int, weight: float = 1.0) -> None:
        """Insert the undirected edge (u, v); re-inserting is an error."""
        self._check(u)
        self._check(v)
        if u == v:
            raise GraphError("self-loops are not allowed")
        if weight < 0:
            raise GraphError("edge weights must be non-negative")
        if v in self._adj[u]:
            raise GraphError(f"edge ({u}, {v}) already exists")
        self._adj[u][v] = float(weight)
        self._adj[v][u] = float(weight)
        self._num_edges += 1

    def remove_edge(self, u: int, v: int) -> float:
        """Delete the edge (u, v); returns its weight."""
        self._check(u)
        self._check(v)
        if v not in self._adj[u]:
            raise GraphError(f"no edge ({u}, {v})")
        weight = self._adj[u].pop(v)
        self._adj[v].pop(u)
        self._num_edges -= 1
        return weight

    def set_weight(self, u: int, v: int, weight: float) -> None:
        """Change an existing edge's weight."""
        if v not in self._adj[u]:
            raise GraphError(f"no edge ({u}, {v})")
        if weight < 0:
            raise GraphError("edge weights must be non-negative")
        self._adj[u][v] = float(weight)
        self._adj[v][u] = float(weight)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        return self._num_edges

    def degree(self, v: int) -> int:
        self._check(v)
        return len(self._adj[v])

    def neighbors(self, v: int) -> Dict[int, float]:
        """Neighbor→weight mapping (live view; do not mutate)."""
        self._check(v)
        return self._adj[v]

    def has_edge(self, u: int, v: int) -> bool:
        self._check(u)
        self._check(v)
        return v in self._adj[u]

    def edge_weight(self, u: int, v: int) -> float:
        if v not in self._adj[u]:
            raise GraphError(f"no edge ({u}, {v})")
        return self._adj[u][v]

    def edges(self) -> Iterator[Tuple[int, int, float]]:
        """Each undirected edge once, as (u, v, w) with u < v."""
        for u in range(self.num_vertices):
            for v, w in self._adj[u].items():
                if u < v:
                    yield u, v, w

    def _check(self, v: int) -> None:
        if not 0 <= v < self.num_vertices:
            raise GraphError(f"vertex {v} out of range")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"AdjacencyGraph(num_vertices={self.num_vertices}, "
            f"num_edges={self.num_edges})"
        )
