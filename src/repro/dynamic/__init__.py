"""Dynamic graphs: incremental SCAN maintenance under edge updates."""

from repro.dynamic.graph import AdjacencyGraph
from repro.dynamic.scan import DynamicSCAN

__all__ = ["AdjacencyGraph", "DynamicSCAN"]
