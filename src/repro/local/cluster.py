"""Seeded local structural clustering: exact scan replay from one seed.

``local_cluster(graph, seed, epsilon, mu)`` returns exactly the cluster
the reference :func:`repro.baselines.scan.scan` would assign the seed at
``(ε, μ, order_seed)`` — byte-identical members and roles — while
touching only the neighborhood of the answer (plus whatever competing
clusters are needed to adjudicate contested borders), in the spirit of
*Parallel Local Graph Clustering* (Shun et al.).

Why an exact local replay is possible
-------------------------------------
The sequential reference's outcome is a pure function of structures a
local search can discover incrementally (the same argument behind
:meth:`repro.similarity.gsindex.ClusteringIndex.query`):

* the member partition of cores equals the connected components of the
  qualifying (σ ≥ ε) core-core subgraph — discoverable by a frontier
  expansion from the seed that resolves core-ness lazily;
* cluster ids are assigned in discovery order along the seeded vertex
  permutation, so a component's identity is the minimal permutation
  rank among its cores ("min-rank");
* a shared border keeps its *first* cluster — the adjacent component
  with the smallest min-rank — so a contested border is adjudicated by
  expanding only the components that actually compete for it;
* hubs and outliers depend only on the memberships of their direct
  neighbors (:func:`repro.baselines._postprocess.classify_non_members`).

The only Ω(n) work is materializing the rank array of the seeded
permutation (pure array arithmetic, no σ); every σ-bearing touch is
proportional to the discovered clusters' neighborhoods.

Degradation
-----------
σ resolution goes through the tier chain from :mod:`repro.local.tiers`;
if a tier faults mid-query the search restarts on the next tier and a
:class:`~repro.parallel.processes.DegradationEvent` is emitted through
the same listener channel the process backend uses (the service bridges
it into ``/metrics``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

import numpy as np

from repro.errors import GraphError
from repro.graph.csr import Graph
from repro.graph.traversal import frontier_expand
from repro.local.tiers import SigmaTier, build_tiers
from repro.parallel.processes import DegradationEvent, emit_degradation
from repro.result import VertexRole
from repro.similarity.gsindex import ClusteringIndex
from repro.similarity.index import EdgeSimilarityIndex
from repro.similarity.weighted import SimilarityConfig, SimilarityOracle
from repro.validation import check_eps_mu

__all__ = ["LocalQueryStats", "LocalClusterResult", "local_cluster"]


@dataclass(frozen=True)
class LocalQueryStats:
    """Work accounting for one local query (per-request, not shared)."""

    tier: str
    touched_edges: int
    sigma_evaluations: int
    neighborhood_queries: int
    core_checks: int
    touched_vertices: int
    components_expanded: int
    degraded_from: Tuple[str, ...] = ()

    def to_dict(self) -> Dict[str, object]:
        return {
            "tier": self.tier,
            "touched_edges": self.touched_edges,
            "sigma_evaluations": self.sigma_evaluations,
            "neighborhood_queries": self.neighborhood_queries,
            "core_checks": self.core_checks,
            "touched_vertices": self.touched_vertices,
            "components_expanded": self.components_expanded,
            "degraded_from": list(self.degraded_from),
        }


@dataclass(frozen=True)
class LocalClusterResult:
    """The seed's cluster exactly as the reference scan would report it.

    ``members`` is empty when the seed is a hub or outlier; ``boundary``
    maps each non-member vertex adjacent to the cluster to the role the
    global clustering would assign it (so hubs/outliers are classified
    relative to the discovered boundary).  ``touched`` is the read set —
    every vertex whose σ row or adjacency the query inspected — which is
    what makes exact cache invalidation under edge updates possible:
    an update that doesn't intersect the read set cannot change the
    answer (σ changes are confined to the endpoints' neighborhoods).
    """

    seed: int
    epsilon: float
    mu: int
    order_seed: int
    seed_role: VertexRole
    members: np.ndarray
    core_members: np.ndarray
    border_members: np.ndarray
    boundary: Dict[int, VertexRole]
    cluster_rank: Optional[int]
    stats: LocalQueryStats
    touched: FrozenSet[int] = field(default=frozenset())

    @property
    def cluster_size(self) -> int:
        return int(self.members.shape[0])

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready payload (service responses, CLI ``--json``)."""
        return {
            "seed": self.seed,
            "epsilon": self.epsilon,
            "mu": self.mu,
            "order_seed": self.order_seed,
            "seed_role": self.seed_role.name.lower(),
            "members": [int(v) for v in self.members.tolist()],
            "core_members": [int(v) for v in self.core_members.tolist()],
            "border_members": [int(v) for v in self.border_members.tolist()],
            "boundary": {
                str(v): role.name.lower()
                for v, role in sorted(self.boundary.items())
            },
            "cluster_size": self.cluster_size,
            "cluster_rank": self.cluster_rank,
            "stats": self.stats.to_dict(),
        }


class _Component:
    """One connected component of the qualifying core-core subgraph."""

    __slots__ = ("cores", "border_candidates", "min_rank")

    def __init__(
        self, cores: Set[int], border_candidates: Set[int], min_rank: int
    ) -> None:
        self.cores = cores
        self.border_candidates = border_candidates
        self.min_rank = min_rank


class _LocalSearch:
    """Memoized frontier machinery shared by one query's phases."""

    def __init__(
        self, graph: Graph, tier: SigmaTier, epsilon: float, mu: int,
        rank: np.ndarray,
    ) -> None:
        self.graph = graph
        self.tier = tier
        self.epsilon = epsilon
        self.mu = mu
        self.rank = rank
        self.self_count = 1 if tier.count_self else 0
        self._hoods: Dict[int, np.ndarray] = {}
        self._core_known: Dict[int, bool] = {}
        self._comp_of: Dict[int, _Component] = {}
        self._attach_of: Dict[int, Optional[_Component]] = {}
        self.components_expanded = 0
        self.touched: Set[int] = set()

    # -- σ-row primitives (each row resolved at most once) -------------
    def hood(self, v: int) -> np.ndarray:
        hood = self._hoods.get(v)
        if hood is None:
            hood = self.tier.qualifying(v, self.epsilon)
            self._hoods[v] = hood
            self.touched.add(v)
        return hood

    def is_core(self, v: int) -> bool:
        known = self._core_known.get(v)
        if known is None:
            if self.tier.fast_core_check and v not in self._hoods:
                known = self.tier.core_check(v, self.mu, self.epsilon)
                self.touched.add(v)
            else:
                size = self.hood(v).shape[0] + self.self_count
                known = size >= self.mu
            self._core_known[v] = known
        return known

    # -- component expansion -------------------------------------------
    def expand(self, start_core: int) -> _Component:
        """The qualifying core-core component containing ``start_core``.

        Memoized: contested-border adjudication revisits competitor
        components, and every core of a discovered component maps to
        the same :class:`_Component` object.
        """
        comp = self._comp_of.get(start_core)
        if comp is not None:
            return comp
        candidates: Set[int] = set()

        def successors(v: int) -> List[int]:
            nxt: List[int] = []
            for q in self.hood(v):
                q = int(q)
                if self.is_core(q):
                    nxt.append(q)
                else:
                    candidates.add(q)
            return nxt

        cores = set(frontier_expand([start_core], successors))
        min_rank = min(int(self.rank[c]) for c in cores)
        comp = _Component(cores, candidates, min_rank)
        for c in cores:
            self._comp_of[c] = comp
        self.components_expanded += 1
        return comp

    def attach_component(self, q: int) -> Optional[_Component]:
        """The component a non-core ``q`` joins as border, or ``None``.

        The reference attaches a shared border to the *first* cluster
        that reaches it; clusters are discovered in min-rank order, so
        the winner is the adjacent qualifying component with the
        smallest min-rank.
        """
        if q in self._attach_of:
            return self._attach_of[q]
        best: Optional[_Component] = None
        for u in self.hood(q):
            u = int(u)
            if self.is_core(u):
                comp = self.expand(u)
                if best is None or comp.min_rank < best.min_rank:
                    best = comp
        self._attach_of[q] = best
        return best

    def membership(self, v: int) -> Optional[_Component]:
        """The component ``v`` is a member of (core or border), if any."""
        if self.is_core(v):
            return self.expand(v)
        return self.attach_component(v)

    def non_member_role(self, v: int) -> VertexRole:
        """HUB/OUTLIER for a vertex that joins no cluster.

        Mirrors :func:`repro.baselines._postprocess.classify_non_members`:
        a non-member bridging ≥ 2 distinct clusters is a hub.  Distinct
        clusters ⇔ distinct components (ids are injective in min-rank).
        """
        self.touched.add(v)  # reads v's adjacency
        seen: Set[int] = set()
        for r in self.graph.neighbors(v):
            comp = self.membership(int(r))
            if comp is not None:
                seen.add(comp.min_rank)
                if len(seen) >= 2:
                    return VertexRole.HUB
        return VertexRole.OUTLIER


def _resolve(
    graph: Graph,
    tier: SigmaTier,
    seed: int,
    epsilon: float,
    mu: int,
    rank: np.ndarray,
    classify_boundary: bool,
) -> Tuple[
    _LocalSearch,
    Optional[_Component],
    VertexRole,
    np.ndarray,
    np.ndarray,
    Dict[int, VertexRole],
]:
    """Run one tier's *entire* search (so degradation can restart it).

    Returns the search (for stats/read-set), the seed's component (or
    ``None``), the seed's role, sorted core/border member arrays, and
    the boundary classification.
    """
    search = _LocalSearch(graph, tier, epsilon, mu, rank)
    if search.is_core(seed):
        comp: Optional[_Component] = search.expand(seed)
        seed_role = VertexRole.CORE
    else:
        comp = search.attach_component(seed)
        if comp is not None:
            seed_role = VertexRole.BORDER
        else:
            seed_role = search.non_member_role(seed)

    boundary: Dict[int, VertexRole] = {}
    if comp is None:
        cores = np.zeros(0, dtype=np.int64)
        borders = np.zeros(0, dtype=np.int64)
        return search, comp, seed_role, cores, borders, boundary

    core_list = sorted(comp.cores)
    border_list = sorted(
        q for q in comp.border_candidates
        if search.attach_component(q) is comp
    )
    cores = np.asarray(core_list, dtype=np.int64)
    borders = np.asarray(border_list, dtype=np.int64)
    if classify_boundary:
        member_set = set(core_list) | set(border_list)
        fringe: Set[int] = set()
        for m in member_set:
            search.touched.add(m)  # reads m's adjacency
            for r in graph.neighbors(m):
                r = int(r)
                if r not in member_set:
                    fringe.add(r)
        for b in sorted(fringe):
            other = search.membership(b)
            if other is not None:
                boundary[b] = (
                    VertexRole.CORE
                    if search.is_core(b)
                    else VertexRole.BORDER
                )
            else:
                boundary[b] = search.non_member_role(b)
    return search, comp, seed_role, cores, borders, boundary


def local_cluster(
    graph: Graph,
    seed: int,
    epsilon: float,
    mu: int,
    *,
    cluster_index: Optional[ClusteringIndex] = None,
    edge_index: Optional[EdgeSimilarityIndex] = None,
    oracle: Optional[SimilarityOracle] = None,
    similarity_config: Optional[SimilarityConfig] = None,
    order_seed: int = 0,
    classify_boundary: bool = True,
) -> LocalClusterResult:
    """Exactly the seed's cluster under ``scan(graph, μ, ε, order_seed)``.

    Parameters
    ----------
    graph:
        The undirected (optionally weighted) graph.
    seed:
        The query vertex whose cluster is wanted.
    epsilon, mu:
        SCAN's density parameters (Definition 3).
    cluster_index, edge_index, oracle, similarity_config:
        σ-resolution inputs; the best available tier is chosen
        automatically (cluster index → edge index → batched oracle) and
        a faulting tier degrades to the next with a witnessed
        :class:`DegradationEvent`.  Passing a ``cluster_index`` implies
        its embedded edge index as the middle tier.
    order_seed:
        The reference scan's vertex-visit shuffle seed; shared borders
        may move between clusters under different orders, and this
        replays the same order.
    classify_boundary:
        Also classify every non-member vertex adjacent to the cluster
        (core/border of another cluster, hub, or outlier), exactly as
        the global clustering would.

    Returns
    -------
    LocalClusterResult
        Members, roles, boundary classification, work stats, and the
        touched read set (for exact cache invalidation).
    """
    check_eps_mu(mu=mu, epsilon=epsilon)
    if not 0 <= int(seed) < graph.num_vertices:
        raise GraphError(f"seed {seed} out of range")
    seed = int(seed)

    tiers = build_tiers(
        graph,
        cluster_index=cluster_index,
        edge_index=edge_index,
        oracle=oracle,
        similarity_config=similarity_config,
    )

    # Rank of each vertex in the reference's seeded visit permutation:
    # the only O(n) step, pure array arithmetic with zero σ work.
    rng = np.random.default_rng(order_seed)
    perm = rng.permutation(graph.num_vertices)
    rank = np.empty(graph.num_vertices, dtype=np.int64)
    rank[perm] = np.arange(graph.num_vertices, dtype=np.int64)

    degraded_from: List[str] = []
    last = len(tiers) - 1
    for pos, tier in enumerate(tiers):
        try:
            search, comp, seed_role, cores, borders, boundary = _resolve(
                graph, tier, seed, epsilon, mu, rank, classify_boundary
            )
            break
        except Exception as exc:
            if pos == last:
                raise
            degraded_from.append(tier.name)
            emit_degradation(
                DegradationEvent(
                    backend=f"local-{tier.name}",
                    reason=f"{type(exc).__name__}: {exc}",
                    failures=1,
                    workers=0,
                )
            )

    if comp is None:
        members = np.zeros(0, dtype=np.int64)
        cluster_rank: Optional[int] = None
    else:
        members = np.unique(np.concatenate([cores, borders]))
        cluster_rank = comp.min_rank

    tier_stats = search.tier.stats()
    stats = LocalQueryStats(
        tier=str(tier_stats["tier"]),
        touched_edges=int(tier_stats["touched_edges"]),
        sigma_evaluations=int(tier_stats["sigma_evaluations"]),
        neighborhood_queries=int(tier_stats["neighborhood_queries"]),
        core_checks=int(tier_stats["core_checks"]),
        touched_vertices=len(search.touched),
        components_expanded=search.components_expanded,
        degraded_from=tuple(degraded_from),
    )
    return LocalClusterResult(
        seed=seed,
        epsilon=float(epsilon),
        mu=int(mu),
        order_seed=int(order_seed),
        seed_role=seed_role,
        members=members,
        core_members=cores,
        border_members=borders,
        boundary=boundary,
        cluster_rank=cluster_rank,
        stats=stats,
        touched=frozenset(search.touched),
    )
