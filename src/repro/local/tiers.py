"""σ-resolution tiers for seeded local clustering.

A local query needs two primitives per touched vertex: "is ``v`` a
μ-core at ε?" and "which neighbors of ``v`` have σ ≥ ε?".  Three tiers
answer them at very different costs, and :func:`repro.local.local_cluster`
picks the best available automatically:

``cluster-index``
    :class:`~repro.similarity.gsindex.ClusteringIndex` — core check is a
    single precomputed-threshold read, the ε-neighborhood is a binary
    search over the σ-sorted row.  **Zero** σ evaluations; the touched
    work is the qualifying prefix, not the degree.
``edge-index``
    :class:`~repro.similarity.index.EdgeSimilarityIndex` — σ is a stored
    per-slot lookup; the ε-neighborhood masks the vertex's σ row
    (touches ``deg(v)`` slots, still zero σ evaluations).
``oracle``
    :class:`~repro.similarity.weighted.SimilarityOracle` — batched
    on-the-fly kernels (``sigma_batch`` under ``eps_neighborhood``);
    ``deg(v)`` σ evaluations per touched vertex, charged to the oracle's
    :class:`~repro.similarity.counters.SimilarityCounters` exactly as
    the global algorithms charge them.

Tier instances keep *query-local* stats (``touched_edges``,
``sigma_evaluations``, …) separate from any shared counters, so a
threaded service can report per-request numbers without double-counting
a shared index's global accounting.  Tiers are not thread-safe; build
one per query.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.errors import ConfigError
from repro.faults import fault_point
from repro.graph.csr import Graph
from repro.similarity.gsindex import ClusteringIndex
from repro.similarity.index import _SEMANTIC_FIELDS, EdgeSimilarityIndex
from repro.similarity.weighted import SimilarityConfig, SimilarityOracle
from repro.validation import check_eps_mu

__all__ = [
    "SigmaTier",
    "ClusterIndexTier",
    "EdgeIndexTier",
    "OracleTier",
    "build_tiers",
]


class SigmaTier:
    """Interface one σ-resolution tier presents to the local search."""

    #: Human-readable tier name (appears in stats, metrics, benches).
    name: str = "abstract"
    #: Whether :meth:`core_check` is cheaper than reading the hood.
    fast_core_check: bool = False

    def __init__(self) -> None:
        self.touched_edges = 0
        self.sigma_evaluations = 0
        self.neighborhood_queries = 0
        self.core_checks = 0

    @property
    def count_self(self) -> bool:
        raise NotImplementedError

    def qualifying(self, v: int, epsilon: float) -> np.ndarray:
        """Neighbors of ``v`` with σ(v, ·) ≥ ε, ascending ids."""
        check_eps_mu(epsilon=epsilon)
        raise NotImplementedError

    def core_check(self, v: int, mu: int, epsilon: float) -> bool:
        """Direct core test; only when :attr:`fast_core_check`."""
        check_eps_mu(mu=mu, epsilon=epsilon)
        raise NotImplementedError

    def stats(self) -> Dict[str, int]:
        return {
            "tier": self.name,
            "touched_edges": int(self.touched_edges),
            "sigma_evaluations": int(self.sigma_evaluations),
            "neighborhood_queries": int(self.neighborhood_queries),
            "core_checks": int(self.core_checks),
        }


class ClusterIndexTier(SigmaTier):
    """Tier 1: the GS*-style :class:`ClusteringIndex` (0 σ evals)."""

    name = "cluster-index"
    fast_core_check = True

    def __init__(self, index: ClusteringIndex) -> None:
        super().__init__()
        self.index = index

    @property
    def count_self(self) -> bool:
        return bool(self.index.config.count_self)

    def qualifying(self, v: int, epsilon: float) -> np.ndarray:
        check_eps_mu(epsilon=epsilon)
        fault_point("local.index_query")
        hood = self.index.eps_neighborhood(v, epsilon)
        # A binary search finds the qualifying prefix; only that prefix
        # of the σ-sorted row is materialized, so the touched work is
        # output-proportional, not degree-proportional.
        self.touched_edges += int(hood.shape[0])
        self.neighborhood_queries += 1
        return hood

    def core_check(self, v: int, mu: int, epsilon: float) -> bool:
        check_eps_mu(mu=mu, epsilon=epsilon)
        fault_point("local.index_query")
        self.core_checks += 1
        return self.index.core_epsilon(v, mu) >= epsilon


class EdgeIndexTier(SigmaTier):
    """Tier 2: stored per-edge σ (:class:`EdgeSimilarityIndex`)."""

    name = "edge-index"
    fast_core_check = False

    def __init__(self, index: EdgeSimilarityIndex) -> None:
        super().__init__()
        self.index = index

    @property
    def count_self(self) -> bool:
        return bool(self.index.config.count_self)

    def qualifying(self, v: int, epsilon: float) -> np.ndarray:
        check_eps_mu(epsilon=epsilon)
        fault_point("local.edge_query")
        hood = self.index.eps_neighborhood(v, epsilon)
        # Masking the σ row touches every stored slot of v's row.
        self.touched_edges += int(self.index.graph.degree(v))
        self.neighborhood_queries += 1
        return hood


class OracleTier(SigmaTier):
    """Tier 3: on-the-fly batched σ kernels (index-less graphs).

    Constructed lazily: the oracle's O(n + m) invariant precompute only
    runs if this tier actually serves a query, so an index-backed chain
    that never degrades stays output-proportional.
    """

    name = "oracle"
    fast_core_check = False

    def __init__(
        self,
        oracle: Optional[SimilarityOracle] = None,
        *,
        graph: Optional[Graph] = None,
        config: Optional[SimilarityConfig] = None,
    ) -> None:
        super().__init__()
        if oracle is None and graph is None:
            raise ConfigError("OracleTier needs an oracle or a graph")
        self._oracle = oracle
        self._graph = graph
        self._config = config

    @property
    def oracle(self) -> SimilarityOracle:
        if self._oracle is None:
            self._oracle = SimilarityOracle(self._graph, self._config)
        return self._oracle

    @property
    def count_self(self) -> bool:
        if self._oracle is not None:
            return bool(self._oracle.config.count_self)
        config = self._config or SimilarityConfig()
        return bool(config.count_self)

    def qualifying(self, v: int, epsilon: float) -> np.ndarray:
        check_eps_mu(epsilon=epsilon)
        # oracle.eps_neighborhood carries its own fault site
        # ("sigma.query") and charges the oracle's shared counters; the
        # tier keeps a per-query delta for the response stats.
        before = int(self.oracle.counters.sigma_evaluations)
        hood = self.oracle.eps_neighborhood(v, epsilon)
        self.sigma_evaluations += (
            int(self.oracle.counters.sigma_evaluations) - before
        )
        self.touched_edges += int(self.oracle.graph.degree(v))
        self.neighborhood_queries += 1
        return hood


def build_tiers(
    graph: Graph,
    *,
    cluster_index: Optional[ClusteringIndex] = None,
    edge_index: Optional[EdgeSimilarityIndex] = None,
    oracle: Optional[SimilarityOracle] = None,
    similarity_config: Optional[SimilarityConfig] = None,
) -> List[SigmaTier]:
    """Degradation chain of usable tiers, best first.

    Compatibility with ``graph`` (fingerprint) and the σ semantics is
    enforced up front — a stale index must fail loudly, not silently
    answer for the wrong graph.  The oracle tier is always appended as
    the last resort (built lazily from ``similarity_config`` when the
    caller did not pass one), so every chain can degrade to a tier that
    needs no precomputation.
    """
    tiers: List[SigmaTier] = []
    config = similarity_config
    if cluster_index is not None:
        cluster_index.require_compatible(graph=graph, config=config)
        config = config or cluster_index.config
        tiers.append(ClusterIndexTier(cluster_index))
        if edge_index is None:
            edge_index = cluster_index.edge
    if edge_index is not None:
        edge_index.require_compatible(graph=graph, config=config)
        config = config or edge_index.config
        tiers.append(EdgeIndexTier(edge_index))
    if oracle is not None:
        if config is not None and any(
            getattr(oracle.config, name) != getattr(config, name)
            for name in _SEMANTIC_FIELDS
        ):
            raise ConfigError(
                "oracle similarity semantics disagree with the supplied "
                "index/config"
            )
        tiers.append(OracleTier(oracle))
    else:
        # Pruning is a query-time optimization with no effect on the
        # σ values themselves; reuse the index's semantic fields but
        # keep the reference default (no pruning) like baselines.scan.
        if config is None:
            oracle_config = SimilarityConfig(pruning=False)
        else:
            oracle_config = SimilarityConfig(
                closed=config.closed,
                self_weight=config.self_weight,
                count_self=config.count_self,
                pruning=False,
                kind=config.kind,
            )
        tiers.append(OracleTier(graph=graph, config=oracle_config))
    return tiers
