"""Seeded local structural clustering (the per-user query primitive).

A user in a million-user deployment rarely wants the whole clustering —
they want the cluster around *their* vertex.  :func:`local_cluster`
answers that with work proportional to the output cluster (plus the
competing clusters needed to adjudicate contested borders), not the
graph, while remaining byte-identical to the seed's cluster in the
sequential reference ``scan``.  See DESIGN.md §12.
"""

from repro.local.cluster import (
    LocalClusterResult,
    LocalQueryStats,
    local_cluster,
)
from repro.local.tiers import (
    ClusterIndexTier,
    EdgeIndexTier,
    OracleTier,
    SigmaTier,
    build_tiers,
)

__all__ = [
    "LocalClusterResult",
    "LocalQueryStats",
    "local_cluster",
    "SigmaTier",
    "ClusterIndexTier",
    "EdgeIndexTier",
    "OracleTier",
    "build_tiers",
]
