"""Deterministic fault injection for failure-hardening tests.

Production deployments of the anytime-clustering stack must survive
worker crashes, shared-memory exhaustion, corrupt index files, and slow
or failing σ kernels.  This package provides the *controlled* version of
those disasters:

* :class:`FaultRule` / :class:`FaultPlan` — a seeded, serializable
  description of which named *fault sites* fail, when, and how;
* :func:`fault_point` — the lightweight hook the hardened layers call at
  each site; a single global read and ``None`` check when no plan is
  armed, so production code pays nothing;
* :func:`arm` / :func:`disarm` / :class:`armed` — process-wide plan
  activation (also via the :data:`FAULT_PLAN_ENV` environment variable,
  which is how pool worker processes and subprocess tests inherit a
  plan);
* :mod:`repro.faults.corruption` — seeded on-disk corruption helpers for
  the index-file battery.

The chaos suite (``pytest -m chaos``) runs the cross-backend
differential battery under randomized plans and asserts the invariant
the hardened stack guarantees by construction: injected faults *raise*,
*kill*, or *delay* — they never corrupt data — so any run that reports
success is byte-identical to the sequential reference.
"""

from repro.faults.plan import (
    FAULT_PLAN_ENV,
    FaultInjected,
    FaultPlan,
    FaultRule,
    active_plan,
    arm,
    armed,
    disarm,
    fault_point,
)

__all__ = [
    "FAULT_PLAN_ENV",
    "FaultInjected",
    "FaultPlan",
    "FaultRule",
    "active_plan",
    "arm",
    "armed",
    "disarm",
    "fault_point",
]
