"""Seeded on-disk corruption for the index-persistence battery.

The fault plan's raise/exit/delay kinds never damage data by
construction; *these* helpers do — deterministically — so the
checksum-verification and quarantine-and-rebuild paths of
:class:`~repro.similarity.index.EdgeSimilarityIndex` can be exercised
against realistic disk rot: flipped bytes mid-archive, truncated tails
(a crashed writer), and zeroed headers (a lost inode).
"""

from __future__ import annotations

import os
import random
from typing import Tuple

from repro.errors import ConfigError

__all__ = ["corrupt_file", "CORRUPTION_MODES"]

CORRUPTION_MODES: Tuple[str, ...] = ("flip", "truncate", "zero-header")


def corrupt_file(
    path, *, mode: str = "flip", seed: int = 0, amount: int = 16
) -> str:
    """Damage ``path`` in place; returns a description of what was done.

    ``flip`` XORs ``amount`` seeded byte positions, ``truncate`` drops
    the trailing half (at least ``amount`` bytes), ``zero-header``
    overwrites the first ``amount`` bytes (killing the zip magic of an
    ``.npz``).
    """
    if mode not in CORRUPTION_MODES:
        raise ConfigError(
            f"unknown corruption mode {mode!r}; expected one of "
            f"{CORRUPTION_MODES}"
        )
    if amount < 1:
        raise ConfigError("amount must be >= 1")
    size = os.path.getsize(path)
    if size == 0:
        raise ConfigError(f"cannot corrupt empty file {path!s}")
    rng = random.Random(f"corrupt:{int(seed)}:{mode}")
    if mode == "truncate":
        keep = max(0, min(size - amount, size // 2))
        with open(path, "r+b") as handle:
            handle.truncate(keep)
        return f"truncated {path!s} from {size} to {keep} bytes"
    with open(path, "r+b") as handle:
        if mode == "zero-header":
            span = min(amount, size)
            handle.seek(0)
            handle.write(b"\x00" * span)
            return f"zeroed the first {span} bytes of {path!s}"
        positions = sorted(
            rng.randrange(size) for _ in range(min(amount, size))
        )
        for position in positions:
            handle.seek(position)
            byte = handle.read(1)
            handle.seek(position)
            handle.write(bytes([byte[0] ^ (1 + rng.randrange(255))]))
        return f"flipped {len(positions)} bytes of {path!s}"
