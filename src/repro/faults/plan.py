"""Seeded fault plans and the ``fault_point`` hook.

A :class:`FaultPlan` is the process-wide description of which named
fault sites misbehave.  Hardened code marks its failure-prone moments
with ``fault_point("some.site")``; when a plan is armed and one of its
rules matches the site, the hook raises a configured exception, kills
the process (``os._exit`` — the worker-death simulation), or sleeps (the
slow-kernel / stalled-client simulation).  With no plan armed the hook
is one global read and a ``None`` check.

Determinism: every probabilistic decision comes from a per-rule
``random.Random`` stream seeded from ``(plan seed, rule index, site)``,
and visit counters advance under one lock — the same plan against the
same call sequence makes the same decisions.  Plans serialize to JSON so
a failing chaos run can ship the exact plan that broke it.
"""

from __future__ import annotations

import fnmatch
import json
import os
import random
import threading
import time
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigError, ReproError

__all__ = [
    "FAULT_PLAN_ENV",
    "FaultInjected",
    "FaultPlan",
    "FaultRule",
    "active_plan",
    "arm",
    "armed",
    "disarm",
    "fault_point",
]

#: Environment variable holding a JSON-serialized plan.  Read at import
#: time, so pool workers spawned with it set (and fork children, which
#: inherit the armed module state directly) run under the same plan.
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"


class FaultInjected(ReproError):
    """The default failure a fault rule raises at its site."""

    def __init__(self, site: str) -> None:
        super().__init__(f"injected fault at {site!r}")
        self.site = site


#: Exception types a ``raise`` rule may name.  Restricted to a fixed
#: registry so plans stay serializable and cannot smuggle arbitrary
#: constructors through JSON.
_EXCEPTIONS: Dict[str, type] = {
    "FaultInjected": FaultInjected,
    "OSError": OSError,
    "MemoryError": MemoryError,
    "ValueError": ValueError,
    "TimeoutError": TimeoutError,
    "ConnectionResetError": ConnectionResetError,
    "RuntimeError": RuntimeError,
}

_KINDS = ("raise", "exit", "delay")


@dataclass(frozen=True)
class FaultRule:
    """One failure: where (site pattern), when (after/times/probability),
    and how (raise an exception, exit the process, or sleep)."""

    site: str
    kind: str = "raise"
    #: Visits of the site to let through before the rule becomes eligible.
    after: int = 0
    #: Maximum firings (``None`` = unlimited).
    times: Optional[int] = 1
    #: Chance an eligible visit fires, from the rule's seeded stream.
    probability: float = 1.0
    #: Sleep duration for ``kind="delay"`` (seconds).
    delay: float = 0.01
    #: Exception name (registry key) for ``kind="raise"``.
    exception: str = "FaultInjected"
    #: Process exit status for ``kind="exit"``.
    exit_code: int = 86

    def __post_init__(self) -> None:
        if not self.site:
            raise ConfigError("fault rule needs a non-empty site")
        if self.kind not in _KINDS:
            raise ConfigError(
                f"unknown fault kind {self.kind!r}; expected one of {_KINDS}"
            )
        if self.exception not in _EXCEPTIONS:
            raise ConfigError(
                f"unknown fault exception {self.exception!r}; expected one "
                f"of {sorted(_EXCEPTIONS)}"
            )
        if self.after < 0:
            raise ConfigError("after must be >= 0")
        if self.times is not None and self.times < 1:
            raise ConfigError("times must be >= 1 (or None for unlimited)")
        if not 0.0 <= self.probability <= 1.0:
            raise ConfigError("probability must be in [0, 1]")
        if self.delay < 0:
            raise ConfigError("delay must be >= 0")

    def matches(self, site: str) -> bool:
        if any(ch in self.site for ch in "*?["):
            return fnmatch.fnmatchcase(site, self.site)
        return site == self.site


class FaultPlan:
    """A set of :class:`FaultRule` with deterministic runtime state."""

    def __init__(
        self,
        rules: Sequence[FaultRule],
        *,
        seed: int = 0,
        name: str = "",
    ) -> None:
        self.rules: Tuple[FaultRule, ...] = tuple(rules)
        self.seed = int(seed)
        self.name = str(name)
        self._lock = threading.Lock()
        self._visits: Dict[str, int] = {}
        self._fired: List[int] = [0] * len(self.rules)
        self._streams = [
            random.Random(f"{self.seed}:{index}:{rule.site}")
            for index, rule in enumerate(self.rules)
        ]

    # ------------------------------------------------------------------
    # the hot path
    # ------------------------------------------------------------------
    def trigger(self, site: str) -> None:
        """Record one visit of ``site`` and fire the first eligible rule."""
        action: Optional[FaultRule] = None
        with self._lock:
            visits = self._visits.get(site, 0) + 1
            self._visits[site] = visits
            for index, rule in enumerate(self.rules):
                if not rule.matches(site):
                    continue
                if visits <= rule.after:
                    continue
                if rule.times is not None and self._fired[index] >= rule.times:
                    continue
                if (
                    rule.probability < 1.0
                    and self._streams[index].random() >= rule.probability
                ):
                    continue
                self._fired[index] += 1
                action = rule
                break
        if action is None:
            return
        if action.kind == "delay":
            time.sleep(action.delay)
            return
        if action.kind == "exit":
            # The worker-death simulation: no cleanup, no excepthook —
            # exactly what an OOM kill looks like to the parent.
            os._exit(action.exit_code)
        exc_cls = _EXCEPTIONS[action.exception]
        if exc_cls is FaultInjected:
            raise FaultInjected(site)
        raise exc_cls(f"injected {action.exception} at {site!r}")

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def report(self) -> Dict[str, object]:
        """Visit counts and per-rule firing counts (JSON-ready)."""
        with self._lock:
            return {
                "name": self.name,
                "seed": self.seed,
                "visits": dict(self._visits),
                "fired": [
                    {"site": rule.site, "kind": rule.kind, "count": count}
                    for rule, count in zip(self.rules, self._fired)
                ],
            }

    def fired_total(self) -> int:
        with self._lock:
            return sum(self._fired)

    # ------------------------------------------------------------------
    # (de)serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "seed": self.seed,
            "rules": [asdict(rule) for rule in self.rules],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FaultPlan":
        if not isinstance(data, dict) or "rules" not in data:
            raise ConfigError("fault plan must be an object with 'rules'")
        specs = data["rules"]
        if not isinstance(specs, list):
            raise ConfigError("fault plan 'rules' must be a list")
        rules = []
        for spec in specs:
            if not isinstance(spec, dict):
                raise ConfigError("each fault rule must be an object")
            unknown = set(spec) - {f for f in FaultRule.__dataclass_fields__}
            if unknown:
                raise ConfigError(
                    f"unknown fault rule fields {sorted(unknown)}"
                )
            rules.append(FaultRule(**spec))
        return cls(
            rules,
            seed=int(data.get("seed", 0)),  # type: ignore[arg-type]
            name=str(data.get("name", "")),
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            data = json.loads(text)
        except ValueError as exc:
            raise ConfigError(f"invalid fault plan JSON: {exc}") from exc
        return cls.from_dict(data)

    # ------------------------------------------------------------------
    # randomized plans for the chaos battery
    # ------------------------------------------------------------------
    @classmethod
    def random(
        cls,
        seed: int,
        *,
        sites: Sequence[str],
        exit_sites: Sequence[str] = (),
        max_rules: int = 3,
    ) -> "FaultPlan":
        """A seeded random plan over a site vocabulary.

        ``exit_sites`` lists the sites where process death is survivable
        (worker chunks); ``kind="exit"`` rules are only generated there —
        an exit anywhere else would kill the test process itself.
        """
        rng = random.Random(f"fault-plan:{int(seed)}")
        rules: List[FaultRule] = []
        for _ in range(rng.randint(1, max(1, int(max_rules)))):
            site = rng.choice(list(sites))
            kinds = ["raise", "raise", "delay"]
            if site in exit_sites:
                kinds.append("exit")
            kind = rng.choice(kinds)
            rules.append(
                FaultRule(
                    site=site,
                    kind=kind,
                    after=rng.randint(0, 4),
                    times=rng.randint(1, 3),
                    probability=rng.choice([1.0, 1.0, 0.5]),
                    delay=rng.uniform(0.001, 0.02),
                )
            )
        return cls(rules, seed=int(seed), name=f"random-{int(seed)}")


# ----------------------------------------------------------------------
# process-wide arming
# ----------------------------------------------------------------------
_ARM_LOCK = threading.Lock()
_ACTIVE: Optional[FaultPlan] = None


def fault_point(site: str) -> None:
    """Hardened code calls this at each named failure-prone moment.

    Zero-cost when nothing is armed: one module-global read and a
    ``None`` check.
    """
    plan = _ACTIVE
    if plan is not None:
        plan.trigger(site)


def arm(plan: FaultPlan) -> FaultPlan:
    """Make ``plan`` the process-wide active plan; returns it."""
    global _ACTIVE
    with _ARM_LOCK:
        _ACTIVE = plan
    return plan


def disarm() -> None:
    """Deactivate fault injection process-wide."""
    global _ACTIVE
    with _ARM_LOCK:
        _ACTIVE = None


def active_plan() -> Optional[FaultPlan]:
    return _ACTIVE


@dataclass
class armed:
    """Context manager arming a plan for one block, restoring the prior
    plan (usually ``None``) afterwards::

        with armed(FaultPlan([FaultRule(site="index.load")])):
            ...
    """

    plan: FaultPlan
    _previous: Optional[FaultPlan] = field(default=None, repr=False)

    def __enter__(self) -> FaultPlan:
        global _ACTIVE
        with _ARM_LOCK:
            self._previous = _ACTIVE
            _ACTIVE = self.plan
        return self.plan

    def __exit__(self, *exc_info: object) -> None:
        global _ACTIVE
        with _ARM_LOCK:
            _ACTIVE = self._previous


def _arm_from_env() -> None:
    text = os.environ.get(FAULT_PLAN_ENV)
    if text:
        arm(FaultPlan.from_json(text))


_arm_from_env()
