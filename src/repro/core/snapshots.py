"""Anytime snapshots: the intermediate results anySCAN exposes.

After every block iteration anySCAN emits a :class:`Snapshot` — the
best-so-far clustering plus the cumulative cost counters.  Users suspend
the algorithm simply by not pulling the next snapshot, examine the
intermediate clustering, and resume by continuing the iteration; this is
the interactivity the paper's Figure 5 measures.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.result import Clustering

__all__ = ["Snapshot"]


@dataclass(frozen=True)
class Snapshot:
    """State of an anySCAN run after one anytime iteration.

    Attributes
    ----------
    step:
        Which of the four steps produced this snapshot
        (``"summarize"``, ``"merge-strong"``, ``"merge-weak"``,
        ``"borders"``).
    iteration:
        Global iteration index (0-based, monotonically increasing).
    labels:
        Best-so-far vertex labels: cluster root ids ≥ 0, -1 for vertices
        not (yet) assigned to any cluster.
    num_supernodes, num_clusters:
        Size of the underlying summary structure.
    work_units:
        Cumulative abstract work (see
        :class:`~repro.similarity.counters.SimilarityCounters`).
    sigma_evaluations:
        Cumulative σ evaluations so far.
    union_calls:
        Cumulative ``Union`` operations on the super-node labels.
    wall_time:
        Real elapsed seconds since the run started.
    final:
        Whether this is the last snapshot (the exact SCAN result).
    """

    step: str
    iteration: int
    labels: np.ndarray
    num_supernodes: int
    num_clusters: int
    work_units: float
    sigma_evaluations: int
    union_calls: int
    wall_time: float
    final: bool = False

    def clustering(self) -> Clustering:
        """Best-so-far labels as a :class:`~repro.result.Clustering`.

        Unassigned vertices are treated as outliers; the final snapshot
        of a run distinguishes hubs via
        :meth:`repro.core.anyscan.AnySCAN.result` instead.
        """
        labels = self.labels.copy()
        labels[labels < 0] = -2
        return Clustering(labels=labels).canonical()

    @property
    def assigned_fraction(self) -> float:
        """Fraction of vertices already carrying a cluster label."""
        if self.labels.shape[0] == 0:
            return 1.0
        return float((self.labels >= 0).sum() / self.labels.shape[0])
