"""Exact SCAN on a real execution backend (Figure 4, executed for real).

The σ-evaluation / range-query phase dominates SCAN's runtime and is
embarrassingly parallel; everything after it (core test, cluster
expansion, hub/outlier split) is a cheap sequential epilogue.  This
module runs that dominant phase on a registry backend — real threads or
a shared-memory process pool — and then replays exactly the cluster
expansion of :func:`repro.baselines.scan.scan`, so for a given ``seed``
the result is **byte-identical** to the sequential reference regardless
of worker count, chunk size, or backend kind.  The cross-backend
differential tests pin this conformance contract.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.baselines._postprocess import finalize_clustering
from repro.graph.csr import Graph
from repro.parallel.backends import (
    Backend,
    close_backend,
    create_backend,
    run_range_queries,
)
from repro.result import Clustering
from repro.similarity.gsindex import ClusteringIndex
from repro.similarity.weighted import SimilarityConfig
from repro.validation import check_eps_mu

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.similarity.index import EdgeSimilarityIndex

__all__ = ["parallel_scan"]


def _expand_clusters(
    hoods: Sequence[np.ndarray],
    core_mask: np.ndarray,
    seed: int,
) -> np.ndarray:
    """Replay scan()'s BFS expansion over precomputed neighborhoods.

    Mirrors the reference loop statement for statement (same RNG, same
    first-cluster-wins rule for shared borders), so the labels match the
    sequential algorithm exactly — not merely up to renaming.
    """
    n = core_mask.shape[0]
    labels = np.full(n, -3, dtype=np.int64)  # -3: not yet classified
    rng = np.random.default_rng(seed)
    order = rng.permutation(n)
    next_cluster = 0
    for start in order:
        start = int(start)
        if labels[start] != -3:
            continue
        if not core_mask[start]:
            labels[start] = -4  # provisional non-member
            continue
        cid = next_cluster
        next_cluster += 1
        labels[start] = cid
        queue = deque([start])
        while queue:
            v = queue.popleft()
            if not core_mask[v]:
                continue
            labels[v] = cid
            for q in hoods[v]:
                q = int(q)
                if labels[q] == -3 or labels[q] == -4:
                    labels[q] = cid
                    queue.append(q)
    labels[labels == -3] = -4
    return labels


def parallel_scan(
    graph: Graph,
    mu: int,
    epsilon: float,
    *,
    backend: Backend | str = "auto",
    workers: int | None = None,
    config: SimilarityConfig | None = None,
    seed: int = 0,
    index: "EdgeSimilarityIndex | ClusteringIndex | None" = None,
) -> Clustering:
    """Cluster ``graph`` with SCAN, σ phase on a real parallel backend.

    Parameters
    ----------
    graph, mu, epsilon:
        As for :func:`repro.baselines.scan.scan`.
    backend:
        A registry name (``"thread" | "process" | "auto"``) or an
        already-built backend object.  A backend built here is also
        closed here; a caller-supplied object stays open for reuse.
    workers:
        Pool width when ``backend`` is a registry name.
    config:
        Similarity semantics (defaults match the sequential reference).
    seed:
        Vertex-visit order; the same seed makes the result byte-identical
        to ``scan(graph, mu, epsilon, seed=seed)``.
    index:
        A prebuilt :class:`~repro.similarity.index.EdgeSimilarityIndex`
        or :class:`~repro.similarity.gsindex.ClusteringIndex`; when
        given, the σ phase is answered entirely from it (zero σ
        evaluations, no backend traffic) — the interactive re-clustering
        path.  A clustering index goes further: the whole query becomes
        a union-find extraction (no BFS either), still byte-identical to
        the sequential reference.  Raises
        :class:`~repro.errors.ConfigError` when the index does not match
        ``graph`` or ``config``.
    """
    check_eps_mu(mu=mu, epsilon=epsilon)
    config = config or SimilarityConfig(pruning=False)
    if isinstance(index, ClusteringIndex):
        index.require_compatible(graph=graph, config=config)
        return index.query(epsilon, mu, seed=seed)
    if index is not None:
        index.require_compatible(graph=graph, config=config)
        hoods = [
            index.eps_neighborhood(v, epsilon)
            for v in range(graph.num_vertices)
        ]
    else:
        owned = isinstance(backend, str)
        resolved: Backend = (
            create_backend(backend, workers=workers) if owned else backend
        )
        try:
            hoods = run_range_queries(
                graph,
                range(graph.num_vertices),
                epsilon,
                backend=resolved,
                config=config,
            )
        finally:
            if owned:
                close_backend(resolved)
    self_count = 1 if config.count_self else 0
    sizes = np.asarray([h.shape[0] for h in hoods], dtype=np.int64)
    core_mask = sizes + self_count >= mu
    labels = _expand_clusters(hoods, core_mask, seed)
    return finalize_clustering(graph, labels, core_mask)
