"""The paper's contribution: anySCAN, its parallel model, exploration."""

from repro.core.anyscan import AnySCAN
from repro.core.backend_scan import parallel_scan
from repro.core.config import AnyScanConfig
from repro.core.explorer import ParameterExplorer
from repro.core.hierarchy import ClusterNode, EpsilonHierarchy
from repro.core.snapshots import Snapshot

__all__ = [
    "AnySCAN",
    "AnyScanConfig",
    "Snapshot",
    "ParameterExplorer",
    "EpsilonHierarchy",
    "ClusterNode",
    "parallel_scan",
]
