"""Configuration of anySCAN."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.similarity.weighted import SimilarityConfig

__all__ = ["AnyScanConfig"]


@dataclass(frozen=True)
class AnyScanConfig:
    """All knobs of anySCAN.

    Attributes
    ----------
    mu, epsilon:
        SCAN's density parameters (Definition 3).  Paper defaults μ=5,
        ε=0.5.
    alpha:
        Step 1 block size: how many untouched vertices are summarized per
        anytime iteration (paper default 8192; 32768 in the multicore
        experiments).
    beta:
        Step 2/3 block size: how many candidate vertices are examined per
        anytime iteration.
    seed:
        Randomization of the Step 1 vertex selection.
    sort_candidates:
        Sort Step 2 candidates by super-node membership count and Step 3
        candidates by degree (both descending), as the paper prescribes;
        the ablation bench switches this off.
    similarity:
        Similarity semantics (closed neighborhoods, pruning, …) shared
        with every baseline through the oracle.
    validate_states:
        Enforce the Figure 3 transition schema at every state change
        (Theorem 1); a violation raises instead of corrupting results.
    record_costs:
        Record per-task parallel cost logs for the multicore simulator.
    """

    mu: int = 5
    epsilon: float = 0.5
    alpha: int = 8192
    beta: int = 8192
    seed: int = 0
    sort_candidates: bool = True
    similarity: SimilarityConfig = field(default_factory=SimilarityConfig)
    validate_states: bool = True
    record_costs: bool = True

    def validate(self) -> None:
        if self.mu < 1:
            raise ConfigError("mu must be a positive integer")
        if not 0.0 < self.epsilon <= 1.0:
            raise ConfigError("epsilon must be in (0, 1]")
        if self.alpha < 1:
            raise ConfigError("alpha must be >= 1")
        if self.beta < 1:
            raise ConfigError("beta must be >= 1")
        self.similarity.validate()
