"""anySCAN: the paper's anytime, parallelizable structural clustering.

The algorithm processes vertices in blocks through four steps
(Section III-A, Figure 2):

1. **Summarization** — random untouched vertices are range-queried; core
   vertices become *super-nodes* holding their ε-neighborhood, noise
   vertices go to the noise list ``L``.
2. **Merging strongly-related super-nodes** — unprocessed-border vertices
   shared by ≥ 2 super-nodes are core-checked; a shared core merges all
   its super-nodes (Lemma 2).
3. **Merging weakly-related super-nodes** — remaining candidate vertices
   are examined for core-core edges across clusters (Lemma 3).
4. **Determining border vertices** — noise-list vertices adjacent to a
   core are promoted to borders; the rest are hubs/outliers.

After every block iteration the algorithm yields a
:class:`~repro.core.snapshots.Snapshot`, so callers can suspend, inspect
the best-so-far clustering, and resume — the *anytime* contract.  The
final snapshot's clustering equals SCAN's (Lemma 4), which the test suite
checks against :func:`repro.baselines.scan.scan` on hundreds of random
graphs.

Implementation notes
--------------------
* Evaluated σ values are cached per edge, so every pair is evaluated at
  most once across all steps (the paper's work-efficiency argument; the
  cache also powers ``nei``/``dis`` bookkeeping, the per-vertex counts of
  confirmed ε-similar / ε-dissimilar neighbors).
* Vertex states move through the Figure 3 schema, enforced by
  :class:`~repro.structures.state.StateMachine` (Theorem 1).
* When ``record_costs`` is on, every OpenMP-parallel loop of Figure 4 is
  logged as a :class:`~repro.parallel.costs.ParallelBlock` with measured
  per-task work, for replay on the multicore simulator.
"""

from __future__ import annotations

import time
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.baselines._postprocess import finalize_clustering
from repro.core.config import AnyScanConfig
from repro.core.snapshots import Snapshot
from repro.errors import ConfigError, ReproError
from repro.graph.csr import Graph
from repro.parallel.costs import IterationCosts
from repro.result import Clustering
from repro.similarity.weighted import SimilarityOracle
from repro.structures.state import StateMachine, VertexState
from repro.structures.supernode import SuperNodeIndex

__all__ = ["AnySCAN"]

_S = VertexState

# Abstract cost constants (work units) for non-similarity operations; the
# similarity work dominates, matching the paper's observation that the
# sequential parts are negligible.
_MARK_COST = 0.2          # marking one neighbor's state
_SUPERNODE_COST = 0.15    # inserting one member into a super-node
_FIND_COST = 0.1          # one Findset
_SCAN_COST = 0.1          # touching one adjacency entry
_UNION_COST = 1.0         # one Union (executed inside a critical section)


class AnySCAN:
    """One anySCAN run over a fixed graph and parameter set.

    Parameters
    ----------
    graph:
        The undirected, optionally weighted graph.
    config:
        Algorithm parameters; defaults follow the paper (μ=5, ε=0.5,
        α=β=8192).
    oracle:
        Similarity oracle to reuse; built from ``config.similarity``
        otherwise.

    Examples
    --------
    >>> algo = AnySCAN(graph, AnyScanConfig(mu=5, epsilon=0.5))
    >>> for snap in algo.iterations():
    ...     if snap.num_clusters >= 10:   # satisfied with the preview
    ...         break
    >>> final = algo.run()                # resume to the exact result
    """

    def __init__(
        self,
        graph: Graph,
        config: AnyScanConfig | None = None,
        *,
        oracle: SimilarityOracle | None = None,
    ) -> None:
        self.graph = graph
        self.config = config or AnyScanConfig()
        self.config.validate()
        if oracle is not None:
            mine = self.config.similarity
            theirs = oracle.config
            mismatched = [
                name
                for name in ("kind", "closed", "self_weight", "count_self")
                if getattr(mine, name) != getattr(theirs, name)
            ]
            if mismatched:
                raise ConfigError(
                    "supplied oracle disagrees with config.similarity on "
                    f"{mismatched}; anySCAN would silently cluster under "
                    "different semantics — pass a matching oracle or config"
                )
        self.oracle = oracle or SimilarityOracle(graph, self.config.similarity)

        n = graph.num_vertices
        self._states = StateMachine(n, validate=self.config.validate_states)
        self._sn = SuperNodeIndex(n)
        self._nei = np.zeros(n, dtype=np.int64)  # confirmed ε-similar nbrs
        self._dis = np.zeros(n, dtype=np.int64)  # confirmed dissimilar nbrs
        self._sim_cache: Dict[Tuple[int, int], bool] = {}
        self._noise_list: List[Tuple[int, np.ndarray]] = []
        self._border_anchor: Dict[int, int] = {}
        self._self_count = 1 if self.oracle.config.count_self else 0

        self.cost_log: List[IterationCosts] = []
        self.union_calls_by_step: Dict[str, int] = {}
        self._iteration_index = 0
        self._compute_seconds = 0.0
        self._finished = False
        self._generator: Optional[Iterator[Snapshot]] = None
        # Explicit anytime cursor.  All suspension state lives here (and
        # in the structures above) rather than inside a live generator
        # frame, so a suspended run pickles and resumes elsewhere.
        self._cursor: Dict[str, object] = {
            "phase": "step1",     # step1 -> step2 -> step3 -> step4
            "order": None,        # Step 1 random vertex permutation
            "pos": 0,             # Step 1 position in the permutation
            "candidates": None,   # Step 2/3 candidate list (per phase)
            "cpos": 0,            # Step 2/3 position in the candidates
            "first": True,        # Step 2/3: charge the sort cost once
        }

        # Vertices that can never be core are known immediately from their
        # degree (Figure 3: untouched -> unprocessed-noise without a query).
        mu = self.config.mu
        for v in range(n):
            if self.oracle.max_possible_eps_neighbors(v) < mu:
                self._states.set(v, _S.UNPROCESSED_NOISE)

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def iterations(self) -> Iterator[Snapshot]:
        """The anytime iterator: one :class:`Snapshot` per block iteration.

        The same iterator is returned on repeated calls, so a consumer can
        stop pulling (suspend), hand the object elsewhere, and continue
        (resume) later.
        """
        if self._generator is None:
            self._generator = self._run_generator()
        return self._generator

    def advance(self) -> Optional[Snapshot]:
        """Run one anytime block iteration; ``None`` once finished.

        The imperative twin of :meth:`iterations` (both drive the same
        cursor, so they can be mixed freely).  Because no generator frame
        is involved, a consumer that only ever calls ``advance`` can
        pickle the instance between any two calls — the suspend/resume
        contract the service scheduler relies on.
        """
        while not self._finished:
            phase = self._cursor["phase"]
            if phase == "step1":
                block = self._next_step1_block()
                if block is not None:
                    return self._timed_block(
                        "summarize", lambda: self._step1_block(block)
                    )
                self._enter_candidate_phase("step2")
            elif phase == "step2":
                block = self._next_candidate_block()
                if block is not None:
                    return self._run_candidate_block(
                        "merge-strong", self._step2_block, block
                    )
                self._enter_candidate_phase("step3")
            elif phase == "step3":
                block = self._next_candidate_block()
                if block is not None:
                    return self._run_candidate_block(
                        "merge-weak", self._step3_block, block
                    )
                self._cursor["phase"] = "step4"
            else:  # step4: one terminal iteration
                started = time.perf_counter()
                self._step4_body()
                self._compute_seconds += time.perf_counter() - started
                self._finished = True
                return self._make_snapshot(step="borders", final=True)
        return None

    def run(self) -> Clustering:
        """Drain the remaining iterations and return the exact result."""
        for _ in self.iterations():
            pass
        return self.result()

    def result(self) -> Clustering:
        """Final clustering (requires the run to have finished)."""
        if not self._finished:
            raise ReproError(
                "anySCAN has not finished; use snapshot() for intermediate "
                "results or run() to completion"
            )
        labels = self._current_labels()
        labels[labels < 0] = -4
        core_mask = np.asarray(
            [self._states.is_core(v) for v in range(self.graph.num_vertices)]
        )
        return finalize_clustering(self.graph, labels, core_mask)

    def snapshot(self) -> Snapshot:
        """Best-so-far state without advancing the algorithm."""
        return self._make_snapshot(
            step="current", final=self._finished, advance=False
        )

    @property
    def finished(self) -> bool:
        """Whether the final (exact) result has been reached."""
        return self._finished

    @property
    def states(self) -> StateMachine:
        """Vertex state machine (read access for inspection/tests)."""
        return self._states

    @property
    def supernodes(self) -> SuperNodeIndex:
        """The super-node index (read access for inspection/tests)."""
        return self._sn

    def statistics(self) -> Dict[str, object]:
        """Run statistics: counters the figures of the paper are built from."""
        counters = self.oracle.counters
        labels_dsu = self._sn.labels
        return {
            "sigma_evaluations": counters.sigma_evaluations,
            "pruned_lemma5": counters.pruned_lemma5,
            "early_exits": counters.early_exits,
            "neighborhood_queries": counters.neighborhood_queries,
            "work_units": counters.work_units,
            "num_supernodes": len(self._sn),
            "union_calls": labels_dsu.union_calls,
            "effective_unions": labels_dsu.effective_unions,
            "union_calls_by_step": dict(self.union_calls_by_step),
            "noise_list_size": len(self._noise_list),
            "state_counts": {
                state.name: count
                for state, count in self._states.counts().items()
            },
            "compute_seconds": self._compute_seconds,
        }

    # ------------------------------------------------------------------
    # similarity plumbing
    # ------------------------------------------------------------------
    def _similar(self, u: int, v: int) -> bool:
        """Cached σ(u, v) ≥ ε with nei/dis bookkeeping for both ends."""
        key = (u, v) if u < v else (v, u)
        hit = self._sim_cache.get(key)
        if hit is not None:
            return hit
        result = self.oracle.similar(u, v, self.config.epsilon)
        self._sim_cache[key] = result
        for x in key:
            if result:
                self._bump_nei(x)
            else:
                self._dis[x] += 1
        return result

    def _bump_nei(self, v: int) -> None:
        """Increment nei(v); promote to unprocessed-core at the μ threshold.

        Only *unprocessed-border* vertices are promoted: they already
        belong to a super-node, so the new core's cluster is represented.
        An untouched vertex crossing μ stays untouched until either a core
        claims it (Step 1 block B promotes it then) or its own range query
        runs.
        """
        self._nei[v] += 1
        if self._nei[v] + self._self_count >= self.config.mu:
            if self._states.get(v) == _S.UNPROCESSED_BORDER:
                self._states.set(v, _S.UNPROCESSED_CORE)

    def _range_query(self, p: int) -> np.ndarray:
        """Full ε-neighborhood of ``p`` (Step 1's expensive operation)."""
        passing = [
            int(q) for q in self.graph.neighbors(p) if self._similar(p, int(q))
        ]
        return np.asarray(passing, dtype=np.int64)

    def _core_check(self, p: int) -> bool:
        """Resolve whether ``p`` is a core, evaluating as little as possible.

        Walks ``p``'s unevaluated neighbors until either nei(p) reaches μ
        (core — stop early, the Step 2/3 saving) or the remaining
        candidates cannot reach it (non-core).
        """
        mu = self.config.mu
        if self._states.is_core(p):
            return True
        row = self.graph.neighbors(p)
        unevaluated = [
            int(q)
            for q in row
            if ((p, int(q)) if p < q else (int(q), p)) not in self._sim_cache
        ]
        remaining = len(unevaluated)
        for q in unevaluated:
            if self._nei[p] + self._self_count >= mu:
                break
            if self._nei[p] + remaining + self._self_count < mu:
                break
            self._similar(p, q)
            remaining -= 1
        return self._nei[p] + self._self_count >= mu

    def _clu(self, v: int) -> int:
        """Cluster root of ``v`` through its first super-node (-1 if none)."""
        return self._sn.cluster_of_vertex(v)

    def _merge_supernodes(self, sid_a: int, sid_b: int, step: str) -> bool:
        """Union two super-node clusters, attributing the call to ``step``."""
        merged = self._sn.merge(sid_a, sid_b)
        self.union_calls_by_step[step] = (
            self.union_calls_by_step.get(step, 0) + 1
        )
        return merged

    # ------------------------------------------------------------------
    # labeling
    # ------------------------------------------------------------------
    def _current_labels(self) -> np.ndarray:
        """Best-so-far labels: super-node clusters plus Step 4 anchors."""
        labels = self._sn.vertex_labels()
        for v, anchor in self._border_anchor.items():
            if labels[v] < 0:
                labels[v] = labels[anchor]
        return labels

    def _make_snapshot(
        self, step: str, *, final: bool, advance: bool = True
    ) -> Snapshot:
        labels = self._current_labels()
        assigned = labels[labels >= 0]
        num_clusters = (
            int(np.unique(assigned).shape[0]) if assigned.shape[0] else 0
        )
        counters = self.oracle.counters
        snap = Snapshot(
            step=step,
            iteration=self._iteration_index,
            labels=labels,
            num_supernodes=len(self._sn),
            num_clusters=num_clusters,
            work_units=counters.work_units,
            sigma_evaluations=counters.sigma_evaluations,
            union_calls=self._sn.labels.union_calls,
            wall_time=self._compute_seconds,
            final=final,
        )
        if advance:
            self._iteration_index += 1
        return snap

    # ------------------------------------------------------------------
    # the anytime loop
    # ------------------------------------------------------------------
    def _run_generator(self) -> Iterator[Snapshot]:
        while True:
            snap = self.advance()
            if snap is None:
                return
            yield snap

    def __getstate__(self) -> Dict[str, object]:
        # Generator frames cannot pickle; every bit of suspension state
        # lives in the cursor and the structures, so dropping the frame
        # loses nothing — iterations() lazily rebuilds it after load.
        state = self.__dict__.copy()
        state["_generator"] = None
        return state

    def _timed_block(self, step: str, work) -> Snapshot:
        started = time.perf_counter()
        work()
        self._compute_seconds += time.perf_counter() - started
        return self._make_snapshot(step=step, final=False)

    def _open_iteration(self, step: str) -> IterationCosts:
        record = IterationCosts(step=step, index=self._iteration_index)
        if self.config.record_costs:
            self.cost_log.append(record)
        return record

    # ---------------------------- Step 1 ------------------------------
    def _next_step1_block(self) -> Optional[List[int]]:
        """The next block of α untouched vertices, or None when exhausted."""
        cursor = self._cursor
        if cursor["order"] is None:
            rng = np.random.default_rng(self.config.seed)
            cursor["order"] = rng.permutation(self.graph.num_vertices)
        order = cursor["order"]
        pos = int(cursor["pos"])
        n = self.graph.num_vertices
        block_vertices: List[int] = []
        while pos < n and len(block_vertices) < self.config.alpha:
            v = int(order[pos])
            pos += 1
            if self._states.is_untouched(v):
                block_vertices.append(v)
        cursor["pos"] = pos
        return block_vertices or None

    def _step1_block(self, block_vertices: List[int]) -> None:
        record = self._open_iteration("summarize")
        counters = self.oracle.counters
        # Parallel block A (Figure 4 lines 6-9): range queries into buffers.
        block_a = record.new_block("step1/range-queries")
        hoods: Dict[int, np.ndarray] = {}
        core_flags: Dict[int, bool] = {}
        mu = self.config.mu
        for p in block_vertices:
            before = counters.work_units
            hood = self._range_query(p)
            hoods[p] = hood
            core_flags[p] = hood.shape[0] + self._self_count >= mu
            block_a.add_task(counters.work_units - before)

        # Parallel block B (lines 10-15): mark neighbor states, atomically
        # bump nei counts (the bumps themselves happened inside the cached
        # range queries; here we account the atomics and mark states).
        block_b = record.new_block("step1/mark-neighbors")
        for p in block_vertices:
            hood = hoods[p]
            block_b.atomic_ops += int(hood.shape[0])
            block_b.add_task(_MARK_COST * float(hood.shape[0]))
            if not core_flags[p]:
                continue
            for q in hood:
                q = int(q)
                state = self._states.get(q)
                if state == _S.UNTOUCHED:
                    self._states.set(q, _S.UNPROCESSED_BORDER)
                    if self._nei[q] + self._self_count >= mu:
                        self._states.set(q, _S.UNPROCESSED_CORE)
                elif state in (_S.UNPROCESSED_NOISE, _S.PROCESSED_NOISE):
                    self._states.set(q, _S.PROCESSED_BORDER)
                # unprocessed-border promotion to unprocessed-core is done
                # by _bump_nei at evaluation time (same atomic).

        # Sequential part (lines 16-24): super-node insertion and the
        # Step 1 strong unions for already-known cores.
        sequential = 0.0
        for p in block_vertices:
            hood = hoods[p]
            if core_flags[p]:
                self._states.set(p, _S.PROCESSED_CORE)
                node = self._sn.add(p, hood)
                sequential += _SUPERNODE_COST * float(len(node))
                for q in hood:
                    q = int(q)
                    if self._states.is_core(q):
                        for sid in self._sn.supernodes_of(q):
                            if sid != node.sid and not self._sn.labels.same(
                                node.sid, sid
                            ):
                                self._merge_supernodes(node.sid, sid, "step1")
                                sequential += _UNION_COST
                        sequential += _FIND_COST * len(
                            self._sn.supernodes_of(q)
                        )
            elif self._states.get(p) == _S.UNPROCESSED_BORDER:
                # A core elsewhere in this block claimed p meanwhile: it is
                # a border of that cluster, not noise (Figure 3).
                self._states.set(p, _S.PROCESSED_BORDER)
            else:
                self._states.set(p, _S.PROCESSED_NOISE)
                self._noise_list.append((p, hood))
                sequential += _SUPERNODE_COST
        record.sequential_cost = sequential

    # ---------------------- Step 2/3 block cursor ---------------------
    def _enter_candidate_phase(self, phase: str) -> None:
        cursor = self._cursor
        cursor["phase"] = phase
        cursor["candidates"] = None
        cursor["cpos"] = 0
        cursor["first"] = True

    def _prepare_candidates(self) -> None:
        """Materialize (and sort) the current phase's candidate list."""
        cursor = self._cursor
        if cursor["phase"] == "step2":
            candidates = [
                int(v)
                for v in self._states.vertices_in(_S.UNPROCESSED_BORDER)
                if self._sn.membership_count(int(v)) >= 2
            ]
            if self.config.sort_candidates:
                candidates.sort(key=self._sn.membership_count, reverse=True)
        else:
            candidates = [
                int(v)
                for v in self._states.vertices_in(
                    _S.UNPROCESSED_BORDER,
                    _S.UNPROCESSED_CORE,
                    _S.PROCESSED_CORE,
                )
            ]
            if self.config.sort_candidates:
                degrees = self.graph.degrees
                candidates.sort(key=lambda v: int(degrees[v]), reverse=True)
        cursor["candidates"] = candidates
        cursor["sort_cost"] = _SCAN_COST * len(candidates) * max(
            np.log2(len(candidates) + 1), 1.0
        )

    def _next_candidate_block(self) -> Optional[List[int]]:
        cursor = self._cursor
        if cursor["candidates"] is None:
            self._prepare_candidates()
        candidates = cursor["candidates"]
        pos = int(cursor["cpos"])
        if pos >= len(candidates):
            return None
        cursor["cpos"] = pos + self.config.beta
        return candidates[pos : pos + self.config.beta]

    def _run_candidate_block(
        self, step: str, block_fn, block: List[int]
    ) -> Snapshot:
        started = time.perf_counter()
        record = self._open_iteration(step)
        if self._cursor["first"]:
            record.sequential_cost += self._cursor["sort_cost"]
            self._cursor["first"] = False
        block_fn(block, record)
        self._compute_seconds += time.perf_counter() - started
        return self._make_snapshot(step=step, final=False)

    def _step2_block(self, block_vertices: List[int], record: IterationCosts) -> None:
        counters = self.oracle.counters
        # Parallel block A (Figure 4 lines 30-33): prune + core checks.
        block_a = record.new_block("step2/core-checks")
        is_core: Dict[int, bool] = {}
        for p in block_vertices:
            before = counters.work_units
            prune_cost = _FIND_COST * self._sn.membership_count(p)
            if self._sn.all_same_cluster(p):
                is_core[p] = False  # pruned: no merge work needed
                block_a.add_task(prune_cost)
                continue
            core = self._core_check(p)
            if self._states.get(p) == _S.UNPROCESSED_BORDER:
                self._states.set(
                    p, _S.UNPROCESSED_CORE if core else _S.PROCESSED_BORDER
                )
            is_core[p] = core
            block_a.add_task(prune_cost + counters.work_units - before)

        # Parallel block B (lines 34-42): merge the super-nodes of cores.
        block_b = record.new_block("step2/merge")
        for p in block_vertices:
            cost = 0.0
            if is_core.get(p):
                sids = self._sn.supernodes_of(p)
                cost += _FIND_COST * max(len(sids) - 1, 0) * 2
                for i in range(len(sids) - 1):
                    if not self._sn.labels.same(sids[i], sids[i + 1]):
                        self._merge_supernodes(sids[i], sids[i + 1], "step2")
                        block_b.critical_costs.append(_UNION_COST)
            block_b.add_task(cost)

    # ---------------------------- Step 3 ------------------------------
    _NEVER_CORE = (
        _S.UNPROCESSED_NOISE,
        _S.PROCESSED_NOISE,
        _S.PROCESSED_BORDER,
    )

    def _prunable_step3(self, p: int) -> Tuple[bool, float]:
        """Whether examining ``p`` cannot change the clustering.

        ``p`` is skippable when every neighbor that could still be a core
        already shares ``p``'s cluster (Figure 2 line 40).  Returns the
        scan cost alongside.
        """
        my_root = self._sn.labels.find(self._clu(p))
        cost = 0.0
        for q in self.graph.neighbors(p):
            q = int(q)
            cost += _SCAN_COST
            if self._states.get(q) in self._NEVER_CORE:
                continue
            clu_q = self._clu(q)
            if clu_q < 0 or self._sn.labels.find(clu_q) != my_root:
                return False, cost
        return True, cost

    def _step3_block(self, block_vertices: List[int], record: IterationCosts) -> None:
        counters = self.oracle.counters
        # Parallel block A (Figure 4 lines 49-52): prune + core checks.
        block_a = record.new_block("step3/core-checks")
        examine: Dict[int, bool] = {}
        for p in block_vertices:
            before = counters.work_units
            prunable, cost = self._prunable_step3(p)
            if prunable:
                examine[p] = False
                block_a.add_task(cost)
                continue
            core = self._core_check(p)
            if self._states.get(p) == _S.UNPROCESSED_BORDER:
                self._states.set(
                    p, _S.UNPROCESSED_CORE if core else _S.PROCESSED_BORDER
                )
            examine[p] = core
            block_a.add_task(cost + counters.work_units - before)

        # Parallel block B (lines 53-61): σ checks + unions across clusters.
        block_b = record.new_block("step3/merge")
        for p in block_vertices:
            before = counters.work_units
            cost = 0.0
            if examine.get(p):
                for q in self.graph.neighbors(p):
                    q = int(q)
                    cost += _SCAN_COST
                    if not self._states.is_core(q):
                        continue
                    clu_p, clu_q = self._clu(p), self._clu(q)
                    if self._sn.labels.find(clu_p) == self._sn.labels.find(
                        clu_q
                    ):
                        continue
                    if self._similar(p, q):
                        self._merge_supernodes(clu_p, clu_q, "step3")
                        block_b.critical_costs.append(_UNION_COST)
            block_b.add_task(cost + counters.work_units - before)

    # ---------------------------- Step 4 ------------------------------
    def _step4_body(self) -> None:
        record = self._open_iteration("borders")
        block = record.new_block("step4/noise")
        counters = self.oracle.counters

        # Processed-noise vertices: their ε-neighborhood is already known.
        for p, hood in self._noise_list:
            before = counters.work_units
            cost = _SCAN_COST * float(hood.shape[0])
            if self._states.get(p) == _S.PROCESSED_NOISE:
                for q in hood:
                    q = int(q)
                    if self._states.is_core(q):
                        self._promote_noise_to_border(p, q)
                        break
                    if self._states.get(q) == _S.UNPROCESSED_BORDER:
                        if self._core_check(q):
                            self._states.set(q, _S.UNPROCESSED_CORE)
                            self._promote_noise_to_border(p, q)
                            break
                        self._states.set(q, _S.PROCESSED_BORDER)
            block.add_task(cost + counters.work_units - before)

        # Unprocessed-noise vertices (degree below μ): σ to their neighbors
        # was never required before; check against known/potential cores.
        for p in self._states.vertices_in(_S.UNPROCESSED_NOISE):
            p = int(p)
            before = counters.work_units
            cost = 0.0
            for q in self.graph.neighbors(p):
                q = int(q)
                cost += _SCAN_COST
                state = self._states.get(q)
                if self._states.is_core(q):
                    if self._similar(p, q):
                        self._promote_noise_to_border(p, q)
                        break
                elif state == _S.UNPROCESSED_BORDER:
                    if self._similar(p, q) and self._core_check(q):
                        self._states.set(q, _S.UNPROCESSED_CORE)
                        self._promote_noise_to_border(p, q)
                        break
            else:
                self._states.set(p, _S.PROCESSED_NOISE)
            block.add_task(cost + counters.work_units - before)

    def _promote_noise_to_border(self, p: int, anchor: int) -> None:
        """Noise vertex ``p`` turned out to be a border of ``anchor``'s cluster."""
        self._border_anchor[p] = anchor
        self._states.set(p, _S.PROCESSED_BORDER)
