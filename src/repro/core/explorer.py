"""Interactive parameter exploration: many (μ, ε) clusterings, one pass.

The paper's motivation is interactivity under expensive similarity
computation; a natural companion problem (tackled by SCOT and
gSkeletonClu, both cited in Section V) is *parameter setting*: users
rarely know the right (μ, ε) up front.  :class:`ParameterExplorer` pays
the O(|E|) similarity cost **once** and then answers any ``(μ, ε)``
query in near-linear time with plain array passes and a union–find:

* ``clustering_at(mu, eps)`` — the exact SCAN result for that setting;
* ``core_thresholds(mu)`` — per vertex, the largest ε at which it is
  still a core (the μ-th largest incident σ);
* ``epsilon_candidates(mu)`` — the distinct thresholds where the
  clustering can change, with the number of cores at each — the data a
  UI would render as an "ε slider" with meaningful stops.

Because it is an independent (non-incremental) SCAN implementation, the
test suite also uses it as a cross-check oracle for the five algorithms.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Tuple

import numpy as np

from repro.baselines._postprocess import finalize_clustering
from repro.errors import ConfigError
from repro.validation import check_eps_mu
from repro.graph.csr import Graph
from repro.result import Clustering
from repro.similarity.weighted import SimilarityConfig, SimilarityOracle
from repro.structures.disjoint_set import DisjointSet

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.similarity.index import EdgeSimilarityIndex

__all__ = ["ParameterExplorer"]


class ParameterExplorer:
    """Precomputed σ table supporting fast (μ, ε) queries."""

    def __init__(
        self,
        graph: Graph,
        *,
        similarity: SimilarityConfig | None = None,
        index: "EdgeSimilarityIndex | None" = None,
    ) -> None:
        self.graph = graph
        if index is not None:
            # A prebuilt edge-similarity index already holds every σ this
            # explorer would compute; adopt it instead of re-evaluating.
            index.require_compatible(graph=graph, config=similarity)
            self.oracle = SimilarityOracle(
                graph, similarity or index.config
            )
            self._us, self._vs, self._sigmas = index.forward_edges()
        else:
            self.oracle = SimilarityOracle(
                graph, similarity or SimilarityConfig()
            )
            self._us, self._vs, self._sigmas = self._evaluate_all_edges()
        # Incident σ lists per vertex, sorted descending (built lazily).
        self._incident_sorted: np.ndarray | None = None
        self._incident_ptr: np.ndarray | None = None

    # ------------------------------------------------------------------
    # one-time precomputation
    # ------------------------------------------------------------------
    def _evaluate_all_edges(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        us: List[int] = []
        vs: List[int] = []
        sigmas: List[float] = []
        for u, v, _ in self.graph.edges():
            us.append(u)
            vs.append(v)
            sigmas.append(self.oracle.sigma(u, v))
        return (
            np.asarray(us, dtype=np.int64),
            np.asarray(vs, dtype=np.int64),
            np.asarray(sigmas, dtype=np.float64),
        )

    def _incident(self) -> Tuple[np.ndarray, np.ndarray]:
        """CSR-style per-vertex incident σ values, sorted descending."""
        if self._incident_sorted is None:
            n = self.graph.num_vertices
            counts = np.zeros(n + 1, dtype=np.int64)
            np.add.at(counts, self._us + 1, 1)
            np.add.at(counts, self._vs + 1, 1)
            ptr = np.cumsum(counts)
            values = np.empty(int(ptr[-1]), dtype=np.float64)
            cursor = ptr[:-1].copy()
            for u, v, s in zip(self._us, self._vs, self._sigmas):
                values[cursor[u]] = s
                cursor[u] += 1
                values[cursor[v]] = s
                cursor[v] += 1
            for p in range(n):
                segment = values[ptr[p] : ptr[p + 1]]
                segment[::-1].sort()  # descending in place
            self._incident_sorted = values
            self._incident_ptr = ptr
        return self._incident_sorted, self._incident_ptr

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def precompute_cost(self) -> float:
        """Work units spent on the one-time σ table."""
        return self.oracle.counters.work_units

    def sigma_values(self) -> np.ndarray:
        """All |E| edge similarities (read-only copy)."""
        return self._sigmas.copy()

    def core_thresholds(self, mu: int) -> np.ndarray:
        """Per vertex: largest ε at which it is a core (0 if never).

        A vertex needs ``μ`` ε-similar neighbors counting itself (when
        ``count_self``), i.e. its (μ-1)-th largest incident σ must reach
        ε; without self-counting, the μ-th largest.
        """
        check_eps_mu(mu=mu)
        values, ptr = self._incident()
        need = mu - (1 if self.oracle.config.count_self else 0)
        n = self.graph.num_vertices
        out = np.zeros(n, dtype=np.float64)
        if need <= 0:
            out[:] = 1.0  # trivially core at any ε
            return out
        for p in range(n):
            lo, hi = int(ptr[p]), int(ptr[p + 1])
            if hi - lo >= need:
                out[p] = values[lo + need - 1]
        return out

    def cores_at(self, mu: int, epsilon: float) -> np.ndarray:
        """Boolean core mask for the given parameters."""
        check_eps_mu(mu=mu, epsilon=epsilon)
        return self.core_thresholds(mu) >= epsilon

    def clustering_at(self, mu: int, epsilon: float) -> Clustering:
        """Exact SCAN clustering for ``(μ, ε)`` from the σ table."""
        check_eps_mu(mu=mu, epsilon=epsilon)
        core = self.cores_at(mu, epsilon)
        n = self.graph.num_vertices
        dsu = DisjointSet(n)
        passing = self._sigmas >= epsilon
        for u, v, ok in zip(self._us, self._vs, passing):
            if ok and core[u] and core[v]:
                dsu.union(int(u), int(v))
        labels = np.full(n, -4, dtype=np.int64)
        roots: Dict[int, int] = {}
        for u in np.flatnonzero(core):
            root = dsu.find(int(u))
            labels[int(u)] = roots.setdefault(root, len(roots))
        # Borders: ε-similar neighbors of cores.
        for u, v, ok in zip(self._us, self._vs, passing):
            if not ok:
                continue
            u, v = int(u), int(v)
            if core[u] and not core[v] and labels[v] < 0:
                labels[v] = labels[u]
            elif core[v] and not core[u] and labels[u] < 0:
                labels[u] = labels[v]
        return finalize_clustering(self.graph, labels, core)

    def epsilon_candidates(self, mu: int) -> List[Tuple[float, int]]:
        """Distinct ε thresholds and how many cores survive each.

        The clustering can only change at an edge's σ or a vertex's core
        threshold; this returns the (descending) core-threshold steps —
        the natural stops for an interactive ε slider.
        """
        check_eps_mu(mu=mu)
        thresholds = self.core_thresholds(mu)
        distinct = np.unique(thresholds[thresholds > 0])[::-1]
        return [
            (float(eps), int(np.sum(thresholds >= eps))) for eps in distinct
        ]

    def suggest_epsilon(
        self,
        mu: int,
        *,
        min_cores: int = 2,
        objective: str = "modularity",
        grid: int = 12,
    ) -> float:
        """Data-driven ε suggestion.

        ``objective="modularity"`` (default) evaluates a quantile grid of
        core-threshold candidates and returns the ε whose clustering
        maximizes modularity — each probe is a cheap relabel of the σ
        table.  ``objective="gap"`` returns the midpoint of the widest
        gap in the sorted core-threshold profile (a knee heuristic, no
        clustering probes).
        """
        check_eps_mu(mu=mu)
        thresholds = np.sort(self.core_thresholds(mu))[::-1]
        eligible = thresholds[thresholds > 0]
        if eligible.shape[0] < max(min_cores, 2):
            return 0.5  # nothing to suggest; SCAN's common default
        if objective == "gap":
            tail = eligible[max(min_cores, 2) - 1 :]
            gaps = -np.diff(tail)
            if gaps.shape[0] == 0:
                return float(tail[0])
            k = int(np.argmax(gaps))
            return float((tail[k] + tail[k + 1]) / 2.0)
        if objective != "modularity":
            raise ConfigError(
                f"unknown objective {objective!r}; 'modularity' or 'gap'"
            )
        from repro.metrics.quality import modularity as modularity_of

        quantiles = np.linspace(0.02, 0.98, max(grid, 2))
        candidates = np.unique(np.quantile(eligible, quantiles))
        best_eps, best_q = 0.5, -np.inf
        for eps in candidates:
            eps = float(min(max(eps, 1e-9), 1.0))
            result = self.clustering_at(mu, eps)
            if result.num_clusters < 1:
                continue
            q = modularity_of(self.graph, result)
            if q > best_q:
                best_eps, best_q = eps, q
        return best_eps
