"""The ε-hierarchy: SCAN clusterings at every ε as one dendrogram.

For a fixed μ, SCAN's core clusters are monotone in ε: lowering ε only
creates cores and merges clusters.  The whole ε axis therefore forms a
dendrogram (the insight behind gSkeletonClu, cited in the paper's related
work):

* a vertex *becomes a core* at its core threshold ``t(v)``
  (:meth:`repro.core.explorer.ParameterExplorer.core_thresholds`);
* a core-core edge ``(u, v)`` *activates* at
  ``min(σ(u, v), t(u), t(v))`` — the largest ε at which both endpoints
  are cores and the edge passes the threshold.

Processing these events in descending level with a union–find yields the
merge tree.  :class:`EpsilonHierarchy` exposes

* :meth:`cut` — the exact SCAN clustering at any ε (delegates to the
  explorer for borders/hubs);
* :meth:`core_partition_at` — the dendrogram's own core partition (used
  to cross-check the two machineries against each other in tests);
* :meth:`persistence_table` — birth/death/size of every cluster node;
* :meth:`suggest_cut` — the midpoint of the widest ε plateau on which
  the clustering does not change (a stability-based default).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.explorer import ParameterExplorer
from repro.validation import check_eps_mu
from repro.graph.csr import Graph
from repro.result import Clustering
from repro.similarity.weighted import SimilarityConfig
from repro.structures.disjoint_set import DisjointSet

__all__ = ["ClusterNode", "EpsilonHierarchy"]


@dataclass
class ClusterNode:
    """One node of the ε-dendrogram.

    ``birth`` is the ε at which this cluster comes into existence (a core
    appearing, or two clusters merging); ``death`` is the ε at which it
    is absorbed into its parent (0 if it survives to ε → 0).
    """

    node_id: int
    birth: float
    death: float = 0.0
    children: Tuple[int, ...] = ()
    size: int = 1
    parent: Optional[int] = None
    representative: int = -1

    @property
    def persistence(self) -> float:
        """ε range over which this exact cluster exists."""
        return self.birth - self.death


class EpsilonHierarchy:
    """Dendrogram of SCAN clusterings over ε for a fixed μ."""

    def __init__(
        self,
        graph: Graph,
        mu: int,
        *,
        similarity: SimilarityConfig | None = None,
        explorer: ParameterExplorer | None = None,
    ) -> None:
        check_eps_mu(mu=mu)
        self.graph = graph
        self.mu = mu
        self.explorer = explorer or ParameterExplorer(
            graph, similarity=similarity
        )
        self._thresholds = self.explorer.core_thresholds(mu)
        self.nodes: Dict[int, ClusterNode] = {}
        self._vertex_events: List[Tuple[float, int]] = []
        self._merge_events: List[Tuple[float, int, int]] = []
        self._build()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _build(self) -> None:
        thresholds = self._thresholds
        # Vertex activation events.
        for v in np.flatnonzero(thresholds > 0):
            self._vertex_events.append((float(thresholds[int(v)]), int(v)))
        # Edge activation events (only edges whose both ends can be core).
        us, vs, sigmas = (
            self.explorer._us,
            self.explorer._vs,
            self.explorer._sigmas,
        )
        for u, v, s in zip(us, vs, sigmas):
            tu, tv = float(thresholds[int(u)]), float(thresholds[int(v)])
            if tu > 0 and tv > 0 and s > 0:
                level = min(float(s), tu, tv)
                self._merge_events.append((level, int(u), int(v)))

        # Sweep descending; vertex events before merges at equal level.
        events: List[Tuple[float, int, Tuple]] = []
        for level, v in self._vertex_events:
            events.append((level, 0, (v,)))
        for level, u, v in self._merge_events:
            events.append((level, 1, (u, v)))
        events.sort(key=lambda e: (-e[0], e[1]))

        dsu = DisjointSet(self.graph.num_vertices)
        active = np.zeros(self.graph.num_vertices, dtype=bool)
        node_of_root: Dict[int, int] = {}
        next_id = 0
        for level, kind, payload in events:
            if kind == 0:
                (v,) = payload
                active[v] = True
                node = ClusterNode(
                    node_id=next_id, birth=level, representative=v
                )
                self.nodes[next_id] = node
                node_of_root[dsu.find(v)] = next_id
                next_id += 1
            else:
                u, v = payload
                if not (active[u] and active[v]):
                    continue  # defensive; cannot happen by construction
                ru, rv = dsu.find(u), dsu.find(v)
                if ru == rv:
                    continue
                left = node_of_root.pop(ru)
                right = node_of_root.pop(rv)
                self.nodes[left].death = level
                self.nodes[right].death = level
                merged = ClusterNode(
                    node_id=next_id,
                    birth=level,
                    children=(left, right),
                    size=self.nodes[left].size + self.nodes[right].size,
                    representative=self.nodes[left].representative,
                )
                self.nodes[left].parent = next_id
                self.nodes[right].parent = next_id
                self.nodes[next_id] = merged
                dsu.union(u, v)
                node_of_root[dsu.find(u)] = next_id
                next_id += 1

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    def roots(self) -> List[ClusterNode]:
        """Nodes alive at ε → 0 (the dendrogram's forest roots)."""
        return [n for n in self.nodes.values() if n.parent is None]

    def cut(self, epsilon: float) -> Clustering:
        """Exact SCAN clustering at (μ, ε) — borders and hubs included."""
        check_eps_mu(epsilon=epsilon)
        return self.explorer.clustering_at(self.mu, epsilon)

    def core_partition_at(self, epsilon: float) -> List[frozenset]:
        """Core partition from the dendrogram itself (for cross-checks).

        A node represents a live cluster at ε iff it was born at or above
        ε and dies strictly below it.
        """
        check_eps_mu(epsilon=epsilon)
        live = [
            node
            for node in self.nodes.values()
            if node.birth >= epsilon > node.death
        ]
        out: List[frozenset] = []
        for node in live:
            members: List[int] = []
            stack = [node.node_id]
            while stack:
                nid = stack.pop()
                current = self.nodes[nid]
                if current.children:
                    stack.extend(current.children)
                else:
                    members.append(current.representative)
            # Restrict to vertices that are cores at this ε.
            cores = [
                v for v in members if self._thresholds[v] >= epsilon
            ]
            if cores:
                out.append(frozenset(cores))
        return out

    def persistence_table(
        self, *, min_size: int = 1
    ) -> List[Tuple[int, float, float, int]]:
        """(node_id, birth, persistence, size), most persistent first."""
        rows = [
            (n.node_id, n.birth, n.persistence, n.size)
            for n in self.nodes.values()
            if n.size >= min_size
        ]
        rows.sort(key=lambda r: -r[2])
        return rows

    def levels(self) -> np.ndarray:
        """Distinct ε levels at which the clustering changes (descending)."""
        values = {level for level, _ in self._vertex_events}
        values |= {level for level, _, _ in self._merge_events}
        return np.asarray(sorted(values, reverse=True), dtype=np.float64)

    def suggest_cut(self, *, min_clusters: int = 2) -> float:
        """ε in the middle of the widest stability plateau.

        Between consecutive event levels the clustering is constant; the
        widest such interval whose clustering has at least
        ``min_clusters`` live clusters is the most stable regime.
        """
        levels = self.levels()
        if levels.shape[0] == 0:
            return 0.5
        # Candidate intervals: (levels[i+1], levels[i]) plus the tails.
        bounds = np.concatenate([[1.0], levels, [0.0]])
        best_eps, best_width = 0.5, -1.0
        for hi, lo in zip(bounds[:-1], bounds[1:]):
            width = hi - lo
            if width <= best_width:
                continue
            eps = (hi + lo) / 2.0
            if eps <= 0.0:
                continue
            alive = sum(
                1
                for n in self.nodes.values()
                if n.birth >= eps > n.death and n.size >= 1
            )
            if alive >= min_clusters:
                best_eps, best_width = eps, width
        return float(best_eps)
