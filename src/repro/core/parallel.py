"""Parallel anySCAN: Section III-B on the simulated multicore machine.

The parallel algorithm performs exactly the same similarity work as the
sequential one — Figure 4 only reorganizes each block iteration into
``parallel for`` loops with one atomic per neighbor update and one
critical section per ``Union``.  We therefore run the (instrumented)
sequential algorithm once, collecting the per-task cost log, and replay
it on :class:`~repro.parallel.simulator.MulticoreSimulator` machines with
different thread counts.  This reproduces the quantities of Figures
10–14: cumulative runtime per anytime iteration for t threads, final
speedups, and the sensitivity to block sizes, parameters, and graph shape.

The "ideal" comparison algorithm of Figure 11 is also replayed here: all
edge σ evaluations as one embarrassingly parallel block.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.baselines.ideal import ideal_edge_costs
from repro.core.anyscan import AnySCAN
from repro.core.config import AnyScanConfig
from repro.errors import SimulationError
from repro.graph.csr import Graph
from repro.parallel.backends import (
    backend_kind,
    close_backend,
    create_backend,
    run_range_queries,
)
from repro.parallel.costs import IterationCosts, ParallelBlock
from repro.parallel.simulator import MachineSpec, MulticoreSimulator
from repro.result import Clustering
from repro.similarity.weighted import SimilarityConfig
from repro.validation import check_eps_mu

__all__ = [
    "ParallelRunReport",
    "ParallelAnySCAN",
    "ideal_speedups",
    "MeasuredSpeedup",
    "measured_sigma_speedups",
]


@dataclass(frozen=True)
class ParallelRunReport:
    """Simulated timing of one anySCAN run at one thread count."""

    threads: int
    cumulative_times: np.ndarray  # after each anytime iteration
    total_time: float
    steps: List[str]

    def time_at_iteration(self, index: int) -> float:
        return float(self.cumulative_times[index])


class ParallelAnySCAN:
    """Execute anySCAN once; replay its parallel structure at any width.

    Parameters
    ----------
    graph, config:
        As for :class:`~repro.core.anyscan.AnySCAN`; ``record_costs`` is
        forced on.
    machine:
        Machine template (cores per socket, atomic/critical costs, NUMA
        penalty, scheduling policy); thread count is overridden per query.

    Examples
    --------
    >>> par = ParallelAnySCAN(graph, AnyScanConfig(mu=5, epsilon=0.5))
    >>> par.run()
    >>> par.speedups([2, 4, 8, 16])
    {2: 1.9..., 4: 3.7..., 8: 7.1..., 16: 12.8...}
    """

    def __init__(
        self,
        graph: Graph,
        config: AnyScanConfig | None = None,
        *,
        machine: MachineSpec | None = None,
    ) -> None:
        base = config or AnyScanConfig()
        if not base.record_costs:
            base = _with_record_costs(base)
        self.config = base
        self.graph = graph
        self.machine_template = machine or MachineSpec(threads=1)
        self.algorithm = AnySCAN(graph, base)
        self._result: Clustering | None = None

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self) -> Clustering:
        """Execute the algorithm (sequentially), recording the cost log."""
        if self._result is None:
            self._result = self.algorithm.run()
        return self._result

    @property
    def cost_log(self) -> List[IterationCosts]:
        self._require_run()
        return self.algorithm.cost_log

    def _require_run(self) -> None:
        if self._result is None:
            raise SimulationError("call run() before querying simulations")

    # ------------------------------------------------------------------
    # simulation queries
    # ------------------------------------------------------------------
    def machine(self, threads: int) -> MachineSpec:
        """Machine spec derived from the template with ``threads`` threads."""
        t = self.machine_template
        return MachineSpec(
            threads=threads,
            cores_per_socket=t.cores_per_socket,
            atomic_cost=t.atomic_cost,
            critical_cost=t.critical_cost,
            schedule_overhead=t.schedule_overhead,
            numa_penalty=t.numa_penalty,
            schedule=t.schedule,
            chunk_size=t.chunk_size,
        )

    def report(self, threads: int) -> ParallelRunReport:
        """Cumulative simulated runtime after each anytime iteration."""
        self._require_run()
        sim = MulticoreSimulator(self.machine(threads))
        times = sim.simulate_run(self.cost_log)
        return ParallelRunReport(
            threads=threads,
            cumulative_times=times,
            total_time=float(times[-1]) if times.shape[0] else 0.0,
            steps=[record.step for record in self.cost_log],
        )

    def speedups(self, thread_counts: Sequence[int]) -> Dict[int, float]:
        """Final speedup over the single-thread simulation (Figure 10 right)."""
        baseline = self.report(1).total_time
        out: Dict[int, float] = {}
        for t in thread_counts:
            total = self.report(int(t)).total_time
            out[int(t)] = baseline / total if total > 0 else float("nan")
        return out

    def speedups_per_iteration(
        self, thread_counts: Sequence[int]
    ) -> Dict[int, np.ndarray]:
        """Speedup of the cumulative time at every iteration (Figure 10 left)."""
        base = self.report(1).cumulative_times
        out: Dict[int, np.ndarray] = {}
        for t in thread_counts:
            times = self.report(int(t)).cumulative_times
            with np.errstate(divide="ignore", invalid="ignore"):
                out[int(t)] = np.where(times > 0, base / times, np.nan)
        return out

    def sequential_fraction(self) -> float:
        """Share of total work in the sequential parts (Amdahl check)."""
        self._require_run()
        total = sum(record.total_work for record in self.cost_log)
        seq = sum(record.sequential_cost for record in self.cost_log)
        return seq / total if total > 0 else 0.0


def ideal_speedups(
    graph: Graph,
    thread_counts: Sequence[int],
    *,
    machine: MachineSpec | None = None,
) -> Dict[int, float]:
    """Speedups of the Figure 11 ideal algorithm on the same machine model.

    One parallel block holding every edge's σ cost, no atomics, no
    critical sections, no sequential tail.
    """
    template = machine or MachineSpec(threads=1)
    block = ParallelBlock(name="ideal/all-edges")
    block.task_costs = [float(c) for c in ideal_edge_costs(graph)]
    record = IterationCosts(step="ideal", index=0)
    record.blocks.append(block)

    def total_for(threads: int) -> float:
        spec = MachineSpec(
            threads=threads,
            cores_per_socket=template.cores_per_socket,
            atomic_cost=template.atomic_cost,
            critical_cost=template.critical_cost,
            schedule_overhead=template.schedule_overhead,
            numa_penalty=template.numa_penalty,
            schedule=template.schedule,
            chunk_size=template.chunk_size,
        )
        return MulticoreSimulator(spec).total_time([record])

    baseline = total_for(1)
    return {
        int(t): baseline / total_for(int(t)) if total_for(int(t)) > 0 else 0.0
        for t in thread_counts
    }


# ----------------------------------------------------------------------
# measured (real-hardware) companion to the simulated speedups
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MeasuredSpeedup:
    """Wall-clock measurement of the σ phase at one worker count."""

    workers: int
    kind: str          # "process" or "thread" (fallback-aware)
    seconds: float
    speedup: float     # over the first (usually 1-worker) measurement


def measured_sigma_speedups(
    graph: Graph,
    worker_counts: Sequence[int],
    *,
    epsilon: float = 0.5,
    backend: str = "auto",
    vertices: Optional[Sequence[int]] = None,
    config: Optional[SimilarityConfig] = None,
    chunk_size: Optional[int] = None,
    repeats: int = 1,
) -> List[MeasuredSpeedup]:
    """Measured wall-clock speedups of the σ-evaluation phase.

    The simulator above *predicts* scalability from cost logs; this
    times the same embarrassingly parallel phase (batched ε range
    queries) for real on the selected registry backend, giving the
    real-hardware column next to Figures 10–12.  The first entry of
    ``worker_counts`` is the baseline, so pass ``[1, 2, 4, ...]``.

    ``vertices`` restricts the batch (default: every vertex); ``repeats``
    keeps the best of N timings to damp scheduler noise.
    """
    check_eps_mu(epsilon=epsilon)
    if not worker_counts:
        raise SimulationError("need at least one worker count")
    if repeats < 1:
        raise SimulationError("repeats must be >= 1")
    batch = (
        list(range(graph.num_vertices))
        if vertices is None
        else [int(v) for v in vertices]
    )
    out: List[MeasuredSpeedup] = []
    baseline: Optional[float] = None
    for count in worker_counts:
        runner = create_backend(
            backend, workers=int(count), chunk_size=chunk_size
        )
        try:
            best = float("inf")
            for _ in range(repeats):
                started = time.perf_counter()
                run_range_queries(
                    graph, batch, epsilon, backend=runner, config=config
                )
                best = min(best, time.perf_counter() - started)
            kind = backend_kind(runner)
        finally:
            close_backend(runner)
        if baseline is None:
            baseline = best
        out.append(
            MeasuredSpeedup(
                workers=int(count),
                kind=kind,
                seconds=best,
                speedup=baseline / best if best > 0 else float("nan"),
            )
        )
    return out


def _with_record_costs(config: AnyScanConfig) -> AnyScanConfig:
    return AnyScanConfig(
        mu=config.mu,
        epsilon=config.epsilon,
        alpha=config.alpha,
        beta=config.beta,
        seed=config.seed,
        sort_candidates=config.sort_candidates,
        similarity=config.similarity,
        validate_states=config.validate_states,
        record_costs=True,
    )
