"""Real-thread execution backend (GIL-bound; see DESIGN.md §3).

This backend runs the embarrassingly parallel portions of the SCAN
workload — batches of σ evaluations or range queries — on a genuine
:class:`~concurrent.futures.ThreadPoolExecutor`.  On CPython the GIL
serializes the bytecode, so **wall-clock speedups are not expected**;
the backend exists because

* it exercises the same block decomposition the simulator replays, so
  tests can check that the parallel decomposition computes *identical
  results* to the sequential code;
* on GIL-free builds (or if the numeric kernels ever move to C), the
  same API yields real speedups.

The simulated machine in :mod:`repro.parallel.simulator` remains the
instrument for the paper's scalability figures.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple, TypeVar

import numpy as np

from repro.errors import SimulationError
from repro.graph.csr import Graph
from repro.parallel.sync import atomic_add
from repro.similarity.weighted import SimilarityConfig, SimilarityOracle
from repro.validation import check_eps_mu

__all__ = [
    "ThreadBackend",
    "parallel_range_queries",
    "parallel_edge_similarities",
    "parallel_neighbor_updates",
    "parallel_sigma_rows",
]

T = TypeVar("T")


@dataclass(frozen=True)
class ThreadBackend:
    """A pool of real threads with OpenMP-flavored chunking.

    ``chunk_size`` mirrors ``schedule(dynamic, chunk)``: work items are
    handed to threads in chunks, which bounds the queue overhead the
    same way OpenMP's dynamic scheduler does.
    """

    threads: int = 4
    chunk_size: int = 64

    def validate(self) -> None:
        if self.threads < 1:
            raise SimulationError("need at least one thread")
        if self.chunk_size < 1:
            raise SimulationError("chunk_size must be >= 1")

    def map(
        self,
        fn: Callable[[T], object],
        items: Sequence[T],
    ) -> List[object]:
        """Order-preserving parallel map (one barrier at the end)."""
        self.validate()
        if self.threads == 1 or len(items) <= self.chunk_size:
            return [fn(item) for item in items]
        results: List[object] = [None] * len(items)

        def run_chunk(start: int) -> None:
            for i in range(start, min(start + self.chunk_size, len(items))):
                # Chunks own disjoint index ranges, so these slot writes
                # cannot collide across threads.  # repro: allow[R1]
                results[i] = fn(items[i])

        starts = range(0, len(items), self.chunk_size)
        with ThreadPoolExecutor(max_workers=self.threads) as pool:
            # Consume the iterator to propagate exceptions (the barrier).
            list(pool.map(run_chunk, starts))
        return results


def parallel_range_queries(
    graph: Graph,
    vertices: Sequence[int],
    epsilon: float,
    *,
    backend: ThreadBackend | None = None,
    config: SimilarityConfig | None = None,
) -> List[np.ndarray]:
    """Step 1's parallel block: ε-neighborhoods for a batch of vertices.

    Each thread owns a private oracle (no shared counters → no locking),
    exactly like the per-thread buffers of Figure 4 lines 6-9.
    """
    check_eps_mu(epsilon=epsilon)
    backend = backend or ThreadBackend()
    config = config or SimilarityConfig()
    # Thread-local oracles: constructed once per call; precomputation is
    # O(|E|) and shared work is read-only afterwards.
    oracle = SimilarityOracle(graph, config)

    def query(v: int) -> np.ndarray:
        return oracle.eps_neighborhood(int(v), epsilon)

    return backend.map(query, list(vertices))  # type: ignore[return-value]


def parallel_neighbor_updates(
    graph: Graph,
    vertices: Sequence[int],
    epsilon: float,
    *,
    backend: ThreadBackend | None = None,
    config: SimilarityConfig | None = None,
    out: np.ndarray | None = None,
) -> Tuple[List[np.ndarray], np.ndarray]:
    """Step 1's shared update: count how often each vertex is ε-touched.

    Each worker runs one range query and performs **one atomic per
    neighbor update** (Figure 4 lines 14-15) into the shared counter
    array — exactly the concurrency contract rule R1 of
    :mod:`repro.analysis` enforces.  Returns the per-vertex
    ε-neighborhoods and the shared touch counts.  ``out`` supplies the
    counter array to update in place (e.g. a
    :class:`~repro.analysis.runtime.ShadowArray` under the runtime race
    checker); a fresh zero array is used otherwise.
    """
    check_eps_mu(epsilon=epsilon)
    backend = backend or ThreadBackend()
    config = config or SimilarityConfig()
    oracle = SimilarityOracle(graph, config)
    touched = (
        out if out is not None
        else np.zeros(graph.num_vertices, dtype=np.int64)
    )

    def update(v: int) -> np.ndarray:
        hood = oracle.eps_neighborhood(int(v), epsilon)
        for q in hood:
            atomic_add(touched, int(q), 1)
        return hood

    hoods = backend.map(update, list(vertices))
    return hoods, touched  # type: ignore[return-value]


def parallel_sigma_rows(
    graph: Graph,
    *,
    backend: ThreadBackend | None = None,
    config: SimilarityConfig | None = None,
) -> np.ndarray:
    """σ for **every** directed CSR edge, in vertex-range blocks.

    The building block of the edge-similarity index
    (:class:`~repro.similarity.index.EdgeSimilarityIndex`): each worker
    runs the batched kernel over a contiguous vertex range, and because
    slot (u, v) is always computed by expanding v's row, the
    concatenation is bitwise-identical for every block decomposition.
    """
    backend = backend or ThreadBackend()
    config = config or SimilarityConfig()
    oracle = SimilarityOracle(graph, config)
    if graph.indices.shape[0] == 0:
        return np.zeros(0, dtype=np.float64)
    # Materialize the lazy probe structure before fanning out so worker
    # threads share one read-only array instead of racing to build it.
    oracle.edge_keys
    n = graph.num_vertices
    blocks = [
        (lo, min(lo + backend.chunk_size, n))
        for lo in range(0, n, backend.chunk_size)
    ]

    def block_sigmas(block: Tuple[int, int]) -> np.ndarray:
        return oracle.sigma_row_block(block[0], block[1])

    return np.concatenate(backend.map(block_sigmas, blocks))


def parallel_edge_similarities(
    graph: Graph,
    edges: Sequence[Tuple[int, int]],
    *,
    backend: ThreadBackend | None = None,
    config: SimilarityConfig | None = None,
) -> np.ndarray:
    """The ideal algorithm's parallel block: σ for a batch of edges."""
    backend = backend or ThreadBackend()
    config = config or SimilarityConfig()
    oracle = SimilarityOracle(graph, config)

    def sigma(edge: Tuple[int, int]) -> float:
        return oracle.sigma_unrecorded(int(edge[0]), int(edge[1]))

    return np.asarray(
        backend.map(sigma, list(edges)), dtype=np.float64
    )
