"""Deterministic shared-memory multicore simulator.

Replays the measured work of a parallel algorithm on an abstract machine
with ``t`` threads, reproducing the scheduling effects that determine the
paper's speedup curves:

* **dynamic scheduling** (OpenMP ``schedule(dynamic)``): each next task
  goes to the earliest-available thread, so skewed task costs (heavy-tail
  degree distributions) cause the same load imbalance the paper observes
  on GR02/GR03;
* **static scheduling** is available for the ablation bench;
* **atomics** cost a small constant (the paper cites ≈200× cheaper than a
  critical section);
* **critical sections** serialize on one global lock — the lock's busy
  time extends the block makespan when it exceeds the parallel slack;
* **barriers** end every block (threads wait for the slowest);
* an optional **NUMA penalty** inflates costs once threads spill onto the
  second socket (the paper's machine has 2×8 cores), reproducing the
  scalability knee at >8 threads;
* **per-task scheduling overhead** models the dynamic scheduler's queue
  operations, so tiny blocks scale poorly — the α/β block-size effect of
  Figure 13.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence

import heapq

import numpy as np

from repro.errors import SimulationError
from repro.parallel.costs import IterationCosts, ParallelBlock

__all__ = ["MachineSpec", "BlockTiming", "MulticoreSimulator"]


@dataclass(frozen=True)
class MachineSpec:
    """Parameters of the simulated machine.

    Defaults model the paper's testbed: two sockets of 8 cores, a
    critical section ≈200× an atomic, and a mild NUMA penalty.
    """

    threads: int
    cores_per_socket: int = 8
    atomic_cost: float = 0.01
    critical_cost: float = 2.0
    schedule_overhead: float = 0.05
    numa_penalty: float = 0.10
    schedule: str = "dynamic"
    chunk_size: int = 1

    def validate(self) -> None:
        if self.threads < 1:
            raise SimulationError("need at least one thread")
        if self.schedule not in ("dynamic", "static"):
            raise SimulationError("schedule must be 'dynamic' or 'static'")
        if self.chunk_size < 1:
            raise SimulationError("chunk_size must be >= 1")

    @property
    def numa_factor(self) -> float:
        """Cost multiplier once the second socket is in play."""
        if self.threads <= self.cores_per_socket:
            return 1.0
        spill = (self.threads - self.cores_per_socket) / self.cores_per_socket
        return 1.0 + self.numa_penalty * min(spill, 1.0)


@dataclass(frozen=True)
class BlockTiming:
    """Simulated timing of one parallel block."""

    name: str
    makespan: float
    total_work: float
    per_thread_busy: np.ndarray

    @property
    def utilization(self) -> float:
        """Mean busy fraction across threads (1.0 = perfectly balanced)."""
        if self.makespan <= 0:
            return 1.0
        return float(self.per_thread_busy.mean() / self.makespan)


class MulticoreSimulator:
    """Replays :class:`IterationCosts` on a :class:`MachineSpec`."""

    def __init__(self, machine: MachineSpec) -> None:
        machine.validate()
        self.machine = machine

    # ------------------------------------------------------------------
    # single parallel block
    # ------------------------------------------------------------------
    def simulate_block(self, block: ParallelBlock) -> BlockTiming:
        """Makespan of one dynamic/static-scheduled parallel for."""
        machine = self.machine
        t = machine.threads
        factor = machine.numa_factor
        costs = [c * factor + machine.schedule_overhead for c in block.task_costs]
        busy = np.zeros(t, dtype=np.float64)

        if machine.schedule == "dynamic":
            heap: List[tuple] = [(0.0, i) for i in range(t)]
            heapq.heapify(heap)
            chunk = machine.chunk_size
            for start in range(0, len(costs), chunk):
                cost = sum(costs[start : start + chunk])
                available, tid = heapq.heappop(heap)
                finish = available + cost
                busy[tid] += cost
                heapq.heappush(heap, (finish, tid))
            makespan = max((end for end, _ in heap), default=0.0)
        else:  # static: contiguous equal-count chunks
            counts = np.array_split(np.asarray(costs, dtype=np.float64), t)
            for tid, part in enumerate(counts):
                busy[tid] = float(part.sum())
            makespan = float(busy.max()) if t else 0.0

        # Atomic operations: each thread pays its share; contention is
        # negligible at this cost scale (the paper's design point).
        atomic_total = block.atomic_ops * machine.atomic_cost * factor
        makespan += atomic_total / t
        busy += atomic_total / t

        # Critical sections serialize on one lock.  Their combined busy
        # time can hide under the block's parallel slack; once it exceeds
        # the slack it extends the makespan directly.
        critical_total = (
            sum(block.critical_costs) * machine.critical_cost * factor
        )
        if critical_total > 0.0:
            slack = float(np.clip(makespan - busy, 0.0, None).sum())
            overflow = max(critical_total - slack, 0.0)
            hidden = critical_total - overflow
            makespan += overflow + hidden / t
        return BlockTiming(
            name=block.name,
            makespan=makespan,
            total_work=float(sum(costs)),
            per_thread_busy=busy,
        )

    # ------------------------------------------------------------------
    # iterations and whole runs
    # ------------------------------------------------------------------
    def simulate_iteration(self, iteration: IterationCosts) -> float:
        """Simulated elapsed time of one anytime iteration.

        Blocks run one after another (each ends with a barrier), then the
        sequential tail runs on one thread.
        """
        elapsed = sum(self.simulate_block(b).makespan for b in iteration.blocks)
        return elapsed + iteration.sequential_cost * self.machine.numa_factor

    def simulate_run(
        self, iterations: Sequence[IterationCosts]
    ) -> np.ndarray:
        """Cumulative simulated time after each iteration."""
        times = np.zeros(len(iterations), dtype=np.float64)
        total = 0.0
        for i, iteration in enumerate(iterations):
            total += self.simulate_iteration(iteration)
            times[i] = total
        return times

    def total_time(self, iterations: Iterable[IterationCosts]) -> float:
        """Simulated end-to-end time of a run."""
        return float(
            sum(self.simulate_iteration(iteration) for iteration in iterations)
        )


def speedup_curve(
    iterations: Sequence[IterationCosts],
    thread_counts: Sequence[int],
    *,
    base_machine: MachineSpec | None = None,
) -> dict:
    """Speedups over the single-thread simulation for each thread count."""
    template = base_machine or MachineSpec(threads=1)
    baseline = MulticoreSimulator(
        _with_threads(template, 1)
    ).total_time(iterations)
    out = {}
    for t in thread_counts:
        sim = MulticoreSimulator(_with_threads(template, int(t)))
        elapsed = sim.total_time(iterations)
        out[int(t)] = baseline / elapsed if elapsed > 0 else float("nan")
    return out


def _with_threads(spec: MachineSpec, threads: int) -> MachineSpec:
    return MachineSpec(
        threads=threads,
        cores_per_socket=spec.cores_per_socket,
        atomic_cost=spec.atomic_cost,
        critical_cost=spec.critical_cost,
        schedule_overhead=spec.schedule_overhead,
        numa_penalty=spec.numa_penalty,
        schedule=spec.schedule,
        chunk_size=spec.chunk_size,
    )
