"""Real multicore execution: a shared-memory process-pool backend.

:class:`~repro.parallel.threads.ThreadBackend` proves result parity but
is GIL-bound; this module is the path that actually escapes the GIL.
The graph's CSR arrays (``indptr``, ``indices``, ``weights``) and the
oracle's precomputed invariants (``l_p``, ``w_p``, linear sums) are
published once through :mod:`multiprocessing.shared_memory`; worker
processes attach by name and rebuild zero-copy numpy views, so the only
per-task traffic is the vertex/edge ids going out and the (small)
ε-neighborhoods coming back.  The σ-evaluation / range-query phase is
embarrassingly parallel (no shared writes at all — shared updates are
reduced in the parent), which is exactly the phase the paper's Figure 4
and the parallel-SCAN literature identify as the scalability carrier.

Lifecycle contract:

* the pool and the shared segments spin up lazily on the first parallel
  call and are reused while the (graph, similarity-config) pair stays
  the same;
* :meth:`ProcessBackend.close` (or the context manager, or the GC
  finalizer) tears both down and **unlinks** the segments even when the
  workload raised;
* abnormal shutdown is covered too: an atexit hook unlinks every live
  segment on interpreter exit (``KeyboardInterrupt`` included), and
  :func:`install_signal_cleanup` extends that to SIGTERM — segments are
  named ``repro_{pid}_…`` so a leak check can audit ``/dev/shm``;
* when shared memory is unavailable (restricted ``/dev/shm``, forced
  off via :data:`FORCE_FALLBACK_ENV`) the backend degrades to an
  equivalent :class:`~repro.parallel.threads.ThreadBackend` — same
  results, no real speedup — unless ``allow_fallback=False``.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import random
import secrets
import signal
import threading
import time
import weakref
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.faults import FaultInjected, fault_point
from repro.graph.csr import Graph
from repro.parallel import threads as _threads
from repro.parallel.threads import ThreadBackend
from repro.similarity.weighted import SimilarityConfig, SimilarityOracle
from repro.validation import check_eps_mu

__all__ = [
    "FORCE_FALLBACK_ENV",
    "SEGMENT_PREFIX",
    "DegradationEvent",
    "SegmentRegistry",
    "SharedArraySpec",
    "untrack_attachment",
    "add_degradation_listener",
    "remove_degradation_listener",
    "emit_degradation",
    "shared_memory_available",
    "SharedGraph",
    "ProcessBackend",
    "cleanup_live_segments",
    "install_signal_cleanup",
    "parallel_range_queries",
    "parallel_edge_similarities",
    "parallel_neighbor_updates",
    "parallel_sigma_rows",
]

#: Setting this environment variable (to any non-empty value) makes the
#: backend behave as if shared memory were unavailable — the CI smoke
#: tests use it to exercise the thread-fallback path deterministically.
FORCE_FALLBACK_ENV = "REPRO_FORCE_THREAD_FALLBACK"


@dataclass(frozen=True)
class DegradationEvent:
    """Structured record of one backend degradation (process → thread).

    Emitted exactly once per :class:`ProcessBackend` instance, at the
    moment the thread fallback is engaged, to the backend's own
    ``on_degrade`` callback and every listener registered through
    :func:`add_degradation_listener` (the service bridges these into
    :class:`~repro.service.metrics.ServiceMetrics`).
    """

    backend: str
    reason: str
    failures: int
    workers: int

    def to_dict(self) -> Dict[str, object]:
        return {
            "backend": self.backend,
            "reason": self.reason,
            "failures": self.failures,
            "workers": self.workers,
        }


_DEGRADATION_LISTENERS: List[Callable[[DegradationEvent], None]] = []
_LISTENER_LOCK = threading.Lock()


def add_degradation_listener(
    listener: Callable[[DegradationEvent], None],
) -> Callable[[DegradationEvent], None]:
    """Register a process-wide observer of degradation events."""
    with _LISTENER_LOCK:
        _DEGRADATION_LISTENERS.append(listener)
    return listener


def remove_degradation_listener(
    listener: Callable[[DegradationEvent], None],
) -> None:
    """Unregister a listener; missing listeners are ignored."""
    with _LISTENER_LOCK:
        if listener in _DEGRADATION_LISTENERS:
            _DEGRADATION_LISTENERS.remove(listener)


def emit_degradation(event: DegradationEvent) -> None:
    """Deliver ``event`` to every registered listener.

    Public so other subsystems that degrade between execution tiers
    (e.g. :mod:`repro.local` falling from an index tier to the σ oracle)
    flow through the same observer channel the service already bridges
    into ``/metrics``.
    """
    with _LISTENER_LOCK:
        listeners = list(_DEGRADATION_LISTENERS)
    for listener in listeners:
        try:
            listener(event)
        except Exception:  # repro: allow[swallow] - observers must not mask
            pass


#: Backwards-compatible private alias (module-internal call sites).
_emit_degradation = emit_degradation

#: Labels of the arrays a :class:`SharedGraph` publishes.  ``sigma_out``
#: is the only writable one: an all-edges σ buffer that
#: :meth:`ProcessBackend.map_sigma_rows` workers fill in disjoint
#: vertex-range slices (the index build's reduction lives in shared
#: memory instead of pickling one float per edge back to the parent).
_ARRAY_LABELS = (
    "indptr", "indices", "weights", "lengths", "max_weights", "linear_sums",
    "sigma_out",
)


#: Leading component of every shared-memory segment name this module
#: creates.  Segments show up in ``/dev/shm`` as
#: ``{SEGMENT_PREFIX}_{owner pid}_{label}_{token}``, so a leak check (or
#: an operator) can attribute every stray segment to its creating
#: process — anonymous ``psm_*`` names cannot be audited that way.
SEGMENT_PREFIX = "repro"

#: Every live (not yet closed) :class:`SegmentRegistry`.  The GC
#: finalizer handles ordinary drops; this registry-of-registries is for
#: *abnormal* shutdown — the atexit hook and
#: :func:`install_signal_cleanup` walk it so a ``KeyboardInterrupt`` or
#: SIGTERM mid-job still unlinks every owned segment.
_LIVE_REGISTRIES: "weakref.WeakSet[SegmentRegistry]" = weakref.WeakSet()


def cleanup_live_segments() -> int:
    """Close and unlink every live segment registry; returns how many.

    Idempotent and safe to call from an atexit hook or a signal handler:
    :meth:`SegmentRegistry.close` is itself idempotent and
    exception-free.
    """
    registries = list(_LIVE_REGISTRIES)
    for registry in registries:
        registry.close()
    return len(registries)


atexit.register(cleanup_live_segments)


def install_signal_cleanup(
    signals: Sequence[int] = (signal.SIGTERM,),
) -> List[Tuple[int, object]]:
    """Unlink shared segments before dying of ``signals`` (default SIGTERM).

    Python's default SIGTERM disposition kills the interpreter without
    running atexit hooks, which strands every ``/dev/shm`` segment a
    running job published.  This installs a handler that unlinks all
    live segments, restores the previous disposition, and re-raises the
    signal so the exit status still reflects the termination.  Must be
    called from the main thread (a CPython restriction on
    ``signal.signal``); the service server and the ``serve`` CLI do so
    on startup.  Returns ``(signum, previous handler)`` pairs so a
    caller can undo the installation.
    """
    previous: List[Tuple[int, object]] = []

    def _handler(signum, frame):  # pragma: no cover - exercised via subprocess
        cleanup_live_segments()
        for num, old in previous:
            if num == signum:
                signal.signal(num, old if callable(old) else signal.SIG_DFL)
        os.kill(os.getpid(), signum)

    for signum in signals:
        previous.append((signum, signal.getsignal(signum)))
        signal.signal(signum, _handler)
    return previous


def shared_memory_available() -> bool:
    """Whether POSIX shared memory works here (and is not forced off)."""
    if os.environ.get(FORCE_FALLBACK_ENV):
        return False
    try:
        probe = shared_memory.SharedMemory(create=True, size=8)
    except (OSError, ValueError):
        return False
    try:
        probe.close()
        probe.unlink()
    # repro: allow[swallow] - probe cleanup is best effort
    except OSError:  # pragma: no cover
        pass
    return True


# ----------------------------------------------------------------------
# shared segments (owner side)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SharedArraySpec:
    """Picklable description of one shared-memory-backed array.

    A spec is the *attachment recipe* for a published array: segment
    name, shape, and dtype string.  It travels over pickle (process
    pools) or JSON-ish manifests (the service layer serialises the three
    fields) and is everything :meth:`SegmentRegistry.attach` needs.
    """

    shm_name: str
    shape: Tuple[int, ...]
    dtype: str


#: Backward-compatible internal alias (pre-registry name).
_SharedSpec = SharedArraySpec


@dataclass(frozen=True)
class SharedGraphHandle:
    """Everything a worker needs to rebuild the graph and oracle."""

    specs: Tuple[Tuple[str, SharedArraySpec], ...]
    similarity: SimilarityConfig


def _release_named(
    owned: Dict[str, shared_memory.SharedMemory],
    owner_pid: Optional[int] = None,
) -> None:
    """Close and unlink owner-side segments; idempotent and exception-safe.

    ``owner_pid`` guards against inherited finalizers: a forked child
    carries copies of the parent's registries (and their GC/atexit
    finalizers), and letting those run would unlink segments the parent
    still serves from.  Ownership does not survive ``fork``.
    """
    if owner_pid is not None and os.getpid() != owner_pid:
        return
    while owned:
        _, shm = owned.popitem()
        try:
            shm.close()
        # repro: allow[swallow] - teardown keeps going per segment
        except (OSError, BufferError):  # pragma: no cover
            pass
        try:
            # ``unlink`` unregisters with the resource tracker; an
            # untracked segment was never in its books, so re-register
            # first (a set-add no-op for tracked ones) to keep the
            # tracker's ledger balanced.
            resource_tracker.register(shm._name, "shared_memory")
            shm.unlink()
        # repro: allow[swallow] - already-unlinked is the idempotent case
        except (FileNotFoundError, OSError):
            pass


def _close_attached(shm: shared_memory.SharedMemory) -> None:
    """Reader-side detach: close the mapping, never unlink (owner's job)."""
    try:
        shm.close()
    # repro: allow[swallow] - a lingering export just delays the unmap
    except (OSError, BufferError):  # pragma: no cover
        pass


def untrack_attachment(shm: shared_memory.SharedMemory) -> None:
    """Tell this process's resource tracker to forget an attachment.

    ``SharedMemory(name=...)`` registers the segment with the *local*
    resource tracker even when merely attaching (fixed upstream only in
    3.13's ``track=False``).  A fleet worker is its own interpreter with
    its own tracker, so without this a dying worker's tracker would
    "clean up" — i.e. unlink — segments the writer process still owns
    and serves.  Attachments are close-only by design; the owner's
    registry is the only unlinker.
    """
    try:
        resource_tracker.unregister(shm._name, "shared_memory")
    # repro: allow[swallow] - tracker impl details vary across versions
    except (AttributeError, KeyError, ValueError):  # pragma: no cover
        pass


def _create_named_segment(label: str, size: int) -> shared_memory.SharedMemory:
    """A fresh segment named ``{prefix}_{pid}_{label}_{token}``.

    The random token keeps concurrent owners (and re-created sessions in
    one process) from colliding; the pid component lets a leak check
    attribute any stray segment to its creator.
    """
    fault_point("process.segment.create")
    for _ in range(16):
        name = (
            f"{SEGMENT_PREFIX}_{os.getpid()}_{label}_{secrets.token_hex(4)}"
        )
        try:
            return shared_memory.SharedMemory(
                create=True, name=name, size=size
            )
        # repro: allow[swallow] - retry; the loop raises after 16 misses
        except FileExistsError:  # pragma: no cover - 2^32 collision
            continue
    raise SimulationError(
        f"could not allocate a shared segment for {label!r}"
    )  # pragma: no cover - requires 16 collisions


class SegmentRegistry:
    """Owner-side bookkeeping for a group of named shared segments.

    Every shared-memory layer in the codebase (the process-pool backend
    here, the service's zero-copy :class:`~repro.service.shm.StorePublisher`)
    funnels segment creation through one of these so the lifecycle story
    is identical everywhere: the registry owns its segments, `close`
    (or the GC finalizer, or the atexit/SIGTERM sweep over
    :data:`_LIVE_REGISTRIES`) closes **and unlinks** all of them, and
    per-segment :meth:`release` lets a long-lived owner retire old
    epochs without tearing the rest down.

    Reader-side attachment is a classmethod on purpose: attachments are
    *not* owned (close-only, never unlink) and their lifetime rides on
    the returned numpy view via a GC finalizer, so readers can drop a
    stale epoch's views and have the mapping unmapped without any
    explicit bookkeeping.
    """

    def __init__(self, *, untracked: bool = False) -> None:
        self._owned: Dict[str, shared_memory.SharedMemory] = {}
        self._lock = threading.Lock()
        self._owner_pid = os.getpid()
        # ``untracked`` opts owned segments out of this process's
        # resource tracker.  A durable fleet writer wants exactly that:
        # if it is SIGKILLed, its segments must *survive* so a promoted
        # shard can adopt the manifest and serve through the failover —
        # the tracker's "leak cleanup" would unlink the very state the
        # WAL protects.  Normal exits still unlink everything through
        # this registry (close/atexit/SIGTERM sweep).
        self._untracked = bool(untracked)
        self._finalizer = weakref.finalize(
            self, _release_named, self._owned, self._owner_pid
        )
        _LIVE_REGISTRIES.add(self)

    # -- owner side -----------------------------------------------------
    def publish(self, label: str, array: np.ndarray) -> SharedArraySpec:
        """Copy ``array`` into a fresh named segment; return its spec."""
        if self.closed:
            raise SimulationError("segment registry already closed")
        arr = np.ascontiguousarray(array)
        # Zero-length arrays are legal (edgeless graphs) but zero-byte
        # segments are not; round up to one byte.
        shm = _create_named_segment(label, max(arr.nbytes, 1))
        if self._untracked:
            untrack_attachment(shm)
        # Register *before* the copy: if the fill raises, close() still
        # unlinks the fresh segment instead of leaking it.
        with self._lock:
            self._owned[shm.name] = shm
        view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf)
        view[...] = arr
        del view  # drop the exported buffer so close() can unmap
        return SharedArraySpec(shm.name, tuple(arr.shape), arr.dtype.str)

    def create_block(self, label: str, size: int) -> shared_memory.SharedMemory:
        """A fresh raw segment the caller keeps writing through.

        The registry still owns (and will unlink) it; the caller must
        not close or unlink the returned handle itself.
        """
        if self.closed:
            raise SimulationError("segment registry already closed")
        shm = _create_named_segment(label, max(int(size), 1))
        if self._untracked:
            untrack_attachment(shm)
        with self._lock:
            self._owned[shm.name] = shm
        return shm

    def read(self, spec: SharedArraySpec) -> np.ndarray:
        """Copy one owned array out of its segment."""
        with self._lock:
            shm = self._owned.get(spec.shm_name)
        if shm is None:
            raise SimulationError(
                f"no owned segment named {spec.shm_name!r}"
            )
        view = np.ndarray(
            spec.shape, dtype=np.dtype(spec.dtype), buffer=shm.buf
        )
        out = np.array(view)
        del view  # drop the exported buffer so close() can unmap
        return out

    def release(self, names: Sequence[str]) -> int:
        """Close + unlink the named owned segments; returns how many.

        Unknown names are ignored (idempotent): an epoch can be retired
        twice without error.  Readers that already attached keep their
        mappings — POSIX unlink removes the name, not the memory.
        """
        retired: Dict[str, shared_memory.SharedMemory] = {}
        with self._lock:
            for name in names:
                shm = self._owned.pop(name, None)
                if shm is not None:
                    retired[name] = shm
        count = len(retired)
        _release_named(retired)
        return count

    # -- reader side ----------------------------------------------------
    @classmethod
    def attach(
        cls, spec: SharedArraySpec, *, writable: bool = False
    ) -> np.ndarray:
        """Zero-copy numpy view over an existing named segment.

        The mapping is closed (never unlinked) by a GC finalizer when
        the returned view is collected, so callers manage lifetime by
        simply dropping references.  Read-only by default: readers of a
        published store must not be able to corrupt it.
        """
        shm = shared_memory.SharedMemory(name=spec.shm_name)
        untrack_attachment(shm)
        view = np.ndarray(
            spec.shape, dtype=np.dtype(spec.dtype), buffer=shm.buf
        )
        if not writable:
            view.flags.writeable = False
        weakref.finalize(view, _close_attached, shm)
        return view

    # -- lifecycle ------------------------------------------------------
    def names(self) -> Tuple[str, ...]:
        with self._lock:
            return tuple(self._owned)

    def close(self) -> None:
        """Close and unlink every owned segment (safe to call repeatedly)."""
        self._finalizer()

    @property
    def closed(self) -> bool:
        return not self._finalizer.alive

    def __enter__(self) -> "SegmentRegistry":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SharedGraph:
    """Owner-side copy of one graph (plus oracle invariants) in shared memory.

    Creating one copies the six arrays into fresh segments exactly once;
    :attr:`handle` is the picklable attachment recipe handed to workers.
    The segments are unlinked by :meth:`close`, the context manager, or —
    as a last resort — a GC finalizer, so abandoned instances cannot leak
    ``/dev/shm`` entries.
    """

    def __init__(self, graph: Graph, config: SimilarityConfig | None = None) -> None:
        config = config or SimilarityConfig()
        config.validate()
        oracle = SimilarityOracle(graph, config)
        lengths, max_weights, linear_sums = oracle.precomputed_arrays()
        arrays = {
            "indptr": graph.indptr,
            "indices": graph.indices,
            "weights": graph.weights,
            "lengths": lengths,
            "max_weights": max_weights,
            "linear_sums": linear_sums,
            "sigma_out": np.zeros(graph.indices.shape[0], dtype=np.float64),
        }
        registry = SegmentRegistry()
        specs: List[Tuple[str, SharedArraySpec]] = []
        try:
            for label in _ARRAY_LABELS:
                specs.append((label, registry.publish(label, arrays[label])))
        except BaseException:
            registry.close()
            raise
        self._registry = registry
        self.handle = SharedGraphHandle(
            specs=tuple(specs), similarity=config
        )

    def read_array(self, label: str) -> np.ndarray:
        """Copy one published array out of its shared segment."""
        if self.closed:
            raise SimulationError("shared graph already closed")
        for name, spec in self.handle.specs:
            if name == label:
                return self._registry.read(spec)
        raise SimulationError(f"no shared array labelled {label!r}")

    def close(self) -> None:
        """Close and unlink every segment (safe to call repeatedly)."""
        self._registry.close()

    @property
    def closed(self) -> bool:
        return self._registry.closed

    def __enter__(self) -> "SharedGraph":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------
#: Per-process attachment state, set once by the pool initializer.  Each
#: worker process has its own copy of this module, so the global is
#: process-local by construction and never shared between workers.
_WORKER_STATE: Optional[dict] = None

#: How often a worker checks that its parent is still alive (seconds).
_PARENT_POLL_SECONDS = 0.5


def _start_parent_watchdog() -> None:
    """Exit this worker when the parent process disappears.

    A SIGKILL'd parent runs no cleanup hook, so the only path back to a
    clean ``/dev/shm`` is the multiprocessing resource tracker — and the
    tracker only sweeps once *every* process holding its pipe has died.
    Orphaned pool workers block on the call queue forever (the queue's
    writers include the workers themselves, so no EOF ever arrives),
    which would keep the tracker pipe open and the segments leaked.
    Reparenting (``getppid`` changing) is the death signal; ``os._exit``
    skips worker-side cleanup on purpose — the tracker owns it.
    """
    parent = os.getppid()

    def watch() -> None:
        while os.getppid() == parent:
            time.sleep(_PARENT_POLL_SECONDS)
        os._exit(1)

    threading.Thread(
        target=watch, name="parent-watchdog", daemon=True
    ).start()


def _worker_init(handle: SharedGraphHandle) -> None:
    """Attach the shared segments and rebuild graph + oracle, once.

    Workers never unlink: pool processes share the parent's resource
    tracker, so attaching re-registers the same name as a set no-op and
    the parent's single unlink is the whole cleanup story.
    """
    _start_parent_watchdog()
    fault_point("process.worker.init")
    global _WORKER_STATE
    segments = []
    views = {}
    for label, spec in handle.specs:
        shm = shared_memory.SharedMemory(name=spec.shm_name)
        segments.append(shm)
        views[label] = np.ndarray(
            spec.shape, dtype=np.dtype(spec.dtype), buffer=shm.buf
        )
    # validate=False: the arrays were validated when the owner built the
    # graph; ascontiguousarray on an aligned view is zero-copy.
    graph = Graph(
        views["indptr"], views["indices"], views["weights"], validate=False
    )
    oracle = SimilarityOracle(
        graph,
        handle.similarity,
        precomputed=(
            views["lengths"], views["max_weights"], views["linear_sums"]
        ),
    )
    # Process-local cache: this module instance lives in exactly one
    # worker process, so the write is not shared state.  # repro: allow[R1]
    _WORKER_STATE = {
        "segments": segments,
        "graph": graph,
        "oracle": oracle,
        "sigma_out": views["sigma_out"],
    }


def _worker_oracle() -> SimilarityOracle:
    if _WORKER_STATE is None:  # pragma: no cover - defensive
        raise SimulationError("worker used before pool initialization")
    return _WORKER_STATE["oracle"]


def _range_query_chunk(task: Tuple[Sequence[int], float]) -> List[np.ndarray]:
    fault_point("process.worker.chunk")
    vertices, epsilon = task
    oracle = _worker_oracle()
    return [oracle.eps_neighborhood(int(v), epsilon) for v in vertices]


def _edge_sigma_chunk(task: Sequence[Tuple[int, int]]) -> np.ndarray:
    fault_point("process.worker.chunk")
    oracle = _worker_oracle()
    return np.asarray(
        [oracle.sigma_unrecorded(int(u), int(v)) for u, v in task],
        dtype=np.float64,
    )


def _sigma_row_chunk(task: Tuple[int, int]) -> None:
    """Fill ``sigma_out`` for one vertex range's CSR rows.

    Vertex ranges are disjoint, so the slot slices
    ``indptr[lo]:indptr[hi]`` are disjoint across workers — each shared
    slice has exactly one writer and no reader until the barrier.
    """
    fault_point("process.worker.chunk")
    lo, hi = task
    if _WORKER_STATE is None:  # pragma: no cover - defensive
        raise SimulationError("worker used before pool initialization")
    oracle = _WORKER_STATE["oracle"]
    indptr = _WORKER_STATE["graph"].indptr
    sigma_out = _WORKER_STATE["sigma_out"]
    sigma_out[int(indptr[lo]) : int(indptr[hi])] = oracle.sigma_row_block(
        lo, hi
    )


# ----------------------------------------------------------------------
# the backend
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _FallbackResult:
    """Marks a result produced by the retry path (already final-shaped)."""

    value: object


class ProcessBackend:
    """Chunked parallel map over a pool of real processes.

    Mirrors :class:`~repro.parallel.threads.ThreadBackend`'s chunked-map
    API for the three SCAN workloads (range queries, edge σ, neighbor
    updates).  Worker callables must be module-level functions (they are
    pickled); closures stay the thread backend's territory.

    Parameters
    ----------
    workers:
        Pool width; defaults to ``os.cpu_count()``.
    chunk_size:
        Work items handed to a worker per task, as in OpenMP's
        ``schedule(dynamic, chunk)``.
    allow_fallback:
        Degrade to an equivalent thread backend when shared memory is
        unavailable (or forced off), or after the failure budget is
        spent; when ``False`` such conditions raise
        :class:`~repro.errors.SimulationError` instead.
    start_method:
        ``multiprocessing`` start method; defaults to ``fork`` where
        available (cheapest on Linux) and the platform default elsewhere.
    max_chunk_retries:
        How many times one chunk may fail with an ordinary exception
        (not a pool death) before the backend gives up on the process
        path; retries back off exponentially with jitter.
    failure_budget:
        How many pool deaths (:class:`BrokenProcessPool`) the backend
        absorbs — respawning the pool and reassigning the dead workers'
        chunks — before it degrades to the thread fallback for good.
    retry_backoff:
        Base sleep (seconds) before re-running a failed chunk; attempt
        ``k`` sleeps ``retry_backoff * 2**(k-1)`` scaled by a random
        jitter in ``[1, 2)``.
    on_degrade:
        Optional callback receiving the :class:`DegradationEvent` when
        the fallback engages (process-wide listeners fire as well).
    """

    def __init__(
        self,
        workers: int | None = None,
        chunk_size: int = 256,
        *,
        allow_fallback: bool = True,
        start_method: str | None = None,
        max_chunk_retries: int = 2,
        failure_budget: int = 2,
        retry_backoff: float = 0.05,
        on_degrade: Optional[Callable[[DegradationEvent], None]] = None,
    ) -> None:
        self.workers = int(workers) if workers is not None else (os.cpu_count() or 1)
        self.chunk_size = int(chunk_size)
        self.allow_fallback = bool(allow_fallback)
        self.start_method = start_method
        self.max_chunk_retries = int(max_chunk_retries)
        self.failure_budget = int(failure_budget)
        self.retry_backoff = float(retry_backoff)
        self.on_degrade = on_degrade
        self._shared: Optional[SharedGraph] = None
        self._executor: Optional[ProcessPoolExecutor] = None
        self._graph: Optional[Graph] = None
        self._config: Optional[SimilarityConfig] = None
        self._fallback: Optional[ThreadBackend] = None
        self._failures = 0
        self._degraded = False
        self._retry_rng = random.Random(0xC0FFEE)

    # -- lifecycle ------------------------------------------------------
    def validate(self) -> None:
        if self.workers < 1:
            raise SimulationError("need at least one worker")
        if self.chunk_size < 1:
            raise SimulationError("chunk_size must be >= 1")
        if self.max_chunk_retries < 0:
            raise SimulationError("max_chunk_retries must be >= 0")
        if self.failure_budget < 0:
            raise SimulationError("failure_budget must be >= 0")
        if self.retry_backoff < 0:
            raise SimulationError("retry_backoff must be >= 0")

    @property
    def kind(self) -> str:
        """``"process"``, or ``"thread"`` once the fallback engaged."""
        return "thread" if self._fallback is not None else "process"

    def close(self) -> None:
        """Shut the pool down and unlink the shared segments."""
        executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)
        shared, self._shared = self._shared, None
        if shared is not None:
            shared.close()
        self._graph = None
        self._config = None

    def __enter__(self) -> "ProcessBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
        # repro: allow[swallow] - interpreter may already be tearing down
        except Exception:
            pass

    # -- session management --------------------------------------------
    def _thread_fallback(self, reason: str) -> ThreadBackend:
        if not self.allow_fallback:
            raise SimulationError(
                f"process backend unavailable ({reason}) and fallback "
                "is disabled"
            )
        if self._fallback is None:
            self._fallback = ThreadBackend(
                threads=self.workers, chunk_size=self.chunk_size
            )
            event = DegradationEvent(
                backend="process",
                reason=reason,
                failures=self._failures,
                workers=self.workers,
            )
            if self.on_degrade is not None:
                try:
                    self.on_degrade(event)
                except Exception:  # repro: allow[swallow] - observers must not mask
                    pass
            _emit_degradation(event)
        return self._fallback

    def _make_executor(self) -> ProcessPoolExecutor:
        """A fresh pool attached to the current shared graph."""
        fault_point("process.pool.spawn")
        assert self._shared is not None
        mp_context = None
        method = self.start_method
        if method is None and "fork" in multiprocessing.get_all_start_methods():
            method = "fork"
        if method is not None:
            mp_context = multiprocessing.get_context(method)
        return ProcessPoolExecutor(
            max_workers=self.workers,
            mp_context=mp_context,
            initializer=_worker_init,
            initargs=(self._shared.handle,),
        )

    def _ensure_session(
        self, graph: Graph, config: SimilarityConfig
    ) -> Optional[ThreadBackend]:
        """Spin up (or reuse) the pool; a ThreadBackend means fallback."""
        self.validate()
        if self._degraded:
            return self._thread_fallback("degraded after repeated failures")
        if not shared_memory_available():
            return self._thread_fallback("shared memory unavailable")
        if (
            self._executor is not None
            and self._graph is graph
            and self._config == config
        ):
            return None
        self.close()
        try:
            self._shared = SharedGraph(graph, config)
            self._executor = self._make_executor()
        except (OSError, ValueError, MemoryError, FaultInjected) as exc:
            self.close()
            return self._thread_fallback(f"pool setup failed: {exc}")
        self._graph = graph
        self._config = config
        return None

    def _chunks(self, items: list) -> List[list]:
        return [
            items[i : i + self.chunk_size]
            for i in range(0, len(items), self.chunk_size)
        ]

    def _sleep_backoff(self, attempt: int) -> None:
        """Exponential backoff with jitter before re-running a chunk."""
        if self.retry_backoff <= 0:
            return
        delay = self.retry_backoff * (2 ** max(0, attempt - 1))
        delay *= 1.0 + self._retry_rng.random()
        time.sleep(min(delay, 1.0))

    def _give_up(self, reason: str, cause: BaseException, retry):
        """Abandon the process path: degrade for good or raise."""
        self.close()
        if not self.allow_fallback:
            raise SimulationError(
                f"process backend failed ({reason}) and fallback is disabled"
            ) from cause
        self._degraded = True
        self._thread_fallback(reason)
        return _FallbackResult(retry())

    def _run_chunks(self, fn, tasks, retry):
        """Order-preserving map over the pool with failure recovery.

        Chunks that fail with an ordinary exception are re-submitted up
        to ``max_chunk_retries`` times with exponential backoff.  A dead
        pool (OOM-killed or crashed worker) is detected as
        :class:`BrokenProcessPool`: completed chunks keep their results,
        the pool is respawned, and the dead workers' chunks are
        reassigned — until ``failure_budget`` deaths, after which the
        backend degrades for good to the thread fallback and re-runs the
        whole batch via ``retry`` (returned wrapped in
        :class:`_FallbackResult` because it is already final-shaped).
        Chunks are idempotent by construction (pure reads, or disjoint
        slice writes re-written whole on retry), so reassignment cannot
        corrupt results.
        """
        tasks = list(tasks)
        results: List[object] = [None] * len(tasks)
        pending = list(range(len(tasks)))
        attempts = [0] * len(tasks)
        while pending:
            assert self._executor is not None
            futures = [
                (self._executor.submit(fn, tasks[i]), i) for i in pending
            ]
            requeue: List[int] = []
            pool_broke: Optional[BaseException] = None
            for future, i in futures:
                if pool_broke is not None:
                    # The pool is dead; keep whatever finished cleanly
                    # and reassign the rest after the respawn.
                    if future.done() and future.exception() is None:
                        results[i] = future.result()
                    else:
                        requeue.append(i)
                    continue
                try:
                    results[i] = future.result()
                # Accounted after the drain loop: failure budget, pool
                # respawn, or degradation.  # repro: allow[swallow]
                except BrokenProcessPool as exc:
                    pool_broke = exc
                    requeue.append(i)
                except Exception as exc:
                    attempts[i] += 1
                    if attempts[i] > self.max_chunk_retries:
                        return self._give_up(
                            f"chunk failed {attempts[i]} times: {exc}",
                            exc,
                            retry,
                        )
                    requeue.append(i)
                    self._sleep_backoff(attempts[i])
            if pool_broke is not None:
                self._failures += 1
                if self._failures > self.failure_budget:
                    return self._give_up(
                        f"process pool died {self._failures} times: "
                        f"{pool_broke}",
                        pool_broke,
                        retry,
                    )
                try:
                    self._respawn_pool()
                except (OSError, ValueError, FaultInjected) as exc:
                    return self._give_up(
                        f"pool respawn failed: {exc}", exc, retry
                    )
            pending = requeue
        return results

    def _respawn_pool(self) -> None:
        """Replace a dead executor, keeping the shared segments."""
        executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=False, cancel_futures=True)
        self._executor = self._make_executor()

    # -- the three SCAN workloads --------------------------------------
    def map_range_queries(
        self,
        graph: Graph,
        vertices: Sequence[int],
        epsilon: float,
        *,
        config: SimilarityConfig | None = None,
    ) -> List[np.ndarray]:
        """ε-neighborhoods for a batch of vertices (σ-evaluation phase)."""
        check_eps_mu(epsilon=epsilon)
        config = config or SimilarityConfig()
        items = [int(v) for v in vertices]
        if not items:
            return []

        def sequentialize():
            return _threads.parallel_range_queries(
                graph, items, epsilon, backend=self._fallback, config=config
            )

        if self._ensure_session(graph, config) is not None:
            return sequentialize()
        tasks = [(chunk, float(epsilon)) for chunk in self._chunks(items)]
        out = self._run_chunks(_range_query_chunk, tasks, sequentialize)
        if isinstance(out, _FallbackResult):
            return out.value
        return [hood for chunk in out for hood in chunk]

    def map_edge_similarities(
        self,
        graph: Graph,
        edges: Sequence[Tuple[int, int]],
        *,
        config: SimilarityConfig | None = None,
    ) -> np.ndarray:
        """σ for a batch of edges (the ideal algorithm's parallel block)."""
        config = config or SimilarityConfig()
        items = [(int(u), int(v)) for u, v in edges]
        if not items:
            return np.zeros(0, dtype=np.float64)

        def sequentialize():
            return _threads.parallel_edge_similarities(
                graph, items, backend=self._fallback, config=config
            )

        if self._ensure_session(graph, config) is not None:
            return sequentialize()
        tasks = self._chunks(items)
        out = self._run_chunks(_edge_sigma_chunk, tasks, sequentialize)
        if isinstance(out, _FallbackResult):
            return out.value
        return np.concatenate(out)

    def map_sigma_rows(
        self,
        graph: Graph,
        *,
        config: SimilarityConfig | None = None,
    ) -> np.ndarray:
        """σ for every directed CSR edge (the index build's σ phase).

        Workers fill disjoint vertex-range slices of the shared
        ``sigma_out`` segment through the batched kernels; after the
        barrier the parent copies the assembled array out in one read.
        Because slot (u, v) is always computed by expanding v's row, the
        result is bitwise-identical to the sequential and thread paths.
        """
        config = config or SimilarityConfig()
        if graph.indices.shape[0] == 0:
            return np.zeros(0, dtype=np.float64)

        def sequentialize():
            return _threads.parallel_sigma_rows(
                graph, backend=self._fallback, config=config
            )

        if self._ensure_session(graph, config) is not None:
            return sequentialize()
        n = graph.num_vertices
        tasks = [
            (lo, min(lo + self.chunk_size, n))
            for lo in range(0, n, self.chunk_size)
        ]
        out = self._run_chunks(_sigma_row_chunk, tasks, sequentialize)
        if isinstance(out, _FallbackResult):
            return out.value
        assert self._shared is not None
        return self._shared.read_array("sigma_out")

    def map_neighbor_updates(
        self,
        graph: Graph,
        vertices: Sequence[int],
        epsilon: float,
        *,
        config: SimilarityConfig | None = None,
        out: np.ndarray | None = None,
    ) -> Tuple[List[np.ndarray], np.ndarray]:
        """Range queries plus the shared ε-touch counts.

        Workers never write shared state: each returns its chunk's
        neighborhoods and the parent reduces them into the counter array
        (a sum reduction is arithmetically identical to the thread
        backend's one-atomic-per-neighbor updates).
        """
        check_eps_mu(epsilon=epsilon)
        hoods = self.map_range_queries(
            graph, vertices, epsilon, config=config
        )
        flat = (
            np.concatenate(hoods)
            if hoods
            else np.zeros(0, dtype=np.int64)
        )
        counts = np.bincount(flat, minlength=graph.num_vertices).astype(np.int64)
        if out is None:
            return hoods, counts
        out[...] = np.asarray(out) + counts
        return hoods, out


# ----------------------------------------------------------------------
# module-level conveniences mirroring repro.parallel.threads
# ----------------------------------------------------------------------
def parallel_range_queries(
    graph: Graph,
    vertices: Sequence[int],
    epsilon: float,
    *,
    backend: ProcessBackend | None = None,
    config: SimilarityConfig | None = None,
) -> List[np.ndarray]:
    """ε-neighborhoods on real processes; owns a throwaway backend if needed."""
    check_eps_mu(epsilon=epsilon)
    if backend is not None:
        return backend.map_range_queries(graph, vertices, epsilon, config=config)
    with ProcessBackend() as owned:
        return owned.map_range_queries(graph, vertices, epsilon, config=config)


def parallel_edge_similarities(
    graph: Graph,
    edges: Sequence[Tuple[int, int]],
    *,
    backend: ProcessBackend | None = None,
    config: SimilarityConfig | None = None,
) -> np.ndarray:
    """Edge σ batch on real processes; owns a throwaway backend if needed."""
    if backend is not None:
        return backend.map_edge_similarities(graph, edges, config=config)
    with ProcessBackend() as owned:
        return owned.map_edge_similarities(graph, edges, config=config)


def parallel_sigma_rows(
    graph: Graph,
    *,
    backend: ProcessBackend | None = None,
    config: SimilarityConfig | None = None,
) -> np.ndarray:
    """All-edges σ on real processes; owns a throwaway backend if needed."""
    if backend is not None:
        return backend.map_sigma_rows(graph, config=config)
    with ProcessBackend() as owned:
        return owned.map_sigma_rows(graph, config=config)


def parallel_neighbor_updates(
    graph: Graph,
    vertices: Sequence[int],
    epsilon: float,
    *,
    backend: ProcessBackend | None = None,
    config: SimilarityConfig | None = None,
    out: np.ndarray | None = None,
) -> Tuple[List[np.ndarray], np.ndarray]:
    """Neighbor-touch counting on real processes (parent-side reduction)."""
    check_eps_mu(epsilon=epsilon)
    if backend is not None:
        return backend.map_neighbor_updates(
            graph, vertices, epsilon, config=config, out=out
        )
    with ProcessBackend() as owned:
        return owned.map_neighbor_updates(
            graph, vertices, epsilon, config=config, out=out
        )
