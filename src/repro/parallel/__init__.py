"""Parallel execution: simulated machine, real threads, real processes."""

from repro.parallel.backends import (
    BACKEND_NAMES,
    backend_kind,
    close_backend,
    create_backend,
    resolve_backend_name,
    run_edge_similarities,
    run_neighbor_updates,
    run_range_queries,
)
from repro.parallel.costs import IterationCosts, ParallelBlock
from repro.parallel.processes import (
    ProcessBackend,
    SharedGraph,
    shared_memory_available,
)
from repro.parallel.sync import (
    atomic_add,
    atomic_max,
    atomic_min,
    atomic_store,
    critical,
    critical_union,
)
from repro.parallel.threads import (
    ThreadBackend,
    parallel_edge_similarities,
    parallel_range_queries,
)
from repro.parallel.simulator import (
    BlockTiming,
    MachineSpec,
    MulticoreSimulator,
    speedup_curve,
)

__all__ = [
    "ParallelBlock",
    "IterationCosts",
    "MachineSpec",
    "BlockTiming",
    "MulticoreSimulator",
    "speedup_curve",
    "ThreadBackend",
    "ProcessBackend",
    "SharedGraph",
    "shared_memory_available",
    "BACKEND_NAMES",
    "resolve_backend_name",
    "create_backend",
    "backend_kind",
    "close_backend",
    "run_range_queries",
    "run_edge_similarities",
    "run_neighbor_updates",
    "parallel_range_queries",
    "parallel_edge_similarities",
    "atomic_add",
    "atomic_store",
    "atomic_max",
    "atomic_min",
    "critical",
    "critical_union",
]
