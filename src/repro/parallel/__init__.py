"""Simulated shared-memory multicore machine (OpenMP substitute)."""

from repro.parallel.costs import IterationCosts, ParallelBlock
from repro.parallel.threads import (
    ThreadBackend,
    parallel_edge_similarities,
    parallel_range_queries,
)
from repro.parallel.simulator import (
    BlockTiming,
    MachineSpec,
    MulticoreSimulator,
    speedup_curve,
)

__all__ = [
    "ParallelBlock",
    "IterationCosts",
    "MachineSpec",
    "BlockTiming",
    "MulticoreSimulator",
    "speedup_curve",
    "ThreadBackend",
    "parallel_range_queries",
    "parallel_edge_similarities",
]
