"""Simulated shared-memory multicore machine (OpenMP substitute)."""

from repro.parallel.costs import IterationCosts, ParallelBlock
from repro.parallel.sync import (
    atomic_add,
    atomic_max,
    atomic_min,
    atomic_store,
    critical,
    critical_union,
)
from repro.parallel.threads import (
    ThreadBackend,
    parallel_edge_similarities,
    parallel_range_queries,
)
from repro.parallel.simulator import (
    BlockTiming,
    MachineSpec,
    MulticoreSimulator,
    speedup_curve,
)

__all__ = [
    "ParallelBlock",
    "IterationCosts",
    "MachineSpec",
    "BlockTiming",
    "MulticoreSimulator",
    "speedup_curve",
    "ThreadBackend",
    "parallel_range_queries",
    "parallel_edge_similarities",
    "atomic_add",
    "atomic_store",
    "atomic_max",
    "atomic_min",
    "critical",
    "critical_union",
]
