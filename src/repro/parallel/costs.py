"""Cost records bridging the algorithm and the multicore simulator.

CPython's GIL makes real shared-memory speedups impossible for this
workload (see DESIGN.md §3), so the parallel behaviour of anySCAN is
reproduced by *measuring* the true per-task work of the algorithm — every
similarity evaluation is priced by its merge cost — and replaying it on a
simulated multicore machine.  The algorithm records one
:class:`IterationCosts` per anytime iteration; each OpenMP
``parallel for`` of Figure 4 becomes a :class:`ParallelBlock` whose tasks
carry their measured work units, plus counts of the atomic operations and
critical sections the pseudo-code issues.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

__all__ = ["ParallelBlock", "IterationCosts"]


@dataclass
class ParallelBlock:
    """One ``#pragma omp parallel for schedule(dynamic)`` worth of work.

    Attributes
    ----------
    name:
        Which loop of Figure 4 this block corresponds to (e.g.
        ``"step1/range-queries"``).
    task_costs:
        Measured work units of each loop iteration (one task per vertex).
    atomic_ops:
        Number of atomic increments issued inside the block (Figure 4
        line 14-15); each costs a small constant on the simulated machine.
    critical_costs:
        Work units of each critical section entered inside the block
        (the ``Union`` calls of Figure 4 lines 41-42 / 60-61); critical
        sections serialize on the global lock.
    """

    name: str
    task_costs: List[float] = field(default_factory=list)
    atomic_ops: int = 0
    critical_costs: List[float] = field(default_factory=list)

    def add_task(self, cost: float) -> None:
        """Record one loop iteration's measured work."""
        self.task_costs.append(float(cost))

    @property
    def total_work(self) -> float:
        return float(sum(self.task_costs))


@dataclass
class IterationCosts:
    """Everything one anytime iteration did, ready for replay.

    ``sequential_cost`` covers the parts Figure 4 keeps sequential (the
    super-node insertion of Step 1 lines 16-24 and loop bookkeeping); the
    paper measures these to be negligible, and the benches verify that.
    """

    step: str
    index: int
    blocks: List[ParallelBlock] = field(default_factory=list)
    sequential_cost: float = 0.0

    def new_block(self, name: str) -> ParallelBlock:
        """Open a new parallel block within this iteration."""
        block = ParallelBlock(name=name)
        self.blocks.append(block)
        return block

    @property
    def total_work(self) -> float:
        """Parallelizable plus sequential work of the iteration."""
        return sum(b.total_work for b in self.blocks) + self.sequential_cost

    @property
    def total_atomic_ops(self) -> int:
        return sum(b.atomic_ops for b in self.blocks)

    @property
    def total_critical_sections(self) -> int:
        return sum(len(b.critical_costs) for b in self.blocks)
