"""Execution-backend registry: ``"thread" | "process" | "auto"``.

One small indirection shared by :mod:`repro.core.parallel`, the bench
harness, and the CLI, so every caller selects real-execution backends
the same way:

* ``"thread"``  — :class:`~repro.parallel.threads.ThreadBackend`
  (GIL-bound; result parity, no wall-clock speedup on CPython);
* ``"process"`` — :class:`~repro.parallel.processes.ProcessBackend`
  (shared-memory process pool; real multicore speedups);
* ``"auto"``    — process when the machine has more than one core and
  shared memory works, thread otherwise.

The ``run_*`` helpers dispatch one workload to whichever backend object
they are handed, so differential tests can sweep backends through a
single code path.
"""

from __future__ import annotations

import os
from typing import List, Sequence, Tuple, Union

import numpy as np

from repro.errors import SimulationError
from repro.graph.csr import Graph
from repro.parallel import threads as _threads
from repro.parallel.processes import ProcessBackend, shared_memory_available
from repro.parallel.threads import ThreadBackend
from repro.similarity.weighted import SimilarityConfig
from repro.validation import check_eps_mu

__all__ = [
    "BACKEND_NAMES",
    "Backend",
    "resolve_backend_name",
    "create_backend",
    "backend_kind",
    "close_backend",
    "run_range_queries",
    "run_edge_similarities",
    "run_neighbor_updates",
    "run_sigma_rows",
]

#: Names accepted everywhere a backend is selected.
BACKEND_NAMES = ("thread", "process", "auto")

Backend = Union[ThreadBackend, ProcessBackend]


def resolve_backend_name(name: str = "auto") -> str:
    """Resolve a registry name to ``"thread"`` or ``"process"``."""
    if name not in BACKEND_NAMES:
        raise SimulationError(
            f"unknown backend {name!r}; one of {BACKEND_NAMES}"
        )
    if name != "auto":
        return name
    cores = os.cpu_count() or 1
    if cores > 1 and shared_memory_available():
        return "process"
    return "thread"


def create_backend(
    name: str = "auto",
    *,
    workers: int | None = None,
    chunk_size: int | None = None,
) -> Backend:
    """Build the backend object a registry name stands for."""
    resolved = resolve_backend_name(name)
    if resolved == "thread":
        return ThreadBackend(
            threads=workers or (os.cpu_count() or 1),
            chunk_size=chunk_size or 64,
        )
    return ProcessBackend(workers=workers, chunk_size=chunk_size or 256)


def backend_kind(backend: Backend) -> str:
    """Effective kind of a backend object (fallback-aware)."""
    if isinstance(backend, ProcessBackend):
        return backend.kind
    return "thread"


def close_backend(backend: Backend) -> None:
    """Release backend resources (no-op for thread backends)."""
    if isinstance(backend, ProcessBackend):
        backend.close()


# ----------------------------------------------------------------------
# uniform workload dispatch
# ----------------------------------------------------------------------
def run_range_queries(
    graph: Graph,
    vertices: Sequence[int],
    epsilon: float,
    *,
    backend: Backend,
    config: SimilarityConfig | None = None,
) -> List[np.ndarray]:
    """ε-neighborhood batch on whichever backend object is handed in."""
    check_eps_mu(epsilon=epsilon)
    if isinstance(backend, ProcessBackend):
        return backend.map_range_queries(
            graph, vertices, epsilon, config=config
        )
    return _threads.parallel_range_queries(
        graph, vertices, epsilon, backend=backend, config=config
    )


def run_edge_similarities(
    graph: Graph,
    edges: Sequence[Tuple[int, int]],
    *,
    backend: Backend,
    config: SimilarityConfig | None = None,
) -> np.ndarray:
    """Edge σ batch on whichever backend object is handed in."""
    if isinstance(backend, ProcessBackend):
        return backend.map_edge_similarities(graph, edges, config=config)
    return _threads.parallel_edge_similarities(
        graph, edges, backend=backend, config=config
    )


def run_sigma_rows(
    graph: Graph,
    *,
    backend: Backend,
    config: SimilarityConfig | None = None,
) -> np.ndarray:
    """All-edges σ (the index build) on whichever backend is handed in."""
    if isinstance(backend, ProcessBackend):
        return backend.map_sigma_rows(graph, config=config)
    return _threads.parallel_sigma_rows(
        graph, backend=backend, config=config
    )


def run_neighbor_updates(
    graph: Graph,
    vertices: Sequence[int],
    epsilon: float,
    *,
    backend: Backend,
    config: SimilarityConfig | None = None,
    out: np.ndarray | None = None,
) -> Tuple[List[np.ndarray], np.ndarray]:
    """Neighbor-touch counting on whichever backend object is handed in."""
    check_eps_mu(epsilon=epsilon)
    if isinstance(backend, ProcessBackend):
        return backend.map_neighbor_updates(
            graph, vertices, epsilon, config=config, out=out
        )
    return _threads.parallel_neighbor_updates(
        graph, vertices, epsilon, backend=backend, config=config, out=out
    )
