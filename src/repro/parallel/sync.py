"""Declared atomic/critical helpers — the R1 contract's vocabulary.

Figure 4 of the paper budgets each parallel iteration at **one atomic
per neighbor update and one critical section per ``Union``**.  Worker
callables executed by :class:`~repro.parallel.threads.ThreadBackend`
must route every write to shared state through the helpers in this
module; the static-analysis gate (rule R1 in :mod:`repro.analysis`)
flags any direct shared write, and the runtime shadow-write checker
(:mod:`repro.analysis.runtime`) verifies dynamically that guarded
writes stay race-free.

On CPython the GIL already serializes bytecode, so these helpers cost
one lock acquisition; on GIL-free builds they are what makes the
backend correct.  ``atomic_*`` helpers model hardware atomics (cheap,
per-element); :func:`critical` and :func:`critical_union` model the
paper's single global critical section.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager, nullcontext
from typing import Iterator

__all__ = [
    "atomic_add",
    "atomic_store",
    "atomic_max",
    "atomic_min",
    "critical",
    "critical_union",
    "in_guarded_section",
    "set_lock_order_watch",
    "get_lock_order_watch",
    "GLOBAL_LOCK_NAME",
]

#: One process-wide lock models the paper's global critical section; the
#: atomics share it because CPython has no finer-grained primitive.
_GLOBAL_LOCK = threading.RLock()

#: Canonical name the global lock reports to a lock-order watch — kept
#: equal to the static analyzer's id for it so runtime and static R7
#: reports name the same node.
GLOBAL_LOCK_NAME = "<global-critical>"

_guard_state = threading.local()

#: Optional lock-order sanitizer (duck-typed: needs ``notify_acquire``
#: and ``notify_release``).  Kept as a module global set by tests so
#: the helpers stay dependency-free; :mod:`repro.analysis.runtime`
#: provides the real :class:`~repro.analysis.runtime.LockOrderWatch`.
_lock_order_watch = None


def set_lock_order_watch(watch):
    """Arm (or with ``None`` disarm) the lock-order sanitizer.

    Every declared helper that takes the global critical-section lock —
    and :func:`critical` with a caller-supplied lock — reports its
    acquisition to the watch, so lock-order cycles between library
    locks and test locks surface at runtime.  Returns the previous
    watch so callers can restore it.
    """
    global _lock_order_watch
    previous = _lock_order_watch
    _lock_order_watch = watch
    return previous


def get_lock_order_watch():
    """The armed lock-order watch, or None."""
    return _lock_order_watch


@contextmanager
def _watched(name: str) -> Iterator[None]:
    """Report one acquisition span to the armed watch, if any."""
    watch = _lock_order_watch
    if watch is None:
        yield
        return
    watch.notify_acquire(name)
    try:
        yield
    finally:
        watch.notify_release(name)


def _lock_watch_name(lock) -> str:
    """Stable display name for a caller-supplied critical-section lock."""
    name = getattr(lock, "name", None)
    if isinstance(name, str) and name:
        return name
    return f"{type(lock).__name__}@{id(lock):#x}"


def in_guarded_section() -> bool:
    """Whether the calling thread is inside a declared atomic/critical."""
    return getattr(_guard_state, "depth", 0) > 0


@contextmanager
def _guarded() -> Iterator[None]:
    _guard_state.depth = getattr(_guard_state, "depth", 0) + 1
    try:
        yield
    finally:
        _guard_state.depth -= 1


def atomic_add(array, index, value):
    """Atomically ``array[index] += value``; returns the new value."""
    with _watched(GLOBAL_LOCK_NAME), _GLOBAL_LOCK, _guarded():
        array[index] += value
        return array[index]


def atomic_store(array, index, value):
    """Atomically ``array[index] = value``."""
    with _watched(GLOBAL_LOCK_NAME), _GLOBAL_LOCK, _guarded():
        array[index] = value


def atomic_max(array, index, value):
    """Atomically ``array[index] = max(array[index], value)``."""
    with _watched(GLOBAL_LOCK_NAME), _GLOBAL_LOCK, _guarded():
        if value > array[index]:
            array[index] = value
        return array[index]


def atomic_min(array, index, value):
    """Atomically ``array[index] = min(array[index], value)``."""
    with _watched(GLOBAL_LOCK_NAME), _GLOBAL_LOCK, _guarded():
        if value < array[index]:
            array[index] = value
        return array[index]


@contextmanager
def critical(lock: threading.RLock | threading.Lock | None = None) -> Iterator[None]:
    """One critical section (Figure 4 lines 41-42 / 60-61).

    Serializes on ``lock`` (the global lock when omitted), marks the
    section as guarded for the runtime shadow-write checker, and
    reports the acquisition to the armed lock-order watch.  A lock
    that notifies the watch itself (a ``WatchedLock`` proxy, spotted
    by its ``watch`` attribute) is not double-reported.
    """
    if lock is None:
        watched = _watched(GLOBAL_LOCK_NAME)
    elif getattr(lock, "watch", None) is not None:
        watched = nullcontext()
    else:
        watched = _watched(_lock_watch_name(lock))
    with watched, (lock if lock is not None else _GLOBAL_LOCK), _guarded():
        yield


def critical_union(disjoint_set, a: int, b: int, *, lock=None) -> bool:
    """``Union(a, b)`` inside one critical section; True when merged."""
    with critical(lock):
        return disjoint_set.union(a, b)
