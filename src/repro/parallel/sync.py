"""Declared atomic/critical helpers — the R1 contract's vocabulary.

Figure 4 of the paper budgets each parallel iteration at **one atomic
per neighbor update and one critical section per ``Union``**.  Worker
callables executed by :class:`~repro.parallel.threads.ThreadBackend`
must route every write to shared state through the helpers in this
module; the static-analysis gate (rule R1 in :mod:`repro.analysis`)
flags any direct shared write, and the runtime shadow-write checker
(:mod:`repro.analysis.runtime`) verifies dynamically that guarded
writes stay race-free.

On CPython the GIL already serializes bytecode, so these helpers cost
one lock acquisition; on GIL-free builds they are what makes the
backend correct.  ``atomic_*`` helpers model hardware atomics (cheap,
per-element); :func:`critical` and :func:`critical_union` model the
paper's single global critical section.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator

__all__ = [
    "atomic_add",
    "atomic_store",
    "atomic_max",
    "atomic_min",
    "critical",
    "critical_union",
    "in_guarded_section",
]

#: One process-wide lock models the paper's global critical section; the
#: atomics share it because CPython has no finer-grained primitive.
_GLOBAL_LOCK = threading.RLock()

_guard_state = threading.local()


def in_guarded_section() -> bool:
    """Whether the calling thread is inside a declared atomic/critical."""
    return getattr(_guard_state, "depth", 0) > 0


@contextmanager
def _guarded() -> Iterator[None]:
    _guard_state.depth = getattr(_guard_state, "depth", 0) + 1
    try:
        yield
    finally:
        _guard_state.depth -= 1


def atomic_add(array, index, value):
    """Atomically ``array[index] += value``; returns the new value."""
    with _GLOBAL_LOCK, _guarded():
        array[index] += value
        return array[index]


def atomic_store(array, index, value):
    """Atomically ``array[index] = value``."""
    with _GLOBAL_LOCK, _guarded():
        array[index] = value


def atomic_max(array, index, value):
    """Atomically ``array[index] = max(array[index], value)``."""
    with _GLOBAL_LOCK, _guarded():
        if value > array[index]:
            array[index] = value
        return array[index]


def atomic_min(array, index, value):
    """Atomically ``array[index] = min(array[index], value)``."""
    with _GLOBAL_LOCK, _guarded():
        if value < array[index]:
            array[index] = value
        return array[index]


@contextmanager
def critical(lock: threading.RLock | threading.Lock | None = None) -> Iterator[None]:
    """One critical section (Figure 4 lines 41-42 / 60-61).

    Serializes on ``lock`` (the global lock when omitted) and marks the
    section as guarded for the runtime shadow-write checker.
    """
    with (lock if lock is not None else _GLOBAL_LOCK), _guarded():
        yield


def critical_union(disjoint_set, a: int, b: int, *, lock=None) -> bool:
    """``Union(a, b)`` inside one critical section; True when merged."""
    with critical(lock):
        return disjoint_set.union(a, b)
