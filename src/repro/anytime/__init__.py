"""Anytime execution: interactive budgets, suspension, quality traces."""

from repro.anytime.runner import AnytimeRunner
from repro.anytime.stopping import (
    MarginalGain,
    StableClusters,
    StepReached,
    all_of,
    any_of,
)
from repro.anytime.trace import AnytimeTrace, TracePoint

__all__ = [
    "AnytimeRunner",
    "AnytimeTrace",
    "TracePoint",
    "StableClusters",
    "MarginalGain",
    "StepReached",
    "any_of",
    "all_of",
]
