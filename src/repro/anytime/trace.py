"""Traces of anytime runs: the data behind the Figure 5 curves."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional

__all__ = ["TracePoint", "AnytimeTrace"]


@dataclass(frozen=True)
class TracePoint:
    """Quality and cost of one anytime iteration."""

    iteration: int
    step: str
    wall_time: float
    work_units: float
    quality: float
    num_clusters: int
    assigned_fraction: float
    final: bool = False


@dataclass
class AnytimeTrace:
    """Sequence of :class:`TracePoint` collected over one run."""

    points: List[TracePoint] = field(default_factory=list)

    def append(self, point: TracePoint) -> None:
        self.points.append(point)

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self) -> Iterator[TracePoint]:
        return iter(self.points)

    def __getitem__(self, index: int) -> TracePoint:
        return self.points[index]

    @property
    def final_quality(self) -> float:
        """Quality of the last point (1.0 when the run converged to SCAN)."""
        return self.points[-1].quality if self.points else float("nan")

    @property
    def total_work(self) -> float:
        return self.points[-1].work_units if self.points else 0.0

    @property
    def total_time(self) -> float:
        return self.points[-1].wall_time if self.points else 0.0

    def first_reaching(self, quality: float) -> Optional[TracePoint]:
        """Earliest point with at least the given quality (None if never).

        This is how the paper reports "NMI ≈ 0.5 after x seconds" claims.
        """
        for point in self.points:
            if point.quality >= quality:
                return point
        return None

    def quality_at_work(self, budget: float) -> float:
        """Best quality achieved within a work-unit budget."""
        best = 0.0
        for point in self.points:
            if point.work_units > budget:
                break
            best = max(best, point.quality)
        return best

    def is_monotone(self, *, tolerance: float = 0.05) -> bool:
        """Whether quality never drops by more than ``tolerance``.

        Anytime quality is not strictly monotone (merges can temporarily
        shift the NMI) but should trend upward; the property tests use
        this with a small tolerance.
        """
        peak = float("-inf")
        for point in self.points:
            if point.quality < peak - tolerance:
                return False
            peak = max(peak, point.quality)
        return True

    def rows(self) -> List[tuple]:
        """(iteration, step, time, work, quality) tuples for table printers."""
        return [
            (p.iteration, p.step, p.wall_time, p.work_units, p.quality)
            for p in self.points
        ]
