"""Driving anySCAN interactively: budgets, suspension, quality traces.

The paper's headline use case: run the algorithm under an arbitrary time
constraint, look at the best-so-far clusters, decide whether to continue.
:class:`AnytimeRunner` wraps any :class:`~repro.core.anyscan.AnySCAN`
instance with that workflow:

* :meth:`step` — advance one block iteration (returns the new snapshot);
* :meth:`run_until` — advance until a budget or a quality predicate hits;
* :meth:`trace_against` — drain the run, scoring every snapshot against a
  reference labeling (NMI by default) — the Figure 5 data collector.

Suspension is implicit: between calls the algorithm holds all state, so
"suppress for examining intermediate results and resume for finding
better results" is just... not calling ``step`` for a while.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.core.anyscan import AnySCAN
from repro.core.snapshots import Snapshot
from repro.anytime.trace import AnytimeTrace, TracePoint
from repro.metrics.nmi import nmi

__all__ = ["AnytimeRunner"]


class AnytimeRunner:
    """Interactive driver around one anySCAN instance."""

    def __init__(self, algorithm: AnySCAN) -> None:
        self.algorithm = algorithm
        self._iterator = algorithm.iterations()
        self._last: Optional[Snapshot] = None

    # ------------------------------------------------------------------
    # stepping
    # ------------------------------------------------------------------
    @property
    def finished(self) -> bool:
        return self.algorithm.finished

    @property
    def last_snapshot(self) -> Optional[Snapshot]:
        """Most recent snapshot (None before the first step)."""
        return self._last

    def step(self) -> Optional[Snapshot]:
        """Advance one anytime iteration; None when already finished."""
        try:
            self._last = next(self._iterator)
        except StopIteration:
            return None
        return self._last

    def run_until(
        self,
        *,
        max_iterations: Optional[int] = None,
        max_work_units: Optional[float] = None,
        max_seconds: Optional[float] = None,
        stop_when: Optional[Callable[[Snapshot], bool]] = None,
    ) -> Optional[Snapshot]:
        """Advance until any budget is exhausted or ``stop_when`` fires.

        Budgets are checked *after* each iteration (an iteration is the
        suspension granularity, exactly as in the paper).  Returns the
        last snapshot produced, or the previous one if no step ran.
        """
        steps = 0
        while not self.finished:
            snap = self.step()
            if snap is None:
                break
            steps += 1
            if stop_when is not None and stop_when(snap):
                break
            if max_iterations is not None and steps >= max_iterations:
                break
            if max_work_units is not None and snap.work_units >= max_work_units:
                break
            if max_seconds is not None and snap.wall_time >= max_seconds:
                break
        return self._last

    def finish(self) -> Snapshot:
        """Drain to the exact result; returns the final snapshot."""
        while not self.finished:
            if self.step() is None:
                break
        assert self._last is not None
        return self._last

    # ------------------------------------------------------------------
    # tracing
    # ------------------------------------------------------------------
    def trace_against(
        self,
        reference_labels: np.ndarray,
        *,
        metric: Callable[[np.ndarray, np.ndarray], float] | None = None,
        score_every: int = 1,
    ) -> AnytimeTrace:
        """Drain the run scoring snapshots against ``reference_labels``.

        Parameters
        ----------
        reference_labels:
            Usually SCAN's final labels (the paper's ground truth).
        metric:
            ``f(reference, labels) -> float``; defaults to NMI with noise
            pooled as one cluster (the paper's treatment).
        score_every:
            Score every k-th snapshot (the final one is always scored);
            raises the tracing speed on long runs.
        """
        if metric is None:
            metric = lambda ref, lab: nmi(ref, lab, noise="cluster")  # noqa: E731
        trace = AnytimeTrace()
        index = 0
        while True:
            snap = self.step()
            if snap is None:
                break
            index += 1
            if not snap.final and score_every > 1 and index % score_every:
                continue
            quality = float(metric(reference_labels, snap.labels))
            trace.append(
                TracePoint(
                    iteration=snap.iteration,
                    step=snap.step,
                    wall_time=snap.wall_time,
                    work_units=snap.work_units,
                    quality=quality,
                    num_clusters=snap.num_clusters,
                    assigned_fraction=snap.assigned_fraction,
                    final=snap.final,
                )
            )
        return trace
