"""Reusable stopping criteria for anytime runs.

:meth:`AnytimeRunner.run_until` takes any ``Snapshot -> bool`` predicate;
these are the criteria a practitioner actually reaches for:

* :class:`StableClusters` — stop when the cluster count has not changed
  for k consecutive iterations (the "looks converged" heuristic);
* :class:`MarginalGain` — stop when the assigned-vertex fraction grows
  slower than a threshold per unit of work (diminishing returns);
* :class:`StepReached` — stop when the algorithm enters a given step
  (e.g. run exactly through summarization, then inspect);
* :func:`any_of` / :func:`all_of` — combinators.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.core.snapshots import Snapshot
from repro.errors import ConfigError

__all__ = ["StableClusters", "MarginalGain", "StepReached", "any_of", "all_of"]

Criterion = Callable[[Snapshot], bool]


class StableClusters:
    """True once the cluster count is unchanged for ``patience`` snapshots."""

    def __init__(self, patience: int = 5) -> None:
        if patience < 1:
            raise ConfigError("patience must be >= 1")
        self.patience = patience
        self._last: int | None = None
        self._streak = 0

    def __call__(self, snapshot: Snapshot) -> bool:
        if snapshot.num_clusters == self._last:
            self._streak += 1
        else:
            self._streak = 0
            self._last = snapshot.num_clusters
        return self._streak >= self.patience


class MarginalGain:
    """True once coverage grows slower than ``min_gain`` per work unit.

    Measures Δ(assigned fraction) / Δ(work units) between consecutive
    snapshots; the first Step-1 iterations assign vertices in bulk, the
    tail barely moves — this criterion finds the knee.
    """

    def __init__(self, min_gain: float = 1e-7, warmup: int = 2) -> None:
        if min_gain < 0:
            raise ConfigError("min_gain must be non-negative")
        self.min_gain = min_gain
        self.warmup = warmup
        self._seen = 0
        self._prev_fraction: float | None = None
        self._prev_work: float | None = None

    def __call__(self, snapshot: Snapshot) -> bool:
        self._seen += 1
        fraction = snapshot.assigned_fraction
        work = snapshot.work_units
        triggered = False
        if (
            self._seen > self.warmup
            and self._prev_fraction is not None
            and work > (self._prev_work or 0.0)
        ):
            gain = (fraction - self._prev_fraction) / (
                work - self._prev_work
            )
            triggered = gain < self.min_gain
        self._prev_fraction = fraction
        self._prev_work = work
        return triggered


class StepReached:
    """True when the run enters (or passes) the named step."""

    _ORDER = {"summarize": 0, "merge-strong": 1, "merge-weak": 2, "borders": 3}

    def __init__(self, step: str) -> None:
        if step not in self._ORDER:
            raise ConfigError(
                f"unknown step {step!r}; one of {sorted(self._ORDER)}"
            )
        self.step = step

    def __call__(self, snapshot: Snapshot) -> bool:
        current = self._ORDER.get(snapshot.step)
        return current is not None and current >= self._ORDER[self.step]


def any_of(*criteria: Criterion) -> Criterion:
    """Stop when any criterion fires (every one is still evaluated)."""
    def combined(snapshot: Snapshot) -> bool:
        fired = [criterion(snapshot) for criterion in criteria]
        return any(fired)

    return combined


def all_of(*criteria: Criterion) -> Criterion:
    """Stop when all criteria have fired on the same snapshot."""
    def combined(snapshot: Snapshot) -> bool:
        fired = [criterion(snapshot) for criterion in criteria]
        return all(fired)

    return combined


def run_through(criteria: Iterable[Criterion], snapshot: Snapshot) -> bool:
    """Evaluate every criterion (no short-circuit); True if any fired."""
    return any([criterion(snapshot) for criterion in criteria])
