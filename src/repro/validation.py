"""Shared parameter validation for public entry points.

Every public function that accepts SCAN's density parameters μ/ε calls
:func:`check_eps_mu` on entry, so out-of-domain values fail fast with a
:class:`~repro.errors.ConfigError` instead of producing silently wrong
clusterings.  The static-analysis gate (rule R4 in
:mod:`repro.analysis`) enforces that the call is present.
"""

from __future__ import annotations

from repro.errors import ConfigError

__all__ = ["check_eps_mu"]


def check_eps_mu(mu: int | None = None, epsilon: float | None = None) -> None:
    """Validate SCAN's density parameters; ``None`` skips a check.

    ``mu`` must be a positive integer and ``epsilon`` must lie in
    ``(0, 1]`` (Definition 3 of the paper).
    """
    if mu is not None and mu < 1:
        raise ConfigError("mu must be a positive integer")
    if epsilon is not None and not 0.0 < epsilon <= 1.0:
        raise ConfigError("epsilon must be in (0, 1]")
