"""Parameter-free clustering index (GS*-style): any (ε, μ) in output time.

:class:`~repro.similarity.index.EdgeSimilarityIndex` already removes σ
work from repeat queries, but every query still walks all CSR rows to
re-derive cores and re-runs a BFS over the whole graph.  This module
layers the remaining structure of *Parallel Index-Based Structural
Graph Clustering and Its Approximation* (Tseng, Dhulipala & Shun) on
top of it, so clusters for **arbitrary** (ε, μ) come out of pure array
passes with **zero** σ evaluations:

* **σ-sorted neighbor lists** — each vertex's CSR row reordered by
  descending σ (ties broken by ascending neighbor id, so builds are
  deterministic and tie ordering is observably irrelevant).  The
  ε-neighborhood of any vertex is a *prefix* of its sorted row, found
  by one binary search.
* **core order** — for every μ up to ``mu_cap``, each vertex's *core
  threshold* ``ε̂_μ(v)``: the maximal ε at which v is still a μ-core
  (the (μ − self)-th largest σ in its row).  Vertices are kept sorted
  by that threshold, so the core set of any (ε, μ) with μ ≤ ``mu_cap``
  is a prefix of the order, found by one binary search; larger μ fall
  back to a vectorized gather over the sorted rows (still zero σ).
* **cluster extraction** — a union-find sweep over the qualifying
  (σ ≥ ε) core-core edges, followed by the reference border attachment
  rule, reproducing :func:`repro.baselines.scan.scan` labels *exactly*
  (same seed ⇒ byte-identical labels and roles, hubs/outliers included;
  see :meth:`ClusteringIndex.query` for why the replay is exact).

Construction reuses the batched σ kernels through
``parallel_sigma_rows`` (thread/process/auto backends produce the
bitwise-identical index), persistence reuses the ``.npz`` + checksum +
quarantine machinery of :mod:`repro.similarity.index` — a
``ClusteringIndex`` archive is a strict superset of the edge-index
format (one extra ``mu_cap`` field outside the checksum), so it is also
loadable as a plain :class:`EdgeSimilarityIndex`.  Dynamic updates
patch the index through :meth:`ClusteringIndex.refresh`: only the rows
whose σ actually changed are recomputed; all others are copied, and the
result is bitwise-identical to a fresh build on the updated graph.
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigError, IndexIntegrityError
from repro.faults import fault_point
from repro.graph.csr import Graph
from repro.result import Clustering
from repro.similarity.counters import SimilarityCounters
from repro.similarity.index import (
    EdgeSimilarityIndex,
    _archive_path,
    _payload_checksum,
)
from repro.similarity.weighted import SimilarityConfig, SimilarityOracle
from repro.structures.disjoint_set import DisjointSet
from repro.validation import check_eps_mu

__all__ = ["ClusteringIndex", "DEFAULT_MU_CAP"]

#: Default upper bound on μ served by the O(log n)-core-determination
#: path; queries above it stay exact through an O(n) gather (no σ work).
DEFAULT_MU_CAP = 16

#: Core-threshold sentinel: "core at every valid ε" (ε ≤ 1 < 2).
_ALWAYS_CORE = 2.0
#: Core-threshold sentinel: "core at no ε" (ε > 0 > −1).
_NEVER_CORE = -1.0


class ClusteringIndex:
    """GS*-style structure answering any (ε, μ) query without σ work.

    Parameters
    ----------
    edge:
        The materialized per-edge σ values the structure is derived
        from; the graph, similarity semantics, and fingerprint are
        taken from it.
    mu_cap:
        Largest μ with a precomputed core order.  Queries with
        ``μ > mu_cap`` remain exact (and still σ-free); only their core
        determination degrades from a binary search to one vectorized
        pass over the vertex set.
    """

    def __init__(self, edge: EdgeSimilarityIndex, *, mu_cap: int = DEFAULT_MU_CAP) -> None:
        if mu_cap < 1:
            raise ConfigError("mu_cap must be >= 1")
        self.edge = edge
        self.mu_cap = int(mu_cap)
        self.counters = SimilarityCounters()
        self.last_query: Dict[str, object] = {}
        self._derive()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        graph: Graph,
        config: SimilarityConfig | None = None,
        *,
        mu_cap: int = DEFAULT_MU_CAP,
        backend=None,
        workers: int | None = None,
    ) -> "ClusteringIndex":
        """Materialize σ (via the batched kernels, optionally fanned out
        over the thread/process backends) and derive the query structure.

        Every backend produces the bitwise-identical index: the σ array
        is slot-deterministic (see ``parallel_sigma_rows``) and the
        derived orders are deterministic functions of it.
        """
        edge = EdgeSimilarityIndex.build(
            graph, config, backend=backend, workers=workers
        )
        return cls(edge, mu_cap=mu_cap)

    def _derive(self) -> None:
        """Sorted rows + per-μ core orders from the σ array (no σ work)."""
        graph = self.edge.graph
        sigmas = self.edge.sigmas
        n = graph.num_vertices
        degrees = graph.degrees.astype(np.int64, copy=False)
        owners = np.repeat(np.arange(n, dtype=np.int64), degrees)
        self._owners = owners
        if sigmas.shape[0]:
            # Primary: owner (keeps rows contiguous); secondary: σ
            # descending; tertiary: neighbor id ascending (tie order is
            # thereby pinned — and provably irrelevant to queries).
            order = np.lexsort((graph.indices, -sigmas, owners))
        else:
            order = np.zeros(0, dtype=np.int64)
        self._order = order
        self._sorted_sigmas = sigmas[order]
        self._sorted_neighbors = graph.indices[order].astype(
            np.int64, copy=False
        )
        self_count = 1 if self.edge.config.count_self else 0
        self._self_count = self_count
        starts = graph.indptr[:-1].astype(np.int64, copy=False)
        core_eps = np.empty((self.mu_cap, n), dtype=np.float64)
        for level in range(self.mu_cap):
            mu = level + 1
            k = mu - self_count
            if k <= 0:
                core_eps[level, :] = _ALWAYS_CORE
                continue
            has = degrees >= k
            row = np.full(n, _NEVER_CORE, dtype=np.float64)
            if self._sorted_sigmas.shape[0]:
                idx = np.where(has, starts + (k - 1), 0)
                row[has] = self._sorted_sigmas[idx][has]
            core_eps[level, :] = row
        self._core_eps = core_eps
        # Per-μ vertex order by threshold descending, vertex id ascending.
        vertex_ids = np.arange(n, dtype=np.int64)
        core_order = np.empty((self.mu_cap, n), dtype=np.int64)
        for level in range(self.mu_cap):
            core_order[level, :] = np.lexsort(
                (vertex_ids, -core_eps[level, :])
            )
        self._core_order = core_order
        self._core_thresholds_sorted = np.take_along_axis(
            core_eps, core_order, axis=1
        )

    #: The derived arrays, in a fixed order: ``derived_arrays`` exports
    #: them under these names and :meth:`from_derived` re-imports them.
    DERIVED_LABELS: Tuple[str, ...] = (
        "owners",
        "order",
        "sorted_sigmas",
        "sorted_neighbors",
        "core_eps",
        "core_order",
        "core_thresholds_sorted",
    )

    def derived_arrays(self) -> Dict[str, np.ndarray]:
        """The derived structure as a name → array mapping.

        These are deterministic functions of (σ, graph, μ-cap); together
        with the :class:`EdgeSimilarityIndex` payload they are the whole
        queryable state, which is what the service's zero-copy publisher
        ships through shared memory so attaching processes skip the
        O(m log m) :meth:`_derive` entirely.
        """
        return {
            "owners": self._owners,
            "order": self._order,
            "sorted_sigmas": self._sorted_sigmas,
            "sorted_neighbors": self._sorted_neighbors,
            "core_eps": self._core_eps,
            "core_order": self._core_order,
            "core_thresholds_sorted": self._core_thresholds_sorted,
        }

    @classmethod
    def from_derived(
        cls,
        edge: EdgeSimilarityIndex,
        *,
        mu_cap: int,
        arrays: Dict[str, np.ndarray],
    ) -> "ClusteringIndex":
        """Rebuild an index around externally supplied derived arrays.

        The zero-copy attach path: ``arrays`` typically holds read-only
        views over shared-memory segments published by the single
        writer, and no sorting or σ work happens here — only cheap shape
        checks that catch a mismatched manifest before it can serve
        wrong answers.  Queries on the result are byte-identical to the
        source index: :meth:`query` is a pure function of these arrays.
        """
        if mu_cap < 1:
            raise ConfigError("mu_cap must be >= 1")
        missing = [
            label for label in cls.DERIVED_LABELS if label not in arrays
        ]
        if missing:
            raise ConfigError(
                f"derived arrays missing {missing!r}"
            )
        index = cls.__new__(cls)
        index.edge = edge
        index.mu_cap = int(mu_cap)
        index.counters = SimilarityCounters()
        index.last_query = {}
        m = edge.sigmas.shape[0]
        n = edge.graph.num_vertices
        index._owners = arrays["owners"]
        index._order = arrays["order"]
        index._sorted_sigmas = arrays["sorted_sigmas"]
        index._sorted_neighbors = arrays["sorted_neighbors"]
        index._core_eps = arrays["core_eps"]
        index._core_order = arrays["core_order"]
        index._core_thresholds_sorted = arrays["core_thresholds_sorted"]
        index._self_count = 1 if edge.config.count_self else 0
        for label in ("owners", "order", "sorted_sigmas", "sorted_neighbors"):
            if arrays[label].shape != (m,):
                raise ConfigError(
                    f"derived array {label!r} has shape "
                    f"{arrays[label].shape}, expected ({m},)"
                )
        for label in ("core_eps", "core_order", "core_thresholds_sorted"):
            if arrays[label].shape != (index.mu_cap, n):
                raise ConfigError(
                    f"derived array {label!r} has shape "
                    f"{arrays[label].shape}, expected ({index.mu_cap}, {n})"
                )
        return index

    # ------------------------------------------------------------------
    # core determination (binary search; no σ evaluations)
    # ------------------------------------------------------------------
    def core_epsilon(self, v: int, mu: int) -> float:
        """Maximal ε at which ``v`` is a μ-core.

        Sentinels: ``2.0`` means "core at every valid ε" (possible for
        μ ≤ the self count), ``-1.0`` means "core at no ε" (degree too
        small).  For μ ≤ ``mu_cap`` this is one array read; above the
        cap it is one gather from the σ-sorted row.
        """
        check_eps_mu(mu=mu)
        v = int(v)
        if mu <= self.mu_cap:
            return float(self._core_eps[mu - 1, v])
        k = mu - self._self_count
        graph = self.edge.graph
        if k <= 0:
            return _ALWAYS_CORE
        if k > graph.degree(v):
            return _NEVER_CORE
        return float(self._sorted_sigmas[int(graph.indptr[v]) + k - 1])

    def core_mask(self, epsilon: float, mu: int) -> np.ndarray:
        """Boolean μ-core indicator at ε — zero σ evaluations.

        μ ≤ ``mu_cap``: one binary search over the precomputed core
        order plus a prefix write (output-proportional).  Larger μ: one
        vectorized gather over the σ-sorted rows (O(n), still σ-free).
        """
        check_eps_mu(mu=mu, epsilon=epsilon)
        graph = self.edge.graph
        n = graph.num_vertices
        if mu <= self.mu_cap:
            level = mu - 1
            thresholds = self._core_thresholds_sorted[level]
            count = int(
                np.searchsorted(-thresholds, -float(epsilon), side="right")
            )
            mask = np.zeros(n, dtype=bool)
            mask[self._core_order[level, :count]] = True
            return mask
        k = mu - self._self_count
        if k <= 0:
            return np.ones(n, dtype=bool)
        degrees = graph.degrees
        has = degrees >= k
        if not self._sorted_sigmas.shape[0]:
            return np.zeros(n, dtype=bool)
        starts = graph.indptr[:-1].astype(np.int64, copy=False)
        idx = np.where(has, starts + (k - 1), 0)
        return has & (self._sorted_sigmas[idx] >= epsilon)

    def cores(self, epsilon: float, mu: int) -> np.ndarray:
        """Ascending ids of the (ε, μ)-cores."""
        return np.flatnonzero(self.core_mask(epsilon, mu))

    # ------------------------------------------------------------------
    # neighborhood reads (prefix of the σ-sorted row)
    # ------------------------------------------------------------------
    def _prefix_length(self, lo: int, hi: int, epsilon: float) -> int:
        """Qualifying prefix length of the sorted row slice [lo, hi)."""
        return int(
            np.searchsorted(
                -self._sorted_sigmas[lo:hi], -float(epsilon), side="right"
            )
        )

    def eps_neighborhood(self, v: int, epsilon: float) -> np.ndarray:
        """``N_v^ε`` in ascending id order — one binary search + sort of
        the qualifying prefix, no σ work."""
        check_eps_mu(epsilon=epsilon)
        graph = self.edge.graph
        lo, hi = int(graph.indptr[v]), int(graph.indptr[v + 1])
        plen = self._prefix_length(lo, hi, epsilon)
        # Same accounting contract as the oracle tiers: every range
        # query is recorded (with zero σ evaluations) so Figure-7 style
        # comparisons of neighborhood_queries are apples to apples.
        self.counters.record_neighborhood_query(0.0, evaluations=0)
        return np.sort(self._sorted_neighbors[lo : lo + plen])

    # ------------------------------------------------------------------
    # the query: cores → union-find sweep → border/hub/outlier epilogue
    # ------------------------------------------------------------------
    def query(
        self, epsilon: float, mu: int, *, seed: int = 0
    ) -> Clustering:
        """Exact SCAN clustering at (ε, μ) with **zero** σ evaluations.

        The replay is exact, not merely isomorphic: it reproduces the
        reference :func:`repro.baselines.scan.scan` byte for byte at the
        same ``seed``, because the sequential algorithm's outcome is a
        pure function of structures this index holds —

        * the core set is determined by per-vertex thresholds (binary
          search over the core order);
        * cores connected through qualifying (σ ≥ ε) core-core edges
          always share a cluster regardless of visit order (σ is
          symmetric), so the member partition of cores equals the
          union-find components of the qualifying core subgraph;
        * the reference assigns cluster ids in the order clusters are
          *discovered* along its seeded vertex permutation — component
          ids here are ranked by the minimal permutation position of
          each component's cores;
        * a shared border keeps its *first* cluster, and because the
          reference expands each cluster to completion before starting
          the next, "first" is exactly the smallest cluster id among
          the adjacent qualifying cores.

        Hubs and outliers then come from the shared post-processing
        (:func:`repro.baselines._postprocess.finalize_clustering`), as
        in every other algorithm of the repository.
        """
        from repro.baselines._postprocess import finalize_clustering

        check_eps_mu(mu=mu, epsilon=epsilon)
        graph = self.edge.graph
        n = graph.num_vertices
        mask = self.core_mask(epsilon, mu)
        # Qualifying directed slots owned by cores: σ ≥ ε and owner core.
        qualifying = (self._sorted_sigmas >= epsilon) & mask[self._owners]
        slots = np.flatnonzero(qualifying)
        us = self._owners[slots]
        vs = self._sorted_neighbors[slots]
        into_core = mask[vs]
        core_us, core_vs = us[into_core], vs[into_core]
        dsu = DisjointSet(n)
        for a, b in zip(core_us.tolist(), core_vs.tolist()):
            dsu.union(a, b)
        # Cluster ids in reference discovery order: rank vertices by the
        # seeded permutation, rank components by their best core.
        rng = np.random.default_rng(seed)
        perm = rng.permutation(n)
        rank = np.empty(n, dtype=np.int64)
        rank[perm] = np.arange(n, dtype=np.int64)
        cores = np.flatnonzero(mask)
        roots = np.asarray(
            [dsu.find(v) for v in cores.tolist()], dtype=np.int64
        )
        labels = np.full(n, -4, dtype=np.int64)  # -4: non-member
        num_components = 0
        if cores.shape[0]:
            comp_rank: Dict[int, int] = {}
            for root, pos in zip(roots.tolist(), rank[cores].tolist()):
                best = comp_rank.get(root)
                if best is None or pos < best:
                    comp_rank[root] = pos
            ordered = sorted(comp_rank, key=comp_rank.__getitem__)
            cid_of = {root: cid for cid, root in enumerate(ordered)}
            num_components = len(ordered)
            labels[cores] = np.asarray(
                [cid_of[root] for root in roots.tolist()], dtype=np.int64
            )
            # Borders: non-core q with a qualifying core neighbor joins
            # the smallest adjacent cluster id (the first to reach it).
            border_us, border_vs = us[~into_core], vs[~into_core]
            if border_us.shape[0]:
                cand = np.asarray(
                    [
                        cid_of[dsu.find(u)]
                        for u in border_us.tolist()
                    ],
                    dtype=np.int64,
                )
                best_cid = np.full(n, n, dtype=np.int64)
                np.minimum.at(best_cid, border_vs, cand)
                attach = best_cid < n
                labels[attach] = best_cid[attach]
        self.counters.record_neighborhood_query(0.0, evaluations=0)
        self.last_query = {
            "epsilon": float(epsilon),
            "mu": int(mu),
            "seed": int(seed),
            "cores": int(cores.shape[0]),
            "clusters": num_components,
            "qualifying_slots": int(slots.shape[0]),
            "sigma_evaluations": 0,
            "index_lookups": int(slots.shape[0]),
        }
        return finalize_clustering(graph, labels, mask)

    # ------------------------------------------------------------------
    # compatibility / introspection
    # ------------------------------------------------------------------
    @property
    def graph(self) -> Graph:
        return self.edge.graph

    @property
    def config(self) -> SimilarityConfig:
        return self.edge.config

    @property
    def fingerprint(self) -> str:
        return self.edge.fingerprint

    def require_compatible(
        self,
        graph: Graph | None = None,
        config: SimilarityConfig | None = None,
    ) -> None:
        """Raise :class:`ConfigError` unless the index answers for these."""
        self.edge.require_compatible(graph=graph, config=config)

    def info(self) -> Dict[str, object]:
        """JSON-ready summary (service ``graph_info`` embeds this)."""
        graph = self.edge.graph
        return {
            "mu_cap": self.mu_cap,
            "slots": int(graph.indices.shape[0]),
            "num_vertices": int(graph.num_vertices),
            "fingerprint": self.edge.fingerprint,
            "bytes": int(
                self._sorted_sigmas.nbytes
                + self._sorted_neighbors.nbytes
                + self._order.nbytes
                + self._core_eps.nbytes
                + self._core_order.nbytes
                + self._core_thresholds_sorted.nbytes
                + self.edge.sigmas.nbytes
            ),
        }

    # ------------------------------------------------------------------
    # incremental maintenance (update-edges)
    # ------------------------------------------------------------------
    def refresh(
        self,
        new_graph: Graph,
        affected: Iterable[int],
    ) -> Tuple["ClusteringIndex", Dict[str, int]]:
        """Patch the index for ``new_graph``, recomputing σ only for
        ``affected`` rows.

        ``affected`` must cover every vertex whose σ row changed — for
        an edge update (u, v) that is ``{u, v} ∪ N(u) ∪ N(v)`` (union
        of pre- and post-update neighborhoods; the service's
        ``DynamicSCAN`` mirror supplies exactly this set).  Rows outside
        it are *copied*: their adjacency is required to be unchanged
        (verified, :class:`ConfigError` otherwise), and σ of a pair
        depends only on the two endpoint neighborhoods, so the copied
        values are bitwise what a fresh build would produce.  The result
        is therefore bitwise-identical to
        ``ClusteringIndex.build(new_graph, config, mu_cap=...)`` while
        charging σ-kernel work only for the affected rows.

        Returns ``(patched_index, stats)`` with ``rows_recomputed``,
        ``slots_recomputed`` and ``slots_copied`` in ``stats``.
        """
        old_graph = self.edge.graph
        old_n = old_graph.num_vertices
        n = new_graph.num_vertices
        affected_ids = np.unique(
            np.asarray(list(affected), dtype=np.int64)
        )
        if affected_ids.shape[0] and (
            affected_ids[0] < 0 or affected_ids[-1] >= n
        ):
            raise ConfigError(
                "affected vertex ids out of range for the updated graph"
            )
        affected_mask = np.zeros(n, dtype=bool)
        affected_mask[affected_ids] = True
        # Vertices that did not exist before cannot be copied.
        affected_mask[old_n:] = True
        copy_owner = ~affected_mask
        new_degrees = new_graph.degrees.astype(np.int64, copy=False)
        old_degrees = np.zeros(n, dtype=np.int64)
        old_degrees[:old_n] = old_graph.degrees
        if not np.array_equal(
            new_degrees[copy_owner], old_degrees[copy_owner]
        ):
            raise ConfigError(
                "refresh affected set does not cover every changed row "
                "(a copied row's degree differs); pass the full "
                "{u, v} ∪ N(u) ∪ N(v) set or rebuild the index"
            )
        m_new = int(new_graph.indices.shape[0])
        new_sigmas = np.empty(m_new, dtype=np.float64)
        owners = np.repeat(np.arange(n, dtype=np.int64), new_degrees)
        slot_offsets = (
            np.arange(m_new, dtype=np.int64)
            - new_graph.indptr[:-1].astype(np.int64)[owners]
        )
        old_starts = np.zeros(n, dtype=np.int64)
        old_starts[:old_n] = old_graph.indptr[:-1]
        copy_slots = copy_owner[owners]
        slots_copied = int(copy_slots.sum())
        if slots_copied:
            src = old_starts[owners[copy_slots]] + slot_offsets[copy_slots]
            if not np.array_equal(
                new_graph.indices[copy_slots], old_graph.indices[src]
            ):
                raise ConfigError(
                    "refresh affected set does not cover every changed "
                    "row (a copied row's adjacency differs)"
                )
            new_sigmas[copy_slots] = self.edge.sigmas[src]
        slots_recomputed = 0
        if affected_ids.shape[0] or old_n < n:
            oracle = SimilarityOracle(new_graph, self.edge.config)
            oracle.edge_keys  # shared probe structure for all blocks
            runs = _consecutive_runs(np.flatnonzero(affected_mask))
            for lo, hi in runs:
                a = int(new_graph.indptr[lo])
                b = int(new_graph.indptr[hi])
                if b > a:
                    new_sigmas[a:b] = oracle.sigma_row_block(lo, hi)
                    slots_recomputed += b - a
        edge = EdgeSimilarityIndex(new_graph, self.edge.config, new_sigmas)
        patched = type(self)(edge, mu_cap=self.mu_cap)
        stats = {
            "rows_recomputed": int(affected_mask.sum()),
            "slots_recomputed": int(slots_recomputed),
            "slots_copied": slots_copied,
        }
        return patched, stats

    # ------------------------------------------------------------------
    # persistence (.npz superset of the edge-index format)
    # ------------------------------------------------------------------
    def save(self, path) -> None:
        """Persist atomically; the archive doubles as an edge index.

        Same fields, checksum, and atomic write-to-temp + ``os.replace``
        discipline as :meth:`EdgeSimilarityIndex.save`, plus ``mu_cap``.
        The checksum covers the σ payload exactly as the edge-index
        format does, so the file is loadable by either class; the
        derived orders are deterministic functions of σ and are rebuilt
        on load rather than trusted from disk.
        """
        fault_point("index.save")
        edge = self.edge
        cfg = edge.config
        final = _archive_path(path)
        tmp = f"{final}.tmp-{os.getpid()}.npz"
        try:
            np.savez_compressed(
                tmp,
                sigmas=edge.sigmas,
                fingerprint=np.str_(edge.fingerprint),
                checksum=np.str_(
                    _payload_checksum(edge.fingerprint, edge.sigmas, cfg)
                ),
                kind=np.str_(cfg.kind),
                closed=np.bool_(cfg.closed),
                self_weight=np.float64(cfg.self_weight),
                count_self=np.bool_(cfg.count_self),
                pruning=np.bool_(cfg.pruning),
                mu_cap=np.int64(self.mu_cap),
            )
            os.replace(tmp, final)
        finally:
            if os.path.exists(tmp):
                os.unlink(tmp)

    @classmethod
    def load(
        cls,
        path,
        graph: Graph,
        *,
        config: SimilarityConfig | None = None,
        mu_cap: int | None = None,
    ) -> "ClusteringIndex":
        """Load an archive saved by :meth:`save` (or by the edge index).

        Verification (checksum, fingerprint, semantics) is delegated to
        :meth:`EdgeSimilarityIndex.load` — damage raises
        :class:`~repro.errors.IndexIntegrityError`, a graph/semantics
        mismatch raises :class:`~repro.errors.ConfigError`.  ``mu_cap``
        overrides the stored cap (an edge-index archive has none; the
        default cap applies then).
        """
        edge = EdgeSimilarityIndex.load(path, graph, config=config)
        stored_cap: Optional[int] = None
        try:
            with np.load(_archive_path(path), allow_pickle=False) as data:
                if "mu_cap" in data.files:
                    stored_cap = int(data["mu_cap"])
        except Exception as exc:
            raise IndexIntegrityError(
                f"clustering index at {os.fspath(path)!s} lost its "
                f"archive mid-load ({type(exc).__name__}: {exc})"
            ) from exc
        if stored_cap is not None and stored_cap < 1:
            raise IndexIntegrityError(
                f"clustering index at {os.fspath(path)!s} stores an "
                f"invalid mu_cap ({stored_cap}); the archive is damaged"
            )
        cap = mu_cap if mu_cap is not None else (stored_cap or DEFAULT_MU_CAP)
        return cls(edge, mu_cap=cap)

    @classmethod
    def load_or_rebuild(
        cls,
        path,
        graph: Graph,
        *,
        config: SimilarityConfig | None = None,
        mu_cap: int | None = None,
        backend=None,
        workers: int | None = None,
    ) -> Tuple["ClusteringIndex", bool]:
        """Load ``path``; on damage, quarantine it and rebuild from σ.

        Mirrors :meth:`EdgeSimilarityIndex.load_or_rebuild`: a damaged
        (or missing) archive is preserved as ``{path}.quarantined`` and
        a fresh index is built and saved in its place (``recovered`` is
        True then); a fingerprint/semantics mismatch is a caller error
        and still raises :class:`~repro.errors.ConfigError`.
        """
        final = _archive_path(path)
        try:
            return (
                cls.load(final, graph, config=config, mu_cap=mu_cap),
                False,
            )
        except IndexIntegrityError:
            try:
                os.replace(final, final + ".quarantined")
            except FileNotFoundError:
                pass  # missing archive: nothing to quarantine
            index = cls.build(
                graph,
                config,
                mu_cap=mu_cap if mu_cap is not None else DEFAULT_MU_CAP,
                backend=backend,
                workers=workers,
            )
            index.save(final)
            return index, True


def _consecutive_runs(ids: np.ndarray) -> List[Tuple[int, int]]:
    """Group sorted vertex ids into maximal [lo, hi) consecutive runs."""
    if ids.shape[0] == 0:
        return []
    breaks = np.flatnonzero(np.diff(ids) > 1)
    starts = np.concatenate(([0], breaks + 1))
    ends = np.concatenate((breaks, [ids.shape[0] - 1]))
    return [
        (int(ids[s]), int(ids[e]) + 1)
        for s, e in zip(starts.tolist(), ends.tolist())
    ]
