"""Weighted structural similarity (Definition 1) and its oracle.

The paper defines

    σ(p, q) = Σ_{r ∈ N_p ∩ N_q} w_pr · w_qr
              / sqrt( (Σ_{r ∈ N_p} w_pr²) · (Σ_{r ∈ N_q} w_qr²) )

and claims SCAN's unweighted similarity is the all-ones special case.
Classic SCAN uses *closed* neighborhoods Γ(p) = N(p) ∪ {p}; the claim only
holds in that reading, so closed neighborhoods (with a configurable
self-weight, default 1.0) are the default here, and an ``closed=False``
literal mode implements Definition 1 verbatim.  Every algorithm in the
repository shares one :class:`SimilarityOracle`, so comparisons between
algorithms are always internally consistent.

Per-vertex invariants are precomputed once (the paper's preprocessing
step): the squared length ``l_p`` and the maximum incident weight ``w_p``
used by the Lemma 5 pruning bound.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.faults import fault_point
from repro.graph.csr import Graph
from repro.similarity import kernels
from repro.similarity.counters import SimilarityCounters

__all__ = ["SimilarityConfig", "SimilarityOracle"]


@dataclass(frozen=True)
class SimilarityConfig:
    """Choices that fix the similarity semantics.

    Attributes
    ----------
    closed:
        Use closed neighborhoods Γ(p) = N(p) ∪ {p} (classic SCAN).  When
        ``False``, Definition 1 is applied verbatim over open neighborhoods.
    self_weight:
        Weight of the implicit self-edge in closed mode.
    count_self:
        Whether ``p`` itself counts toward ``|N_p^ε|`` in the core test
        (σ(p, p) = 1, so it always qualifies).  Classic SCAN counts it.
    pruning:
        Enable the Lemma 5 constant-time filter and two-sided early exit
        in threshold tests (the Section III-D optimizations).  Only
        available for the ``"cosine"`` kind, whose bound Lemma 5 targets.
    kind:
        Which structural similarity to use.  ``"cosine"`` is the paper's
        Definition 1; ``"jaccard"``, ``"dice"``, and ``"overlap"`` are
        the weighted set-similarity variants used elsewhere in the SCAN
        literature (min/max, Dice, and overlap coefficients over the
        neighborhood weight vectors).  All reduce to their classic
        unweighted forms when every weight is 1.
    """

    closed: bool = True
    self_weight: float = 1.0
    count_self: bool = True
    pruning: bool = True
    kind: str = "cosine"

    _KINDS = ("cosine", "jaccard", "dice", "overlap")

    def validate(self) -> None:
        if self.self_weight <= 0:
            raise ConfigError("self_weight must be positive")
        if self.kind not in self._KINDS:
            raise ConfigError(
                f"unknown similarity kind {self.kind!r}; one of {self._KINDS}"
            )
        if self.pruning and self.kind != "cosine":
            raise ConfigError(
                "Lemma 5 pruning is only sound for the cosine kind; "
                "pass pruning=False for set-similarity variants"
            )
        if self.count_self and not self.closed:
            # Allowed, but then σ(p, p) is not 1 by Definition 1; the core
            # test still treats p as trivially similar to itself.
            pass


class SimilarityOracle:
    """Precomputed similarity evaluator for one graph.

    All σ evaluations go through this object so the instrumentation in
    :class:`~repro.similarity.counters.SimilarityCounters` sees every one
    of them (Figure 7 of the paper is regenerated from these counters).
    """

    def __init__(
        self,
        graph: Graph,
        config: SimilarityConfig | None = None,
        *,
        precomputed: tuple | None = None,
    ) -> None:
        self.graph = graph
        self.config = config or SimilarityConfig()
        self.config.validate()
        self.counters = SimilarityCounters()
        if precomputed is not None:
            # Trusted (lengths, max_weights, linear_sums) arrays, e.g.
            # zero-copy views over the shared-memory buffers published by
            # repro.parallel.processes — they must have been produced by
            # _precompute() on the same graph and config.
            self._lengths, self._max_weights, self._linear_sums = precomputed
        else:
            self._lengths, self._max_weights, self._linear_sums = (
                self._precompute()
            )
        self._edge_keys: np.ndarray | None = None

    # ------------------------------------------------------------------
    # preprocessing (O(|E|) total, as in the paper)
    # ------------------------------------------------------------------
    def _precompute(self) -> tuple:
        graph, cfg = self.graph, self.config
        n = graph.num_vertices
        lengths = np.zeros(n, dtype=np.float64)
        max_weights = np.zeros(n, dtype=np.float64)
        linear = np.zeros(n, dtype=np.float64)
        weights = graph.weights
        nonempty = graph.degrees > 0
        starts = graph.indptr[:-1][nonempty]
        if starts.shape[0]:
            # Segmented reductions over the CSR weight array: reduceat
            # segments run from each nonempty row's start to the next,
            # skipping empty rows (whose start equals the next start).
            lengths[nonempty] = np.add.reduceat(weights * weights, starts)
            linear[nonempty] = np.add.reduceat(weights, starts)
            max_weights[nonempty] = np.maximum.reduceat(weights, starts)
        if cfg.closed:
            lengths += cfg.self_weight * cfg.self_weight
            linear += cfg.self_weight
        return lengths, max_weights, linear

    @property
    def lengths(self) -> np.ndarray:
        """Squared lengths ``l_p`` (with the self term in closed mode)."""
        return self._lengths

    @property
    def max_weights(self) -> np.ndarray:
        """Per-vertex maximum incident edge weight ``w_p``."""
        return self._max_weights

    @property
    def linear_sums(self) -> np.ndarray:
        """Per-vertex linear weight sums (set-similarity denominators)."""
        return self._linear_sums

    def precomputed_arrays(self) -> tuple:
        """The ``(lengths, max_weights, linear_sums)`` invariants.

        Publishing these alongside the CSR arrays lets another process
        rebuild an equivalent oracle without repeating the O(|E|)
        preprocessing (see :mod:`repro.parallel.processes`).
        """
        return (self._lengths, self._max_weights, self._linear_sums)

    # ------------------------------------------------------------------
    # core similarity
    # ------------------------------------------------------------------
    def _numerator(self, p: int, q: int) -> tuple:
        """Return (numerator, merge_cost) of σ(p, q)."""
        graph, cfg = self.graph, self.config
        np_row = graph.neighbors(p)
        nq_row = graph.neighbors(q)
        wp_row = graph.neighbor_weights(p)
        wq_row = graph.neighbor_weights(q)
        _, ip, iq = np.intersect1d(
            np_row, nq_row, assume_unique=True, return_indices=True
        )
        total = float(np.dot(wp_row[ip], wq_row[iq]))
        cost = float(np_row.shape[0] + nq_row.shape[0])
        if cfg.closed:
            sw = cfg.self_weight
            # r = p contributes w_pp * w_qp when p ∈ Γ(q), i.e. p adjacent q
            # or p == q; same for r = q.  σ(p, p) then equals 1 exactly.
            if p == q:
                total += sw * sw
            else:
                pos = int(np.searchsorted(nq_row, p))
                adjacent = pos < nq_row.shape[0] and int(nq_row[pos]) == p
                if adjacent:
                    w_pq = float(wq_row[pos])
                    total += sw * w_pq  # r = p
                    total += w_pq * sw  # r = q
        return total, cost

    def _min_overlap(self, p: int, q: int) -> tuple:
        """Return (Σ min(w_pr, w_qr) over Γ_p ∩ Γ_q, merge_cost)."""
        graph, cfg = self.graph, self.config
        np_row = graph.neighbors(p)
        nq_row = graph.neighbors(q)
        wp_row = graph.neighbor_weights(p)
        wq_row = graph.neighbor_weights(q)
        _, ip, iq = np.intersect1d(
            np_row, nq_row, assume_unique=True, return_indices=True
        )
        total = float(np.minimum(wp_row[ip], wq_row[iq]).sum())
        cost = float(np_row.shape[0] + nq_row.shape[0])
        if cfg.closed:
            sw = cfg.self_weight
            if p == q:
                total += sw
            else:
                pos = int(np.searchsorted(nq_row, p))
                if pos < nq_row.shape[0] and int(nq_row[pos]) == p:
                    w_pq = float(wq_row[pos])
                    total += min(sw, w_pq)  # r = p
                    total += min(w_pq, sw)  # r = q
        return total, cost

    def _sigma_value(self, p: int, q: int) -> tuple:
        """Dispatch on the configured kind; returns (σ, merge_cost)."""
        kind = self.config.kind
        if kind == "cosine":
            num, cost = self._numerator(p, q)
            denom = float(np.sqrt(self._lengths[p] * self._lengths[q]))
            return (num / denom if denom > 0 else 0.0), cost
        overlap, cost = self._min_overlap(p, q)
        s1p = float(self._linear_sums[p])
        s1q = float(self._linear_sums[q])
        if kind == "jaccard":
            denom = s1p + s1q - overlap
        elif kind == "dice":
            denom = (s1p + s1q) / 2.0
        else:  # overlap coefficient
            denom = min(s1p, s1q)
        return (overlap / denom if denom > 0 else 0.0), cost

    def sigma(self, p: int, q: int) -> float:
        """Exact σ(p, q); records one full evaluation."""
        value, cost = self._sigma_value(p, q)
        self.counters.record_sigma(cost)
        return value

    def sigma_unrecorded(self, p: int, q: int) -> float:
        """σ(p, q) without touching the counters (tests, ground truth)."""
        value, _ = self._sigma_value(p, q)
        return value

    # ------------------------------------------------------------------
    # batched similarity (repro.similarity.kernels)
    # ------------------------------------------------------------------
    @property
    def edge_keys(self) -> np.ndarray:
        """Global sorted edge keys for the batched kernels (lazy, cached)."""
        if self._edge_keys is None:
            self._edge_keys = kernels.directed_edge_keys(
                self.graph.indptr, self.graph.indices
            )
        return self._edge_keys

    def _pair_sigmas(self, ps: np.ndarray, qs: np.ndarray) -> tuple:
        """Batched (σ values, merge costs) for aligned pair arrays."""
        graph, cfg = self.graph, self.config
        return kernels.sigma_for_pairs(
            graph.indptr, graph.indices, graph.weights, self.edge_keys,
            ps, qs,
            kind=cfg.kind, closed=cfg.closed, self_weight=cfg.self_weight,
            lengths=self._lengths, linear_sums=self._linear_sums,
        )

    def sigma_pairs_unrecorded(
        self, ps: np.ndarray, qs: np.ndarray
    ) -> np.ndarray:
        """Batched σ for aligned pair arrays, without touching counters."""
        ps = np.ascontiguousarray(ps, dtype=np.int64)
        qs = np.ascontiguousarray(qs, dtype=np.int64)
        values, _ = self._pair_sigmas(ps, qs)
        return values

    def sigma_batch(self, p: int, qs: np.ndarray) -> np.ndarray:
        """Exact σ(p, q) for a batch of targets, one numpy pass.

        Counters are charged equivalently to ``len(qs)`` scalar
        :meth:`sigma` calls: one evaluation each, full merge cost
        ``|N_p| + |N_q|`` each.
        """
        qs = np.ascontiguousarray(qs, dtype=np.int64)
        if qs.shape[0] == 0:
            return np.zeros(0, dtype=np.float64)
        ps = np.full(qs.shape[0], int(p), dtype=np.int64)
        values, costs = self._pair_sigmas(ps, qs)
        self.counters.record_sigma_batch(
            int(qs.shape[0]), float(costs.sum())
        )
        return values

    def similar_batch(
        self, p: int, qs: np.ndarray, epsilon: float
    ) -> np.ndarray:
        """Batched threshold tests σ(p, q) ≥ ε with Lemma 5 pre-filtering.

        For the cosine kind with pruning enabled, the whole batch goes
        through the vectorized Lemma 5 bound first; pruned pairs cost 1
        work unit each and only the survivors are evaluated (at full
        merge cost — the batch path has no per-pair early exit, so its
        recorded work is an upper bound on the scalar path's).
        """
        qs = np.ascontiguousarray(qs, dtype=np.int64)
        if qs.shape[0] == 0:
            return np.zeros(0, dtype=bool)
        cfg = self.config
        if cfg.kind != "cosine" or not cfg.pruning:
            ps = np.full(qs.shape[0], int(p), dtype=np.int64)
            values, costs = self._pair_sigmas(ps, qs)
            self.counters.record_sigma_batch(
                int(qs.shape[0]), float(costs.sum())
            )
            return values >= epsilon
        ps = np.full(qs.shape[0], int(p), dtype=np.int64)
        thresholds = epsilon * np.sqrt(self._lengths[p] * self._lengths[qs])
        bounds = kernels.lemma5_bounds(
            self.graph.degrees, self._max_weights, ps, qs,
            closed=cfg.closed, self_weight=cfg.self_weight,
        )
        pruned = bounds < thresholds
        out = np.zeros(qs.shape[0], dtype=bool)
        survivors = ~pruned
        count = int(survivors.sum())
        if count:
            values, costs = self._pair_sigmas(ps[survivors], qs[survivors])
            out[survivors] = values >= epsilon
            self.counters.record_sigma_batch(count, float(costs.sum()))
        if count < qs.shape[0]:
            self.counters.record_prune(int(qs.shape[0]) - count)
        return out

    def sigma_row_block(self, lo: int, hi: int) -> np.ndarray:
        """σ for every CSR slot of the vertex block ``[lo, hi)``, unrecorded.

        The unit of work of the edge-similarity index build (see
        :mod:`repro.similarity.index`): deterministic per slot, so any
        partition of the vertex range reassembles bitwise-identically.
        """
        graph, cfg = self.graph, self.config
        return kernels.sigma_row_block(
            graph.indptr, graph.indices, graph.weights, int(lo), int(hi),
            kind=cfg.kind, closed=cfg.closed, self_weight=cfg.self_weight,
            lengths=self._lengths, linear_sums=self._linear_sums,
            edge_keys=self.edge_keys,
        )

    # ------------------------------------------------------------------
    # threshold tests with the Section III-D optimizations
    # ------------------------------------------------------------------
    def lemma5_bound(self, p: int, q: int) -> float:
        """Safe upper bound on the σ numerator (corrected Lemma 5).

        The paper bounds the numerator by ``min(|N_p|, |N_q|)·max(w_p, w_q)``,
        which is only valid for weights ≤ 1; each term satisfies
        ``w_pr · w_qr ≤ w_p · w_q``, so the sound bound used here is
        ``min(|N_p|, |N_q|) · w_p · w_q`` plus the self terms in closed
        mode.  The deviation is documented in DESIGN.md.
        """
        graph, cfg = self.graph, self.config
        dp, dq = graph.degree(p), graph.degree(q)
        wp, wq = self._max_weights[p], self._max_weights[q]
        bound = min(dp, dq) * wp * wq
        if cfg.closed:
            bound += cfg.self_weight * (wp + wq)
        return float(bound)

    def similar(self, p: int, q: int, epsilon: float) -> bool:
        """Whether σ(p, q) ≥ ε, using pruning when enabled.

        The Lemma 5 filter answers in O(1) when the bound already fails;
        otherwise the merge join is (conceptually) early-exited in both
        directions: as soon as the accumulated dot product crosses the
        threshold σ ≥ ε is certain, and as soon as the remaining mass
        cannot reach it σ < ε is certain.  The recorded cost reflects the
        consumed prefix of the merge.
        """
        passed, cost, outcome = self._threshold_test(p, q, epsilon)
        if outcome == "prune":
            self.counters.record_prune()
        else:
            self.counters.record_sigma(cost, early_exit=outcome == "early")
        return passed

    def _threshold_test(self, p: int, q: int, epsilon: float) -> tuple:
        """``(passed, cost, outcome)`` with outcome in prune/early/full.

        The unrecorded core of :meth:`similar`; range queries aggregate
        many of these into a single counter record.
        """
        if self.config.kind != "cosine" or not self.config.pruning:
            value, cost = self._sigma_value(p, q)
            return value >= epsilon, cost, "full"
        threshold = epsilon * float(
            np.sqrt(self._lengths[p] * self._lengths[q])
        )
        if self.lemma5_bound(p, q) < threshold:
            return False, 1.0, "prune"
        return self._similar_early_exit(p, q, threshold)

    def _similar_early_exit(self, p: int, q: int, threshold: float) -> tuple:
        """Threshold test charging only the consumed merge prefix."""
        graph, cfg = self.graph, self.config
        np_row = graph.neighbors(p)
        nq_row = graph.neighbors(q)
        wp_row = graph.neighbor_weights(p)
        wq_row = graph.neighbor_weights(q)
        full_cost = float(np_row.shape[0] + nq_row.shape[0])

        acc = 0.0
        if cfg.closed and p != q:
            pos = int(np.searchsorted(nq_row, p))
            if pos < nq_row.shape[0] and int(nq_row[pos]) == p:
                acc += 2.0 * cfg.self_weight * float(wq_row[pos])
        if acc >= threshold:
            return True, 2.0, "early"

        # Vectorized merge with a cumulative-sum early-exit charge: the
        # products are computed at C speed, then the crossing point tells
        # how much of the merge a sequential implementation would consume.
        _, ip, iq = np.intersect1d(
            np_row, nq_row, assume_unique=True, return_indices=True
        )
        if ip.shape[0] == 0:
            cost = min(full_cost, 2.0 + float(min(len(np_row), len(nq_row))))
            return acc >= threshold, cost, "early"
        order = np.argsort(ip)  # merge consumes common neighbors in id order
        products = wp_row[ip[order]] * wq_row[iq[order]]
        cumulative = acc + np.cumsum(products)
        total = float(cumulative[-1])
        if total >= threshold:
            # σ ≥ ε; the merge could stop at the crossing product.
            k = int(np.searchsorted(cumulative, threshold)) + 1
            fraction = k / products.shape[0]
            cost = max(2.0, fraction * full_cost)
            return True, cost, ("early" if fraction < 1.0 else "full")
        return False, full_cost, "full"

    # ------------------------------------------------------------------
    # neighborhoods
    # ------------------------------------------------------------------
    def eps_neighborhood(self, p: int, epsilon: float) -> np.ndarray:
        """Structural neighborhood ``N_p^ε`` (Definition 2), excluding ``p``.

        One batched kernel pass over the whole row (no per-pair Python
        work); records one range query whose cost is the sum of the full
        merge costs of all neighbor evaluations — identical accounting to
        the historical per-pair loop (the dominant cost of Step 1).
        """
        fault_point("sigma.query")
        neighbors = self.graph.neighbors(p)
        if neighbors.shape[0] == 0:
            self.counters.record_neighborhood_query(0.0, evaluations=0)
            return np.zeros(0, dtype=np.int64)
        ps = np.full(neighbors.shape[0], int(p), dtype=np.int64)
        values, costs = self._pair_sigmas(ps, neighbors)
        self.counters.record_neighborhood_query(
            float(costs.sum()), evaluations=int(neighbors.shape[0])
        )
        return neighbors[values >= epsilon].astype(np.int64, copy=False)

    def eps_neighborhood_pruned(self, p: int, epsilon: float) -> np.ndarray:
        """``N_p^ε`` computed with per-neighbor threshold tests.

        This is the SCAN-B range query: each neighbor goes through the
        Lemma 5 filter and early-exit test instead of a full σ evaluation,
        so for high ε most of the merge work is skipped.  Like
        :meth:`eps_neighborhood` it records one range query charging the
        consumed costs (prunes, early exits, and full merges included),
        so Figure-7-style reports count SCAN-B's range queries too.
        """
        neighbors = self.graph.neighbors(p)
        tests = [
            self._threshold_test(p, int(q), epsilon) for q in neighbors
        ]
        passing = [
            int(q) for q, (ok, _, _) in zip(neighbors, tests) if ok
        ]
        pruned = sum(1 for _, _, outcome in tests if outcome == "prune")
        early = sum(1 for _, _, outcome in tests if outcome == "early")
        cost = sum(c for _, c, outcome in tests if outcome != "prune")
        self.counters.record_neighborhood_query(
            float(cost),
            evaluations=len(tests) - pruned,
            early_exits=early,
            pruned=pruned,
        )
        return np.asarray(passing, dtype=np.int64)

    def eps_neighborhood_size(self, p: int, epsilon: float) -> int:
        """``|N_p^ε|`` including ``p`` itself when ``count_self`` is set."""
        size = int(self.eps_neighborhood(p, epsilon).shape[0])
        if self.config.count_self:
            size += 1
        return size

    def max_possible_eps_neighbors(self, p: int) -> int:
        """Upper bound on ``|N_p^ε|``: degree plus the self term."""
        return self.graph.degree(p) + (1 if self.config.count_self else 0)

    def core_threshold_deficit(self, mu: int) -> int:
        """Neighbors (excluding self) needed to possibly reach ``μ``."""
        return mu - (1 if self.config.count_self else 0)
