"""Instrumentation counters for similarity work.

Figure 7 of the paper compares algorithms by their *number of structural
similarity evaluations*, and the multicore simulator prices parallel tasks
by the work they perform.  Every similarity oracle owns one
:class:`SimilarityCounters` instance that the algorithms read out.

``work_units`` is the abstract cost the paper's complexity analysis uses:
a full σ(p, q) evaluation costs ``|N_p| + |N_q|`` (sort-merge join), a
Lemma 5 prune costs 1, and an early-exited evaluation costs the prefix of
the merge that was actually consumed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["SimilarityCounters"]


@dataclass
class SimilarityCounters:
    """Mutable tally of similarity-related work."""

    sigma_evaluations: int = 0
    pruned_lemma5: int = 0
    early_exits: int = 0
    neighborhood_queries: int = 0
    work_units: float = 0.0
    _marks: dict = field(default_factory=dict, repr=False)

    def record_sigma(self, cost: float, *, early_exit: bool = False) -> None:
        """Record one σ evaluation of the given work cost."""
        self.sigma_evaluations += 1
        self.work_units += cost
        if early_exit:
            self.early_exits += 1

    def record_prune(self, count: int = 1) -> None:
        """Record ``count`` Lemma 5 constant-time prunes (1 work unit each)."""
        self.pruned_lemma5 += count
        self.work_units += float(count)

    def record_sigma_batch(self, evaluations: int, cost: float) -> None:
        """Record a batched σ pass: ``evaluations`` evaluations, total ``cost``.

        Equivalent to ``evaluations`` calls to :meth:`record_sigma` whose
        costs sum to ``cost`` — the batched kernels charge exactly what
        the per-pair path would, just in one call.
        """
        self.sigma_evaluations += int(evaluations)
        self.work_units += float(cost)

    def record_neighborhood_query(
        self,
        cost: float,
        evaluations: int = 0,
        *,
        early_exits: int = 0,
        pruned: int = 0,
    ) -> None:
        """Record one full ε-neighborhood (range) query.

        ``evaluations`` is the number of per-neighbor σ computations the
        query performed; they count toward :attr:`sigma_evaluations` so
        algorithms using full range queries (SCAN) are comparable with
        those evaluating edges individually (Figure 7).  Pruned range
        queries (SCAN-B) additionally report how many neighbors were
        settled by an early exit (``early_exits``) or skipped entirely by
        the Lemma 5 filter (``pruned``, 1 work unit each on top of
        ``cost``).
        """
        self.neighborhood_queries += 1
        self.sigma_evaluations += evaluations
        self.early_exits += early_exits
        self.pruned_lemma5 += pruned
        self.work_units += cost + float(pruned)

    def reset(self) -> None:
        """Zero every counter."""
        self.sigma_evaluations = 0
        self.pruned_lemma5 = 0
        self.early_exits = 0
        self.neighborhood_queries = 0
        self.work_units = 0.0
        self._marks.clear()

    def mark(self, name: str) -> None:
        """Remember the current work level under ``name`` (for per-step splits)."""
        self._marks[name] = self.snapshot()

    def since(self, name: str) -> "SimilarityCounters":
        """Delta of every counter since :meth:`mark` was called with ``name``."""
        base = self._marks.get(name)
        if base is None:
            return self.snapshot()
        return SimilarityCounters(
            sigma_evaluations=self.sigma_evaluations - base.sigma_evaluations,
            pruned_lemma5=self.pruned_lemma5 - base.pruned_lemma5,
            early_exits=self.early_exits - base.early_exits,
            neighborhood_queries=self.neighborhood_queries
            - base.neighborhood_queries,
            work_units=self.work_units - base.work_units,
        )

    def snapshot(self) -> "SimilarityCounters":
        """Immutable-ish copy of the current values."""
        return SimilarityCounters(
            sigma_evaluations=self.sigma_evaluations,
            pruned_lemma5=self.pruned_lemma5,
            early_exits=self.early_exits,
            neighborhood_queries=self.neighborhood_queries,
            work_units=self.work_units,
        )
