"""Materialized per-edge similarities for interactive re-clustering.

The paper's use case is *interactive*: a user explores many (ε, μ)
settings over one fixed graph.  σ(p, q) does not depend on either
parameter, so paying the σ phase once and indexing the result turns
every subsequent query into array passes — the design of Tseng,
Dhulipala & Shun's index-based parallel SCAN, adapted to this
repository's CSR layout:

* :class:`EdgeSimilarityIndex` stores one float64 per **directed** CSR
  edge slot, aligned with ``graph.indices`` — σ for vertex ``p``'s whole
  row is a contiguous slice, and an ε-neighborhood is a mask over it.
* The build runs through the batched kernels
  (:mod:`repro.similarity.kernels`), optionally fanned out over the
  thread/process backends; every path produces the bitwise-identical
  array (each slot (u, v) is always computed by expanding v's row).
* ``save``/``load`` round-trip through ``.npz`` with a graph fingerprint,
  the similarity config, and a payload checksum embedded.  Saves are
  atomic (write-to-temp + ``os.replace``), so a crashed writer can never
  leave a half-written archive under the real name.  Loads verify the
  checksum; damage of any kind (truncation, flipped bytes, a zeroed
  header, missing fields) raises
  :class:`~repro.errors.IndexIntegrityError`, and
  :meth:`EdgeSimilarityIndex.load_or_rebuild` turns that into quarantine
  (``{path}.quarantined``) plus a fresh rebuild instead of a crash.  A
  graph/semantics mismatch still raises plain
  :class:`~repro.errors.ConfigError` rather than silently returning σ
  values for the wrong graph or semantics.
* :class:`IndexedOracle` is a drop-in
  :class:`~repro.similarity.weighted.SimilarityOracle` whose σ lookups
  hit the index: re-clustering at a new (ε, μ) performs **zero** σ
  evaluations (the counters stay near zero; ``index_lookups`` tallies
  the hits instead).

Memory cost: one float64 per directed edge — the same footprint as the
CSR ``weights`` array.
"""

from __future__ import annotations

import hashlib
import os
from typing import Tuple

import numpy as np

from repro.errors import ConfigError, IndexIntegrityError
from repro.faults import fault_point
from repro.graph.csr import Graph
from repro.similarity import kernels
from repro.similarity.weighted import SimilarityConfig, SimilarityOracle

__all__ = ["EdgeSimilarityIndex", "IndexedOracle", "graph_fingerprint"]

#: Config fields that change σ values.  ``pruning`` only changes how
#: threshold tests are *scheduled*, never their results, so indexes stay
#: usable across pruning settings.
_SEMANTIC_FIELDS = ("kind", "closed", "self_weight", "count_self")


def graph_fingerprint(graph: Graph) -> str:
    """Stable digest of the CSR arrays identifying one exact graph."""
    digest = hashlib.sha256()
    digest.update(np.int64(graph.num_vertices).tobytes())
    digest.update(np.ascontiguousarray(graph.indptr).tobytes())
    digest.update(np.ascontiguousarray(graph.indices).tobytes())
    digest.update(np.ascontiguousarray(graph.weights).tobytes())
    return digest.hexdigest()


def _config_signature(config: SimilarityConfig) -> dict:
    return {name: getattr(config, name) for name in _SEMANTIC_FIELDS}


def _archive_path(path) -> str:
    """The on-disk name ``np.savez`` would use (it appends ``.npz``)."""
    text = os.fspath(path)
    return text if text.endswith(".npz") else text + ".npz"


def _payload_checksum(
    fingerprint: str, sigmas: np.ndarray, config: SimilarityConfig
) -> str:
    """Digest binding the σ payload to its graph and semantics."""
    digest = hashlib.sha256()
    digest.update(fingerprint.encode())
    digest.update(
        np.ascontiguousarray(sigmas, dtype=np.float64).tobytes()
    )
    for name in _SEMANTIC_FIELDS + ("pruning",):
        digest.update(f"{name}={getattr(config, name)!r};".encode())
    return digest.hexdigest()


class EdgeSimilarityIndex:
    """σ for every directed CSR edge of one graph, computed once."""

    def __init__(
        self,
        graph: Graph,
        config: SimilarityConfig | None,
        sigmas: np.ndarray,
        *,
        fingerprint: str | None = None,
    ) -> None:
        self.graph = graph
        self.config = config or SimilarityConfig()
        self.config.validate()
        sigmas = np.ascontiguousarray(sigmas, dtype=np.float64)
        if sigmas.shape != graph.indices.shape:
            raise ConfigError(
                f"sigma array has shape {sigmas.shape}, expected one value "
                f"per directed CSR edge {graph.indices.shape}"
            )
        self._sigmas = sigmas
        self.fingerprint = fingerprint or graph_fingerprint(graph)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        graph: Graph,
        config: SimilarityConfig | None = None,
        *,
        backend=None,
        workers: int | None = None,
    ) -> "EdgeSimilarityIndex":
        """Materialize σ for every edge through the batched kernels.

        ``backend`` selects how the row blocks are computed: ``None``
        runs in-process (one bounded-memory kernel sweep), a registry
        name (``"thread" | "process" | "auto"``) or backend object fans
        the blocks out over the parallel backends — the process path
        reduces directly into a shared-memory σ segment (see
        :meth:`~repro.parallel.processes.ProcessBackend.map_sigma_rows`).
        All paths yield the bitwise-identical array.
        """
        config = config or SimilarityConfig()
        config.validate()
        if backend is None:
            oracle = SimilarityOracle(graph, config)
            sigmas = kernels.sigma_all_edges(
                graph.indptr, graph.indices, graph.weights,
                kind=config.kind, closed=config.closed,
                self_weight=config.self_weight,
                lengths=oracle.lengths, linear_sums=oracle.linear_sums,
            )
            return cls(graph, config, sigmas)
        # Local import: repro.parallel imports this package.
        from repro.parallel.backends import (
            close_backend, create_backend, run_sigma_rows,
        )

        owned = isinstance(backend, str)
        resolved = (
            create_backend(backend, workers=workers) if owned else backend
        )
        try:
            sigmas = run_sigma_rows(graph, backend=resolved, config=config)
        finally:
            if owned:
                close_backend(resolved)
        return cls(graph, config, sigmas)

    # ------------------------------------------------------------------
    # queries (plain array passes; no σ evaluations)
    # ------------------------------------------------------------------
    @property
    def sigmas(self) -> np.ndarray:
        """All directed-edge σ values, aligned with ``graph.indices``."""
        return self._sigmas

    def sigma_row(self, p: int) -> np.ndarray:
        """σ against every neighbor of ``p`` (view over ``p``'s CSR row)."""
        indptr = self.graph.indptr
        return self._sigmas[int(indptr[p]) : int(indptr[p + 1])]

    def lookup(
        self, ps: np.ndarray, qs: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Batched ``(σ values, found)`` for pair arrays.

        ``found`` is False where (p, q) is not a stored edge (σ of a
        non-adjacent pair is not materialized; callers fall back to the
        kernels for those).
        """
        graph = self.graph
        ps = np.ascontiguousarray(ps, dtype=np.int64)
        qs = np.ascontiguousarray(qs, dtype=np.int64)
        n = graph.num_vertices
        keys = ps * np.int64(n) + qs
        edge_keys = kernels.directed_edge_keys(graph.indptr, graph.indices)
        if edge_keys.shape[0] == 0:
            zeros = np.zeros(keys.shape[0], dtype=np.float64)
            return zeros, np.zeros(keys.shape[0], dtype=bool)
        pos = np.searchsorted(edge_keys, keys)
        in_range = pos < edge_keys.shape[0]
        safe = np.where(in_range, pos, 0)
        found = in_range & (edge_keys[safe] == keys)
        return np.where(found, self._sigmas[safe], 0.0), found

    def lookup_one(self, p: int, q: int) -> Tuple[float, bool]:
        """``(σ, found)`` for one pair; O(log deg) row bisection."""
        graph = self.graph
        indptr = graph.indptr
        lo, hi = int(indptr[p]), int(indptr[p + 1])
        pos = lo + int(np.searchsorted(graph.indices[lo:hi], q))
        if pos < hi and int(graph.indices[pos]) == q:
            return float(self._sigmas[pos]), True
        return 0.0, False

    def eps_neighborhood(self, p: int, epsilon: float) -> np.ndarray:
        """``N_p^ε`` as a mask over the stored row — no σ work at all."""
        row = self.sigma_row(p)
        return self.graph.neighbors(p)[row >= epsilon].astype(
            np.int64, copy=False
        )

    def eps_counts(self, epsilon: float) -> np.ndarray:
        """``|N_p^ε|`` for every vertex (excluding self), one pass."""
        graph = self.graph
        n = graph.num_vertices
        passing = (self._sigmas >= epsilon).astype(np.int64)
        counts = np.zeros(n, dtype=np.int64)
        nonempty = graph.degrees > 0
        starts = graph.indptr[:-1][nonempty]
        if starts.shape[0]:
            counts[nonempty] = np.add.reduceat(passing, starts)
        return counts

    def forward_edges(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(us, vs, σ)`` for each undirected edge with u < v, CSR order.

        The same order :meth:`repro.graph.csr.Graph.edges` iterates, so
        the explorer can substitute this for its per-edge σ loop.
        """
        graph = self.graph
        owners = np.repeat(
            np.arange(graph.num_vertices, dtype=np.int64), graph.degrees
        )
        mask = owners < graph.indices
        return (
            owners[mask],
            graph.indices[mask].astype(np.int64, copy=False),
            self._sigmas[mask],
        )

    # ------------------------------------------------------------------
    # compatibility checks and persistence
    # ------------------------------------------------------------------
    def require_compatible(
        self,
        graph: Graph | None = None,
        config: SimilarityConfig | None = None,
    ) -> None:
        """Raise :class:`ConfigError` unless the index answers for these.

        ``graph`` is compared by fingerprint (exact CSR content);
        ``config`` by the semantic fields only — ``pruning`` does not
        change σ values, so an index built without pruning serves a
        pruning oracle and vice versa.
        """
        if graph is not None and graph is not self.graph:
            found = graph_fingerprint(graph)
            if found != self.fingerprint:
                raise ConfigError(
                    "similarity index was built for a different graph "
                    f"(fingerprint {self.fingerprint[:12]}…, queried graph "
                    f"{found[:12]}…); rebuild with EdgeSimilarityIndex.build"
                )
        if config is not None:
            mine = _config_signature(self.config)
            theirs = _config_signature(config)
            if mine != theirs:
                raise ConfigError(
                    "similarity index semantics mismatch: index was built "
                    f"with {mine}, queried with {theirs}; rebuild the index "
                    "or pass a matching SimilarityConfig"
                )

    def save(self, path) -> None:
        """Persist atomically to ``.npz`` (σ + fingerprint + checksum).

        The archive is written to a temporary sibling and moved into
        place with ``os.replace``, so a crash mid-write (or an injected
        ``index.save`` fault) leaves the previous file — never a torn
        one — under the real name.
        """
        fault_point("index.save")
        cfg = self.config
        final = _archive_path(path)
        tmp = f"{final}.tmp-{os.getpid()}.npz"
        try:
            np.savez_compressed(
                tmp,
                sigmas=self._sigmas,
                fingerprint=np.str_(self.fingerprint),
                checksum=np.str_(
                    _payload_checksum(self.fingerprint, self._sigmas, cfg)
                ),
                kind=np.str_(cfg.kind),
                closed=np.bool_(cfg.closed),
                self_weight=np.float64(cfg.self_weight),
                count_self=np.bool_(cfg.count_self),
                pruning=np.bool_(cfg.pruning),
            )
            os.replace(tmp, final)
        finally:
            if os.path.exists(tmp):
                os.unlink(tmp)

    @classmethod
    def load(
        cls,
        path,
        graph: Graph,
        *,
        config: SimilarityConfig | None = None,
    ) -> "EdgeSimilarityIndex":
        """Load an index saved by :meth:`save` and bind it to ``graph``.

        Raises :class:`IndexIntegrityError` when the archive is
        unreadable, incomplete, or fails its checksum (disk rot, a torn
        write by some other tool), and plain :class:`ConfigError` when
        the archive is intact but answers for a different graph or —
        if ``config`` is given — different semantics.
        """
        fault_point("index.load")
        final = _archive_path(path)
        try:
            with np.load(final, allow_pickle=False) as data:
                sigmas = np.asarray(data["sigmas"], dtype=np.float64)
                fingerprint = str(data["fingerprint"])
                checksum = str(data["checksum"])
                stored = SimilarityConfig(
                    kind=str(data["kind"]),
                    closed=bool(data["closed"]),
                    self_weight=float(data["self_weight"]),
                    count_self=bool(data["count_self"]),
                    pruning=bool(data["pruning"]),
                )
        except Exception as exc:
            # Damaged archives surface as an open-ended set of parse
            # errors (BadZipFile, zlib.error, struct.error, KeyError,
            # even NotImplementedError for mangled flag bits); all of
            # them mean the same thing here and the chain is preserved.
            raise IndexIntegrityError(
                f"similarity index at {final!s} is unreadable or incomplete "
                f"({type(exc).__name__}: {exc}); quarantine and rebuild"
            ) from exc
        expected = _payload_checksum(fingerprint, sigmas, stored)
        if checksum != expected:
            raise IndexIntegrityError(
                f"similarity index at {final!s} failed checksum verification "
                f"(stored {checksum[:12]}…, computed {expected[:12]}…); the "
                "archive is damaged — quarantine and rebuild"
            )
        found = graph_fingerprint(graph)
        if fingerprint != found:
            raise ConfigError(
                f"similarity index at {final!s} was built for a different "
                f"graph (stored fingerprint {fingerprint[:12]}…, this graph "
                f"{found[:12]}…)"
            )
        index = cls(graph, stored, sigmas, fingerprint=fingerprint)
        if config is not None:
            index.require_compatible(config=config)
        return index

    @classmethod
    def load_or_rebuild(
        cls,
        path,
        graph: Graph,
        *,
        config: SimilarityConfig | None = None,
        backend=None,
        workers: int | None = None,
    ) -> Tuple["EdgeSimilarityIndex", bool]:
        """Load ``path``; on damage, quarantine it and rebuild from σ.

        Returns ``(index, recovered)`` — ``recovered`` is True when the
        stored archive was damaged (or missing) and a fresh index was
        built and saved in its place; the damaged file is preserved as
        ``{path}.quarantined`` for post-mortems.  A fingerprint or
        semantics mismatch is *not* recovered from: that is a caller
        error (wrong file for this graph) and still raises
        :class:`ConfigError`.
        """
        final = _archive_path(path)
        try:
            return cls.load(final, graph, config=config), False
        except IndexIntegrityError:
            try:
                os.replace(final, final + ".quarantined")
            except FileNotFoundError:
                pass  # missing archive: nothing to quarantine
            index = cls.build(graph, config, backend=backend, workers=workers)
            index.save(final)
            return index, True


class IndexedOracle(SimilarityOracle):
    """A :class:`SimilarityOracle` whose σ lookups hit a prebuilt index.

    Every query answerable from the index performs zero σ evaluations
    and charges zero work; ``index_lookups``/``index_misses`` count the
    traffic instead (misses — pairs that are not stored edges — fall
    back to the exact batched kernels and are charged normally).
    """

    def __init__(
        self,
        index: EdgeSimilarityIndex,
        *,
        graph: Graph | None = None,
        config: SimilarityConfig | None = None,
    ) -> None:
        graph = graph if graph is not None else index.graph
        index.require_compatible(graph=graph, config=config)
        super().__init__(graph, config or index.config)
        self.index = index
        self.index_lookups = 0
        self.index_misses = 0

    def sigma(self, p: int, q: int) -> float:
        value, found = self.index.lookup_one(int(p), int(q))
        if found:
            self.index_lookups += 1
            return value
        self.index_misses += 1
        return super().sigma(p, q)

    def sigma_unrecorded(self, p: int, q: int) -> float:
        value, found = self.index.lookup_one(int(p), int(q))
        if found:
            self.index_lookups += 1
            return value
        self.index_misses += 1
        return super().sigma_unrecorded(p, q)

    def sigma_batch(self, p: int, qs: np.ndarray) -> np.ndarray:
        qs = np.ascontiguousarray(qs, dtype=np.int64)
        if qs.shape[0] == 0:
            return np.zeros(0, dtype=np.float64)
        ps = np.full(qs.shape[0], int(p), dtype=np.int64)
        values, found = self.index.lookup(ps, qs)
        hits = int(found.sum())
        self.index_lookups += hits
        if hits < qs.shape[0]:
            missing = ~found
            self.index_misses += int(missing.sum())
            exact, costs = self._pair_sigmas(ps[missing], qs[missing])
            values[missing] = exact
            self.counters.record_sigma_batch(
                int(missing.sum()), float(costs.sum())
            )
        return values

    def similar(self, p: int, q: int, epsilon: float) -> bool:
        value, found = self.index.lookup_one(int(p), int(q))
        if found:
            self.index_lookups += 1
            return value >= epsilon
        self.index_misses += 1
        return super().similar(p, q, epsilon)

    def similar_batch(
        self, p: int, qs: np.ndarray, epsilon: float
    ) -> np.ndarray:
        return self.sigma_batch(p, qs) >= epsilon

    def eps_neighborhood(self, p: int, epsilon: float) -> np.ndarray:
        hood = self.index.eps_neighborhood(int(p), epsilon)
        self.index_lookups += self.graph.degree(int(p))
        self.counters.record_neighborhood_query(0.0, evaluations=0)
        return hood

    def eps_neighborhood_pruned(self, p: int, epsilon: float) -> np.ndarray:
        # The index already answers exactly; pruning would only add work.
        return self.eps_neighborhood(p, epsilon)
