"""Weighted structural similarity, pruning optimizations, and counters."""

from repro.similarity.counters import SimilarityCounters
from repro.similarity.weighted import SimilarityConfig, SimilarityOracle

__all__ = ["SimilarityConfig", "SimilarityOracle", "SimilarityCounters"]
