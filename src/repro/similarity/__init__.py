"""Weighted structural similarity, batched kernels, and the edge index."""

from repro.similarity.counters import SimilarityCounters
from repro.similarity.weighted import SimilarityConfig, SimilarityOracle
from repro.similarity.index import (
    EdgeSimilarityIndex,
    IndexedOracle,
    graph_fingerprint,
)

__all__ = [
    "SimilarityConfig",
    "SimilarityOracle",
    "SimilarityCounters",
    "EdgeSimilarityIndex",
    "IndexedOracle",
    "graph_fingerprint",
]
