"""Weighted structural similarity, batched kernels, and the indexes."""

from repro.similarity.counters import SimilarityCounters
from repro.similarity.weighted import SimilarityConfig, SimilarityOracle
from repro.similarity.index import (
    EdgeSimilarityIndex,
    IndexedOracle,
    graph_fingerprint,
)
from repro.similarity.gsindex import DEFAULT_MU_CAP, ClusteringIndex

__all__ = [
    "SimilarityConfig",
    "SimilarityOracle",
    "SimilarityCounters",
    "EdgeSimilarityIndex",
    "IndexedOracle",
    "ClusteringIndex",
    "DEFAULT_MU_CAP",
    "graph_fingerprint",
]
