"""Batched CSR σ-kernels: whole vertex blocks in one numpy pass.

The scalar oracle evaluates σ(p, q) one pair at a time with a per-pair
``np.intersect1d`` — a Python call and several allocations per edge.
The GPUSCAN++ formulation of the σ phase replaces that with *segmented*
intersections: all pairs of a vertex block are expanded at once and the
sorted-merge becomes a single vectorized membership probe against the
CSR adjacency, so the per-pair Python overhead disappears.

The trick that keeps everything segment-free is a **global edge key**:
with rows sorted and ``owners`` nondecreasing, ``owner · n + neighbor``
is strictly increasing over the whole ``indices`` array, so one
``np.searchsorted`` answers "is r adjacent to p, and with what weight?"
for *any* batch of (p, r) probes — no per-row bisection needed.  For a
pair (p, q) the common-neighbor sum then falls out of expanding q's row
once and probing p:

    Σ_{r ∈ N_p ∩ N_q} f(w_pr, w_qr)
      = Σ_{r ∈ N_q, (p,r) ∈ E} f(w_pr, w_qr)

accumulated per pair with ``np.bincount``.  Closed-mode self terms and
the four kinds (cosine / jaccard / dice / overlap) are vectorized
corrections on top.  Work costs are charged exactly like the scalar
path: a full evaluation of (p, q) costs ``|N_p| + |N_q|`` merge units.

Everything here is plain array algebra over ``indptr``/``indices``/
``weights`` — this module falls under the R3 vectorization gate and
carries no pragmas.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import ConfigError

__all__ = [
    "directed_edge_keys",
    "edge_weight_lookup",
    "pair_overlaps",
    "sigma_for_pairs",
    "lemma5_bounds",
    "block_pairs",
    "sigma_row_block",
    "sigma_all_edges",
]

_SET_KINDS = ("jaccard", "dice", "overlap")


def directed_edge_keys(indptr: np.ndarray, indices: np.ndarray) -> np.ndarray:
    """Strictly increasing int64 key per directed CSR edge slot.

    ``key = owner * n + neighbor``: owners are nondecreasing along the
    CSR and neighbor ids strictly increase within a row, so the keys are
    globally sorted — the precondition for :func:`edge_weight_lookup`.
    """
    n = int(indptr.shape[0]) - 1
    owners = np.repeat(
        np.arange(n, dtype=np.int64), np.diff(indptr).astype(np.int64)
    )
    return owners * np.int64(n) + indices.astype(np.int64, copy=False)


def edge_weight_lookup(
    weights: np.ndarray,
    edge_keys: np.ndarray,
    num_vertices: int,
    ps: np.ndarray,
    qs: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorized adjacency probe: ``(w[p, q], found)`` for pair arrays.

    ``w`` is 0.0 where (p, q) is not an edge.  One binary search over the
    global key array per probe, all at C speed.
    """
    keys = ps.astype(np.int64, copy=False) * np.int64(num_vertices) + qs
    if edge_keys.shape[0] == 0:
        zeros = np.zeros(keys.shape[0], dtype=np.float64)
        return zeros, np.zeros(keys.shape[0], dtype=bool)
    pos = np.searchsorted(edge_keys, keys)
    in_range = pos < edge_keys.shape[0]
    safe = np.where(in_range, pos, 0)
    found = in_range & (edge_keys[safe] == keys)
    return np.where(found, weights[safe], 0.0), found


def pair_overlaps(
    indptr: np.ndarray,
    indices: np.ndarray,
    weights: np.ndarray,
    edge_keys: np.ndarray,
    ps: np.ndarray,
    qs: np.ndarray,
    *,
    accumulate: str,
    closed: bool,
    self_weight: float,
) -> Tuple[np.ndarray, np.ndarray]:
    """Common-neighborhood sums and merge costs for arbitrary pair arrays.

    ``accumulate="dot"`` returns the σ numerator Σ w_pr · w_qr (cosine);
    ``accumulate="min"`` returns Σ min(w_pr, w_qr) (set kinds).  Both
    include the closed-mode self terms when ``closed`` and charge each
    pair the full sorted-merge cost ``|N_p| + |N_q|`` — identical to the
    scalar oracle's accounting.
    """
    if accumulate not in ("dot", "min"):
        raise ConfigError(f"unknown accumulate mode {accumulate!r}")
    n = int(indptr.shape[0]) - 1
    degrees = np.diff(indptr).astype(np.int64)
    ps = ps.astype(np.int64, copy=False)
    qs = qs.astype(np.int64, copy=False)
    npairs = int(ps.shape[0])
    costs = (degrees[ps] + degrees[qs]).astype(np.float64)

    # Expand every q's row: one flat array of (pair id, r, w_qr) triples.
    qdeg = degrees[qs]
    total = int(qdeg.sum())
    sums = np.zeros(npairs, dtype=np.float64)
    if total:
        seg = np.repeat(np.arange(npairs, dtype=np.int64), qdeg)
        offsets = np.concatenate(
            (np.zeros(1, dtype=np.int64), np.cumsum(qdeg)[:-1])
        )
        flat = indptr[qs][seg] + (np.arange(total, dtype=np.int64) - offsets[seg])
        r = indices[flat]
        w_qr = weights[flat]
        w_pr, found = edge_weight_lookup(weights, edge_keys, n, ps[seg], r)
        if accumulate == "dot":
            contrib = w_pr * w_qr
        else:
            contrib = np.minimum(w_pr, w_qr)
        contrib = np.where(found, contrib, 0.0)
        sums = np.bincount(seg, weights=contrib, minlength=npairs)

    if closed:
        # Γ = N ∪ {self}: the r = p and r = q terms, which the expansion
        # above cannot see because self loops are not stored.
        sw = float(self_weight)
        w_pq, adjacent = edge_weight_lookup(weights, edge_keys, n, ps, qs)
        same = ps == qs
        if accumulate == "dot":
            extra = np.where(
                same, sw * sw, np.where(adjacent, 2.0 * sw * w_pq, 0.0)
            )
        else:
            extra = np.where(
                same,
                sw,
                np.where(adjacent, 2.0 * np.minimum(sw, w_pq), 0.0),
            )
        sums = sums + extra
    return sums, costs


def sigma_for_pairs(
    indptr: np.ndarray,
    indices: np.ndarray,
    weights: np.ndarray,
    edge_keys: np.ndarray,
    ps: np.ndarray,
    qs: np.ndarray,
    *,
    kind: str,
    closed: bool,
    self_weight: float,
    lengths: np.ndarray,
    linear_sums: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """σ(p, q) and merge costs for arbitrary pair arrays, any kind.

    ``lengths``/``linear_sums`` are the oracle's precomputed per-vertex
    invariants (self terms already folded in for closed mode), so the
    denominators match the scalar path bit for bit.
    """
    if kind == "cosine":
        num, costs = pair_overlaps(
            indptr, indices, weights, edge_keys, ps, qs,
            accumulate="dot", closed=closed, self_weight=self_weight,
        )
        denom = np.sqrt(lengths[ps] * lengths[qs])
        out = np.zeros(num.shape[0], dtype=np.float64)
        np.divide(num, denom, out=out, where=denom > 0)
        return out, costs
    if kind not in _SET_KINDS:
        raise ConfigError(f"unknown similarity kind {kind!r}")
    overlap, costs = pair_overlaps(
        indptr, indices, weights, edge_keys, ps, qs,
        accumulate="min", closed=closed, self_weight=self_weight,
    )
    s1p = linear_sums[ps]
    s1q = linear_sums[qs]
    if kind == "jaccard":
        denom = s1p + s1q - overlap
    elif kind == "dice":
        denom = (s1p + s1q) / 2.0
    else:  # overlap coefficient
        denom = np.minimum(s1p, s1q)
    out = np.zeros(overlap.shape[0], dtype=np.float64)
    np.divide(overlap, denom, out=out, where=denom > 0)
    return out, costs


def lemma5_bounds(
    degrees: np.ndarray,
    max_weights: np.ndarray,
    ps: np.ndarray,
    qs: np.ndarray,
    *,
    closed: bool,
    self_weight: float,
) -> np.ndarray:
    """Batched corrected Lemma 5 numerator bounds (cosine pre-filter).

    Vectorization of :meth:`SimilarityOracle.lemma5_bound`:
    ``min(|N_p|, |N_q|) · w_p · w_q`` plus the closed-mode self terms.
    Comparing against ``ε · sqrt(l_p · l_q)`` prunes a whole batch of
    threshold tests in O(1) work each, before any row is expanded.
    """
    wp = max_weights[ps]
    wq = max_weights[qs]
    bound = np.minimum(degrees[ps], degrees[qs]) * wp * wq
    if closed:
        bound = bound + float(self_weight) * (wp + wq)
    return bound


def block_pairs(
    indptr: np.ndarray, indices: np.ndarray, lo: int, hi: int
) -> Tuple[np.ndarray, np.ndarray]:
    """All directed edge pairs owned by the vertex block ``[lo, hi)``.

    Returns ``(ps, qs)`` aligned with the CSR slots
    ``indptr[lo]:indptr[hi]`` — the unit of work for the row-block
    kernels and the parallel index build.
    """
    degrees = np.diff(indptr[lo : hi + 1]).astype(np.int64)
    ps = np.repeat(np.arange(lo, hi, dtype=np.int64), degrees)
    qs = indices[int(indptr[lo]) : int(indptr[hi])].astype(np.int64, copy=False)
    return ps, qs


def sigma_row_block(
    indptr: np.ndarray,
    indices: np.ndarray,
    weights: np.ndarray,
    lo: int,
    hi: int,
    *,
    kind: str,
    closed: bool,
    self_weight: float,
    lengths: np.ndarray,
    linear_sums: np.ndarray,
    edge_keys: np.ndarray | None = None,
) -> np.ndarray:
    """σ for every edge incident to the vertex block ``[lo, hi)``.

    One numpy pass over all slots ``indptr[lo]:indptr[hi]``; the result
    is aligned with that slice of the CSR.  Deterministic per slot (the
    slot (u, v) always expands v's row), so any partition of the vertex
    range — sequential, thread chunks, process chunks — reassembles into
    the bitwise-identical array.
    """
    if edge_keys is None:
        edge_keys = directed_edge_keys(indptr, indices)
    ps, qs = block_pairs(indptr, indices, lo, hi)
    values, _ = sigma_for_pairs(
        indptr, indices, weights, edge_keys, ps, qs,
        kind=kind, closed=closed, self_weight=self_weight,
        lengths=lengths, linear_sums=linear_sums,
    )
    return values


def sigma_all_edges(
    indptr: np.ndarray,
    indices: np.ndarray,
    weights: np.ndarray,
    *,
    kind: str,
    closed: bool,
    self_weight: float,
    lengths: np.ndarray,
    linear_sums: np.ndarray,
    block_budget: int = 1 << 20,
) -> np.ndarray:
    """σ for every directed CSR edge, processed in bounded vertex blocks.

    ``block_budget`` caps the expansion size (Σ over the block's edges of
    the far endpoint's degree) so peak memory stays flat on skewed degree
    distributions; each block is one :func:`sigma_row_block` pass.
    """
    n = int(indptr.shape[0]) - 1
    out = np.empty(int(indices.shape[0]), dtype=np.float64)
    if out.shape[0] == 0:
        return out
    edge_keys = directed_edge_keys(indptr, indices)
    degrees = np.diff(indptr).astype(np.int64)
    # Expansion cost of vertex v's row: Σ_{q ∈ N(v)} deg(q).
    slot_cost = degrees[indices]
    vertex_cost = np.zeros(n, dtype=np.int64)
    nonempty = degrees > 0
    starts = indptr[:-1][nonempty]
    if starts.shape[0]:
        vertex_cost[nonempty] = np.add.reduceat(slot_cost, starts)
    cum = np.concatenate((np.zeros(1, dtype=np.int64), np.cumsum(vertex_cost)))
    budget = max(int(block_budget), 1)
    lo = 0
    while lo < n:
        hi = int(np.searchsorted(cum, cum[lo] + budget, side="right")) - 1
        hi = min(max(hi, lo + 1), n)
        a, b = int(indptr[lo]), int(indptr[hi])
        out[a:b] = sigma_row_block(
            indptr, indices, weights, lo, hi,
            kind=kind, closed=closed, self_weight=self_weight,
            lengths=lengths, linear_sums=linear_sums, edge_keys=edge_keys,
        )
        lo = hi
    return out
