"""anySCAN: scalable and interactive structural graph clustering.

Reproduction of Mai et al., "Scalable and Interactive Graph Clustering
Algorithm on Multicore CPUs" (ICDE 2017).  See README.md for a tour and
DESIGN.md for the system inventory.

Quickstart
----------
>>> from repro import Graph, AnySCAN, AnyScanConfig
>>> graph = Graph.from_edges(4, [(0, 1), (1, 2), (2, 0), (2, 3)])
>>> result = AnySCAN(graph, AnyScanConfig(mu=2, epsilon=0.5)).run()
>>> result.num_clusters
1
"""

from repro._version import __version__
from repro.anytime import AnytimeRunner, AnytimeTrace, TracePoint
from repro.baselines import pscan, scan, scan_b, scanpp
from repro.core import (
    AnySCAN,
    AnyScanConfig,
    EpsilonHierarchy,
    ParameterExplorer,
    Snapshot,
)
from repro.core.parallel import ParallelAnySCAN, ideal_speedups
from repro.dynamic import AdjacencyGraph, DynamicSCAN
from repro.graph import Graph, GraphBuilder, load_edge_list, save_edge_list
from repro.metrics import ari, equivalent_clusterings, modularity, nmi, quality_report
from repro.parallel import MachineSpec, MulticoreSimulator
from repro.result import HUB, OUTLIER, Clustering, VertexRole
from repro.similarity import SimilarityConfig, SimilarityOracle

__all__ = [
    "__version__",
    # graph substrate
    "Graph",
    "GraphBuilder",
    "load_edge_list",
    "save_edge_list",
    # similarity
    "SimilarityConfig",
    "SimilarityOracle",
    # the contribution
    "AnySCAN",
    "AnyScanConfig",
    "Snapshot",
    "ParameterExplorer",
    "EpsilonHierarchy",
    "ParallelAnySCAN",
    "ideal_speedups",
    "AdjacencyGraph",
    "DynamicSCAN",
    # anytime driving
    "AnytimeRunner",
    "AnytimeTrace",
    "TracePoint",
    # baselines
    "scan",
    "scan_b",
    "pscan",
    "scanpp",
    # results and metrics
    "Clustering",
    "VertexRole",
    "HUB",
    "OUTLIER",
    "nmi",
    "ari",
    "modularity",
    "quality_report",
    "equivalent_clusterings",
    # simulated machine
    "MachineSpec",
    "MulticoreSimulator",
]
