"""Clustering results shared by every algorithm in the library.

SCAN-family algorithms output three things: clusters of vertices, *hubs*
(non-members bridging ≥ 2 clusters), and *outliers* (the rest).  A
:class:`Clustering` stores a per-vertex label array (cluster ids ≥ 0,
:data:`HUB` and :data:`OUTLIER` sentinels below zero) plus the optional
per-vertex role, and offers the canonicalization helpers the tests and
NMI computations rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum
from typing import Dict, List, Sequence

import numpy as np

from repro.errors import ReproError

__all__ = ["HUB", "OUTLIER", "VertexRole", "Clustering"]

#: Label of a hub vertex (adjacent to two or more clusters).
HUB = -1
#: Label of an outlier vertex.
OUTLIER = -2


class VertexRole(IntEnum):
    """Structural role SCAN assigns to each vertex."""

    CORE = 0
    BORDER = 1
    HUB = 2
    OUTLIER = 3


@dataclass(frozen=True)
class Clustering:
    """Immutable clustering of a graph's vertices.

    Attributes
    ----------
    labels:
        Per-vertex label: a cluster id ≥ 0, or :data:`HUB` / :data:`OUTLIER`.
    roles:
        Optional per-vertex :class:`VertexRole` array.
    """

    labels: np.ndarray
    roles: np.ndarray | None = field(default=None)

    def __post_init__(self) -> None:
        labels = np.ascontiguousarray(self.labels, dtype=np.int64)
        object.__setattr__(self, "labels", labels)
        if self.roles is not None:
            roles = np.ascontiguousarray(self.roles, dtype=np.int8)
            if roles.shape != labels.shape:
                raise ReproError("roles must be parallel to labels")
            object.__setattr__(self, "roles", roles)

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return int(self.labels.shape[0])

    @property
    def num_clusters(self) -> int:
        """Number of distinct clusters (ignoring hubs/outliers)."""
        members = self.labels[self.labels >= 0]
        if members.shape[0] == 0:
            return 0
        return int(np.unique(members).shape[0])

    @property
    def clustered_vertices(self) -> np.ndarray:
        """Ids of vertices assigned to some cluster."""
        return np.flatnonzero(self.labels >= 0)

    @property
    def hubs(self) -> np.ndarray:
        """Ids of hub vertices."""
        return np.flatnonzero(self.labels == HUB)

    @property
    def outliers(self) -> np.ndarray:
        """Ids of outlier vertices."""
        return np.flatnonzero(self.labels == OUTLIER)

    @property
    def unclustered(self) -> np.ndarray:
        """Ids of all non-member vertices (hubs and outliers)."""
        return np.flatnonzero(self.labels < 0)

    def members_of(self, cluster: int) -> np.ndarray:
        """Vertices labeled with cluster id ``cluster``."""
        return np.flatnonzero(self.labels == cluster)

    def clusters(self) -> Dict[int, np.ndarray]:
        """Mapping cluster id -> member array."""
        out: Dict[int, np.ndarray] = {}
        for cid in np.unique(self.labels[self.labels >= 0]):
            out[int(cid)] = self.members_of(int(cid))
        return out

    def cores(self) -> np.ndarray:
        """Core vertices (requires roles)."""
        if self.roles is None:
            raise ReproError("this clustering carries no role information")
        return np.flatnonzero(self.roles == int(VertexRole.CORE))

    def borders(self) -> np.ndarray:
        """Border vertices (requires roles)."""
        if self.roles is None:
            raise ReproError("this clustering carries no role information")
        return np.flatnonzero(self.roles == int(VertexRole.BORDER))

    # ------------------------------------------------------------------
    # canonical forms
    # ------------------------------------------------------------------
    def canonical(self) -> "Clustering":
        """Relabel clusters to 0..k-1 by their smallest member vertex.

        Two clusterings with identical partitions compare equal after
        canonicalization regardless of the arbitrary label values the
        algorithms produced.
        """
        labels = self.labels
        order: List[int] = []
        seen: Dict[int, int] = {}
        for v in range(labels.shape[0]):
            lbl = int(labels[v])
            if lbl >= 0 and lbl not in seen:
                seen[lbl] = len(order)
                order.append(lbl)
        remap = np.array(
            [seen.get(int(lbl), int(lbl)) for lbl in labels], dtype=np.int64
        )
        return Clustering(labels=remap, roles=self.roles)

    def same_partition(self, other: "Clustering") -> bool:
        """Whether both clusterings induce the same vertex partition.

        Hubs and outliers are pooled together as "unclustered" because the
        hub/outlier distinction depends on cluster label identities only.
        """
        if self.num_vertices != other.num_vertices:
            return False
        a = self.canonical().labels.copy()
        b = other.canonical().labels.copy()
        a[a < 0] = -1
        b[b < 0] = -1
        return bool(np.array_equal(a, b))

    def membership_sets(self) -> List[frozenset]:
        """Clusters as a list of frozensets (order-independent compare)."""
        return [frozenset(int(v) for v in vs) for vs in self.clusters().values()]

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def from_membership(
        num_vertices: int, clusters: Sequence[Sequence[int]]
    ) -> "Clustering":
        """Build from explicit member lists; unmentioned vertices are outliers."""
        labels = np.full(num_vertices, OUTLIER, dtype=np.int64)
        for cid, members in enumerate(clusters):
            for v in members:
                labels[int(v)] = cid
        return Clustering(labels=labels)

    def summary(self) -> str:
        """One-line human description."""
        return (
            f"{self.num_clusters} clusters, "
            f"{int(self.clustered_vertices.shape[0])} member vertices, "
            f"{int(self.hubs.shape[0])} hubs, "
            f"{int(self.outliers.shape[0])} outliers"
        )
