"""Unsupervised clustering quality measures.

NMI needs a reference clustering; when exploring parameters
interactively (see :class:`repro.core.explorer.ParameterExplorer`) one
wants *intrinsic* quality signals instead.  This module provides the
standard trio used in the community-detection literature:

* :func:`modularity` — Newman's Q (weighted), higher is better;
* :func:`conductance` — per-cluster cut ratio, lower is better;
* :func:`coverage` — fraction of edge weight inside clusters.

Hubs/outliers are treated as singleton communities for modularity (they
contribute ≈ nothing) and are excluded from conductance/coverage.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.graph.csr import Graph
from repro.result import Clustering

__all__ = ["modularity", "conductance", "coverage", "quality_report"]


def modularity(graph: Graph, clustering: Clustering) -> float:
    """Newman's weighted modularity Q of the clustering.

    Q = Σ_c (w_in_c / W  -  (deg_c / 2W)²), with W the total edge weight;
    unclustered vertices count as singletons (zero internal weight).
    """
    total = graph.total_weight
    if total <= 0:
        return 0.0
    labels = clustering.labels
    # Singletons for the unclustered, with unique negative-side ids.
    effective = labels.copy()
    base = labels.max(initial=-1) + 1
    noise = np.flatnonzero(labels < 0)
    effective[noise] = base + np.arange(noise.shape[0])

    internal: Dict[int, float] = {}
    degree_sum: Dict[int, float] = {}
    for u in range(graph.num_vertices):
        cu = int(effective[u])
        wts = graph.neighbor_weights(u)
        degree_sum[cu] = degree_sum.get(cu, 0.0) + float(wts.sum())
    for u, v, w in graph.edges():
        if effective[u] == effective[v]:
            cu = int(effective[u])
            internal[cu] = internal.get(cu, 0.0) + w
    q = 0.0
    for c, dsum in degree_sum.items():
        q += internal.get(c, 0.0) / total - (dsum / (2.0 * total)) ** 2
    return float(q)


def conductance(graph: Graph, clustering: Clustering) -> Dict[int, float]:
    """Conductance per cluster: cut(C) / min(vol(C), vol(V \\ C)).

    Lower is better; 0 means no edges leave the cluster.  Returns an
    empty dict when there are no clusters.
    """
    labels = clustering.labels
    volume: Dict[int, float] = {}
    cut: Dict[int, float] = {}
    total_volume = 0.0
    for u in range(graph.num_vertices):
        w = float(graph.neighbor_weights(u).sum())
        total_volume += w
        if labels[u] >= 0:
            cu = int(labels[u])
            volume[cu] = volume.get(cu, 0.0) + w
    for u, v, w in graph.edges():
        lu, lv = int(labels[u]), int(labels[v])
        if lu >= 0 and lu != lv:
            cut[lu] = cut.get(lu, 0.0) + w
        if lv >= 0 and lv != lu:
            cut[lv] = cut.get(lv, 0.0) + w
    out: Dict[int, float] = {}
    for c, vol in volume.items():
        denom = min(vol, total_volume - vol)
        out[c] = cut.get(c, 0.0) / denom if denom > 0 else 0.0
    return out


def coverage(graph: Graph, clustering: Clustering) -> float:
    """Fraction of total edge weight with both endpoints in one cluster."""
    total = graph.total_weight
    if total <= 0:
        return 0.0
    labels = clustering.labels
    inside = sum(
        w
        for u, v, w in graph.edges()
        if labels[u] >= 0 and labels[u] == labels[v]
    )
    return float(inside / total)


def quality_report(graph: Graph, clustering: Clustering) -> Dict[str, float]:
    """One-call intrinsic summary (modularity, coverage, mean conductance)."""
    conductances: List[float] = list(conductance(graph, clustering).values())
    return {
        "modularity": modularity(graph, clustering),
        "coverage": coverage(graph, clustering),
        "mean_conductance": float(np.mean(conductances))
        if conductances
        else 1.0,
        "num_clusters": float(clustering.num_clusters),
        "clustered_fraction": float(
            clustering.clustered_vertices.shape[0]
            / max(clustering.num_vertices, 1)
        ),
    }
