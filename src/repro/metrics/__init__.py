"""Clustering quality metrics (NMI, ARI) and exactness comparison."""

from repro.metrics.comparison import (
    equivalent_clusterings,
    explain_difference,
    true_core_mask,
)
from repro.metrics.contingency import contingency_table, prepare_labels
from repro.metrics.nmi import ari, entropy, mutual_information, nmi
from repro.metrics.quality import (
    conductance,
    coverage,
    modularity,
    quality_report,
)

__all__ = [
    "nmi",
    "ari",
    "entropy",
    "mutual_information",
    "contingency_table",
    "prepare_labels",
    "true_core_mask",
    "equivalent_clusterings",
    "explain_difference",
    "modularity",
    "conductance",
    "coverage",
    "quality_report",
]
