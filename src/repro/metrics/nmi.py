"""Normalized Mutual Information and Adjusted Rand Index.

NMI is the paper's quality metric for the anytime curves (Figure 5): the
mutual information between the intermediate clustering and SCAN's ground
truth, normalized so 1.0 means identical.  The paper cites the geometric
mean normalization of Zaki & Meira; arithmetic and max normalizations are
offered for completeness, along with ARI as a cross-check metric.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError
from repro.metrics.contingency import contingency_table

__all__ = ["nmi", "ari", "mutual_information", "entropy"]


def entropy(counts: np.ndarray) -> float:
    """Shannon entropy (nats) of a cluster-size vector."""
    counts = np.asarray(counts, dtype=np.float64)
    total = counts.sum()
    if total <= 0:
        return 0.0
    probs = counts[counts > 0] / total
    return float(-(probs * np.log(probs)).sum())


def mutual_information(
    labels_a: np.ndarray,
    labels_b: np.ndarray,
    *,
    noise: str = "cluster",
) -> float:
    """Mutual information (nats) between two labelings."""
    matrix, rows, cols = contingency_table(labels_a, labels_b, noise=noise)
    total = matrix.sum()
    if total == 0:
        return 0.0
    mi = 0.0
    nz_r, nz_c = np.nonzero(matrix)
    for i, j in zip(nz_r, nz_c):
        nij = matrix[i, j]
        mi += (nij / total) * np.log(total * nij / (rows[i] * cols[j]))
    return float(max(mi, 0.0))


def nmi(
    labels_a: np.ndarray,
    labels_b: np.ndarray,
    *,
    noise: str = "cluster",
    normalization: str = "geometric",
) -> float:
    """Normalized mutual information in [0, 1].

    Parameters
    ----------
    labels_a, labels_b:
        Cluster labels; negatives are noise, handled per ``noise``
        (see :func:`repro.metrics.contingency.prepare_labels`).
    normalization:
        ``"geometric"`` (the paper's), ``"arithmetic"``, or ``"max"``.

    Two identical labelings score 1.0; independent ones score ≈ 0.
    When both labelings are a single cluster, the score is defined as 1.0
    if they are identical and 0.0 otherwise.
    """
    matrix, rows, cols = contingency_table(labels_a, labels_b, noise=noise)
    h_a, h_b = entropy(rows), entropy(cols)
    if h_a == 0.0 and h_b == 0.0:
        # Both trivial partitions: identical by construction.
        return 1.0
    mi = mutual_information(labels_a, labels_b, noise=noise)
    if normalization == "geometric":
        denom = float(np.sqrt(h_a * h_b))
    elif normalization == "arithmetic":
        denom = (h_a + h_b) / 2.0
    elif normalization == "max":
        denom = max(h_a, h_b)
    else:
        raise ReproError(f"unknown normalization {normalization!r}")
    if denom == 0.0:
        return 0.0
    return float(min(mi / denom, 1.0))


def ari(
    labels_a: np.ndarray,
    labels_b: np.ndarray,
    *,
    noise: str = "cluster",
) -> float:
    """Adjusted Rand Index in [-1, 1] (1.0 = identical partitions)."""
    matrix, rows, cols = contingency_table(labels_a, labels_b, noise=noise)
    n = matrix.sum()
    if n < 2:
        return 1.0

    def comb2(x: np.ndarray) -> float:
        x = np.asarray(x, dtype=np.float64)
        return float((x * (x - 1) / 2.0).sum())

    index = comb2(matrix.ravel())
    sum_a = comb2(rows)
    sum_b = comb2(cols)
    total_pairs = float(n) * (float(n) - 1) / 2.0
    expected = sum_a * sum_b / total_pairs
    max_index = (sum_a + sum_b) / 2.0
    if max_index == expected:
        return 1.0
    return float((index - expected) / (max_index - expected))
