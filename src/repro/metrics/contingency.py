"""Contingency tables between two label assignments.

The NMI and ARI implementations are built on one shared contingency
computation.  Labels may contain negatives (hubs/outliers/unassigned);
the caller chooses whether those pool into one "noise cluster" (how the
paper's Figure 5 treats them: "they could be regarded as members of a
special cluster") or are dropped from the comparison.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.errors import ReproError

__all__ = ["contingency_table", "prepare_labels"]


def prepare_labels(
    labels: np.ndarray,
    *,
    noise: str = "cluster",
) -> np.ndarray:
    """Normalize a label array for comparison.

    Parameters
    ----------
    labels:
        Cluster ids ≥ 0; any negative value is noise.
    noise:
        ``"cluster"`` pools all negatives into one extra cluster,
        ``"singletons"`` gives each noise vertex its own cluster,
        ``"drop"`` marks them for exclusion (-1 in the output).
    """
    labels = np.asarray(labels, dtype=np.int64)
    out = labels.copy()
    mask = labels < 0
    if noise == "cluster":
        out[mask] = labels.max(initial=-1) + 1
    elif noise == "singletons":
        base = labels.max(initial=-1) + 1
        out[mask] = base + np.arange(int(mask.sum()))
    elif noise == "drop":
        out[mask] = -1
    else:
        raise ReproError(f"unknown noise mode {noise!r}")
    return out


def contingency_table(
    labels_a: np.ndarray,
    labels_b: np.ndarray,
    *,
    noise: str = "cluster",
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Joint count matrix of two labelings.

    Returns ``(matrix, row_sums, col_sums)`` where ``matrix[i, j]`` counts
    vertices in cluster ``i`` of A and cluster ``j`` of B.  Cluster ids
    are densified; vertices dropped by the noise policy are excluded from
    all three outputs.
    """
    a = prepare_labels(np.asarray(labels_a), noise=noise)
    b = prepare_labels(np.asarray(labels_b), noise=noise)
    if a.shape != b.shape:
        raise ReproError("label arrays must have equal length")
    keep = (a >= 0) & (b >= 0)
    a, b = a[keep], b[keep]
    if a.shape[0] == 0:
        return (
            np.zeros((0, 0), dtype=np.int64),
            np.zeros(0, dtype=np.int64),
            np.zeros(0, dtype=np.int64),
        )
    _, a_dense = np.unique(a, return_inverse=True)
    _, b_dense = np.unique(b, return_inverse=True)
    rows = int(a_dense.max()) + 1
    cols = int(b_dense.max()) + 1
    matrix = np.zeros((rows, cols), dtype=np.int64)
    np.add.at(matrix, (a_dense, b_dense), 1)
    return matrix, matrix.sum(axis=1), matrix.sum(axis=0)
