"""Exactness checking between SCAN-family clusterings.

Lemma 4 of the paper claims anySCAN's final result is identical to
SCAN's, with the caveat that "a shared-border vertex may be assigned to
different clusters according to the examining order of vertices".  The
canonical equivalence is therefore:

1. the *member sets* (vertices belonging to any cluster) are equal;
2. the partitions restricted to *true cores* (per the similarity oracle)
   are identical;
3. every non-core member is attached to a cluster that contains a true
   core it is ε-similar and adjacent to (a *valid* border assignment).

:func:`equivalent_clusterings` checks all three; the test suite applies
it to every algorithm pair on randomized graphs.
"""

from __future__ import annotations

from typing import Dict, List, Set

import numpy as np

from repro.graph.csr import Graph
from repro.result import Clustering
from repro.similarity.weighted import SimilarityOracle

__all__ = ["true_core_mask", "equivalent_clusterings", "explain_difference"]


def true_core_mask(
    graph: Graph,
    oracle: SimilarityOracle,
    mu: int,
    epsilon: float,
) -> np.ndarray:
    """Ground-truth core indicator from exhaustive σ evaluation.

    Uses unrecorded evaluations so the oracle's counters stay meaningful
    for the algorithm under test.
    """
    n = graph.num_vertices
    mask = np.zeros(n, dtype=bool)
    self_count = 1 if oracle.config.count_self else 0
    for v in range(n):
        count = self_count
        for q in graph.neighbors(v):
            if oracle.sigma_unrecorded(v, int(q)) >= epsilon:
                count += 1
            if count >= mu:
                break
        mask[v] = count >= mu
    return mask


def _core_partition(
    labels: np.ndarray, core_mask: np.ndarray
) -> Set[frozenset]:
    parts: Dict[int, set] = {}
    for v in np.flatnonzero(core_mask):
        lbl = int(labels[int(v)])
        if lbl >= 0:
            parts.setdefault(lbl, set()).add(int(v))
    return {frozenset(s) for s in parts.values()}


def _invalid_borders(
    graph: Graph,
    oracle: SimilarityOracle,
    labels: np.ndarray,
    core_mask: np.ndarray,
    epsilon: float,
) -> List[int]:
    bad: List[int] = []
    for v in np.flatnonzero(labels >= 0):
        v = int(v)
        if core_mask[v]:
            continue
        cluster = int(labels[v])
        attached = False
        for q in graph.neighbors(v):
            q = int(q)
            if (
                core_mask[q]
                and int(labels[q]) == cluster
                and oracle.sigma_unrecorded(v, q) >= epsilon
            ):
                attached = True
                break
        if not attached:
            bad.append(v)
    return bad


def equivalent_clusterings(
    graph: Graph,
    oracle: SimilarityOracle,
    result_a: Clustering,
    result_b: Clustering,
    mu: int,
    epsilon: float,
) -> bool:
    """Whether two results are SCAN-equivalent (see module docstring)."""
    return not explain_difference(
        graph, oracle, result_a, result_b, mu, epsilon
    )


def explain_difference(
    graph: Graph,
    oracle: SimilarityOracle,
    result_a: Clustering,
    result_b: Clustering,
    mu: int,
    epsilon: float,
) -> List[str]:
    """Human-readable list of equivalence violations (empty = equivalent)."""
    problems: List[str] = []
    cores = true_core_mask(graph, oracle, mu, epsilon)

    members_a = set(int(v) for v in result_a.clustered_vertices)
    members_b = set(int(v) for v in result_b.clustered_vertices)
    if members_a != members_b:
        only_a = sorted(members_a - members_b)[:5]
        only_b = sorted(members_b - members_a)[:5]
        problems.append(
            f"member sets differ (A-only sample {only_a}, B-only {only_b})"
        )

    part_a = _core_partition(result_a.labels, cores)
    part_b = _core_partition(result_b.labels, cores)
    if part_a != part_b:
        problems.append(
            f"core partitions differ ({len(part_a)} vs {len(part_b)} parts)"
        )

    for name, result in (("A", result_a), ("B", result_b)):
        bad = _invalid_borders(graph, oracle, result.labels, cores, epsilon)
        if bad:
            problems.append(
                f"result {name} has invalid border attachments: {bad[:5]}"
            )
    return problems
