"""Mutable accumulator that assembles :class:`~repro.graph.csr.Graph`.

Generators and loaders collect edges in whatever order they are produced;
:meth:`GraphBuilder.build` sorts them into CSR form.  Duplicate handling is
explicit because real edge-list files routinely repeat edges: ``"error"``
refuses, ``"ignore"`` keeps the first weight, ``"sum"``/``"max"`` combine.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.errors import GraphError
from repro.graph.csr import Graph

__all__ = ["GraphBuilder"]

_DEDUP_MODES = ("error", "ignore", "sum", "max")


class GraphBuilder:
    """Accumulates undirected weighted edges and emits a CSR graph."""

    def __init__(self, num_vertices: int) -> None:
        if num_vertices < 0:
            raise GraphError("num_vertices must be non-negative")
        self._num_vertices = int(num_vertices)
        self._us: List[int] = []
        self._vs: List[int] = []
        self._ws: List[float] = []

    @property
    def num_vertices(self) -> int:
        """Number of vertices the built graph will have."""
        return self._num_vertices

    @property
    def num_pending_edges(self) -> int:
        """Edges added so far (before dedup)."""
        return len(self._us)

    def ensure_vertex(self, p: int) -> None:
        """Grow the vertex range so that ``p`` is a valid id."""
        if p < 0:
            raise GraphError("vertex ids must be non-negative")
        if p >= self._num_vertices:
            self._num_vertices = p + 1

    def add_edge(self, u: int, v: int, weight: float = 1.0) -> None:
        """Record the undirected edge ``(u, v)`` with ``weight``.

        Self-loops are rejected immediately; duplicates are resolved at
        :meth:`build` time.
        """
        if u == v:
            raise GraphError(f"self-loop on vertex {u} is not allowed")
        if u < 0 or v < 0:
            raise GraphError("vertex ids must be non-negative")
        if weight < 0:
            raise GraphError("edge weights must be non-negative")
        self.ensure_vertex(u)
        self.ensure_vertex(v)
        if u > v:
            u, v = v, u
        self._us.append(u)
        self._vs.append(v)
        self._ws.append(float(weight))

    def has_pending_edge(self, u: int, v: int) -> bool:
        """Linear-scan check used by small generators; O(edges added)."""
        if u > v:
            u, v = v, u
        return any(a == u and b == v for a, b in zip(self._us, self._vs))

    def build(self, dedup: str = "error") -> Graph:
        """Assemble the CSR graph.

        Parameters
        ----------
        dedup:
            ``"error"`` raises on duplicate edges, ``"ignore"`` keeps the
            first occurrence, ``"sum"`` adds duplicate weights, ``"max"``
            keeps the largest weight.
        """
        if dedup not in _DEDUP_MODES:
            raise GraphError(f"unknown dedup mode {dedup!r}; use one of {_DEDUP_MODES}")
        n = self._num_vertices
        us = np.asarray(self._us, dtype=np.int64)
        vs = np.asarray(self._vs, dtype=np.int64)
        ws = np.asarray(self._ws, dtype=np.float64)

        if us.shape[0]:
            key = us * n + vs
            order = np.argsort(key, kind="stable")
            us, vs, ws, key = us[order], vs[order], ws[order], key[order]
            if us.shape[0] > 1:
                dup = key[1:] == key[:-1]
                if dup.any():
                    if dedup == "error":
                        i = int(np.flatnonzero(dup)[0])
                        raise GraphError(
                            f"duplicate edge ({us[i]}, {vs[i]}); "
                            "pass dedup='ignore'/'sum'/'max' to combine"
                        )
                    us, vs, ws = _combine_duplicates(us, vs, ws, key, dedup)

        # Mirror each undirected edge into both directions and sort rows.
        src = np.concatenate([us, vs])
        dst = np.concatenate([vs, us])
        wts = np.concatenate([ws, ws])
        order = np.lexsort((dst, src))
        src, dst, wts = src[order], dst[order], wts[order]
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.add.at(indptr, src + 1, 1)
        np.cumsum(indptr, out=indptr)
        return Graph(indptr, dst, wts, validate=False)


def _combine_duplicates(
    us: np.ndarray,
    vs: np.ndarray,
    ws: np.ndarray,
    key: np.ndarray,
    mode: str,
) -> tuple:
    """Collapse sorted duplicate edges according to ``mode``."""
    uniq_key, first = np.unique(key, return_index=True)
    out_us = us[first]
    out_vs = vs[first]
    if mode == "ignore":
        out_ws = ws[first]
    else:
        # Segment-reduce the weights over runs of equal keys.
        boundaries = np.searchsorted(key, uniq_key)
        if mode == "sum":
            totals = np.add.reduceat(ws, boundaries)
            out_ws = totals
        else:  # max
            out_ws = np.maximum.reduceat(ws, boundaries)
    return out_us, out_vs, out_ws
