"""Graph substrate: CSR storage, builders, IO, statistics, and generators."""

from repro.graph.builder import GraphBuilder
from repro.graph.csr import Graph
from repro.graph.io import load_edge_list, load_metis, save_edge_list, save_metis
from repro.graph.traversal import (
    bfs_distances,
    bfs_order,
    connected_components,
    k_hop_neighbors,
    largest_component,
)
from repro.graph.stats import (
    GraphSummary,
    average_clustering,
    average_degree,
    degree_histogram,
    local_clustering,
    summarize,
    triangle_count,
)

__all__ = [
    "Graph",
    "GraphBuilder",
    "load_edge_list",
    "save_edge_list",
    "load_metis",
    "save_metis",
    "GraphSummary",
    "average_degree",
    "average_clustering",
    "local_clustering",
    "triangle_count",
    "degree_histogram",
    "summarize",
    "bfs_order",
    "bfs_distances",
    "connected_components",
    "largest_component",
    "k_hop_neighbors",
]
