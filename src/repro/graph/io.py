"""Graph loading and saving.

Two on-disk formats are supported:

* **Edge lists** — the format SNAP distributes its datasets in: one edge
  per line, whitespace-separated, optional third column with the weight,
  ``#``-prefixed comment lines.  Vertex labels may be arbitrary strings and
  are densely relabeled; the mapping is returned so results can be reported
  against the original ids.
* **METIS adjacency** — header line ``n m [fmt]`` followed by one line per
  vertex listing its (1-based) neighbors, optionally interleaved with edge
  weights when ``fmt`` has the weights bit set.
"""

from __future__ import annotations

import gzip
from pathlib import Path
from typing import Dict, List, TextIO, Tuple, Union

from repro.errors import GraphFormatError
from repro.graph.builder import GraphBuilder
from repro.graph.csr import Graph

__all__ = [
    "load_edge_list",
    "save_edge_list",
    "load_metis",
    "save_metis",
]

PathLike = Union[str, Path]


def _open_text(path: PathLike, mode: str) -> TextIO:
    path = Path(path)
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t")  # type: ignore[return-value]
    return open(path, mode)


def load_edge_list(
    path: PathLike,
    *,
    weighted: bool = False,
    dedup: str = "ignore",
    comment: str = "#",
) -> Tuple[Graph, Dict[str, int]]:
    """Load a SNAP-style edge list.

    Parameters
    ----------
    path:
        File to read; ``.gz`` files are decompressed transparently.
    weighted:
        When true a third column per line is required and used as weight.
    dedup:
        Duplicate-edge policy forwarded to
        :meth:`repro.graph.builder.GraphBuilder.build`; SNAP files repeat
        edges in both directions, so the default is ``"ignore"``.
    comment:
        Lines starting with this prefix are skipped.

    Returns
    -------
    (graph, label_map):
        The graph and the mapping from original vertex label to dense id.
    """
    builder = GraphBuilder(0)
    labels: Dict[str, int] = {}

    def vertex(token: str) -> int:
        vid = labels.get(token)
        if vid is None:
            vid = len(labels)
            labels[token] = vid
        return vid

    with _open_text(path, "r") as handle:
        for lineno, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith(comment):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise GraphFormatError(
                    f"{path}:{lineno}: expected at least two columns"
                )
            u, v = vertex(parts[0]), vertex(parts[1])
            if u == v:
                continue  # SNAP files occasionally carry self-loops; drop.
            if weighted:
                if len(parts) < 3:
                    raise GraphFormatError(
                        f"{path}:{lineno}: weighted load requires a third column"
                    )
                try:
                    weight = float(parts[2])
                except ValueError as exc:
                    raise GraphFormatError(
                        f"{path}:{lineno}: bad weight {parts[2]!r}"
                    ) from exc
            else:
                weight = 1.0
            builder.add_edge(u, v, weight)
    return builder.build(dedup=dedup), labels


def save_edge_list(graph: Graph, path: PathLike, *, weighted: bool = False) -> None:
    """Write each undirected edge once as ``u v [w]``."""
    with _open_text(path, "w") as handle:
        handle.write(f"# repro edge list: {graph.num_vertices} vertices, "
                     f"{graph.num_edges} edges\n")
        for u, v, w in graph.edges():
            if weighted:
                handle.write(f"{u} {v} {w:.10g}\n")
            else:
                handle.write(f"{u} {v}\n")


def load_metis(path: PathLike) -> Graph:
    """Load a METIS adjacency file (1-based ids, optional edge weights)."""
    with _open_text(path, "r") as handle:
        lines = [ln.strip() for ln in handle]
    body = [ln for ln in lines if ln and not ln.startswith("%")]
    if not body:
        raise GraphFormatError(f"{path}: empty METIS file")
    header = body[0].split()
    if len(header) < 2:
        raise GraphFormatError(f"{path}: METIS header needs 'n m [fmt]'")
    try:
        n, m = int(header[0]), int(header[1])
    except ValueError as exc:
        raise GraphFormatError(f"{path}: non-integer METIS header") from exc
    fmt = header[2] if len(header) > 2 else "0"
    has_edge_weights = fmt.rjust(3, "0")[-1] == "1"
    if len(body) - 1 != n:
        raise GraphFormatError(
            f"{path}: header says {n} vertices but file has {len(body) - 1} rows"
        )
    builder = GraphBuilder(n)
    for u, line in enumerate(body[1:]):
        tokens = line.split()
        step = 2 if has_edge_weights else 1
        if len(tokens) % step != 0:
            raise GraphFormatError(
                f"{path}: vertex {u + 1} row has dangling weight token"
            )
        for k in range(0, len(tokens), step):
            try:
                v = int(tokens[k]) - 1
            except ValueError as exc:
                raise GraphFormatError(
                    f"{path}: bad neighbor id {tokens[k]!r}"
                ) from exc
            if not 0 <= v < n:
                raise GraphFormatError(
                    f"{path}: neighbor {v + 1} out of range for n={n}"
                )
            weight = 1.0
            if has_edge_weights:
                try:
                    weight = float(tokens[k + 1])
                except ValueError as exc:
                    raise GraphFormatError(
                        f"{path}: bad edge weight {tokens[k + 1]!r}"
                    ) from exc
            if u < v:  # each undirected edge appears in both rows
                builder.add_edge(u, v, weight)
    graph = builder.build(dedup="ignore")
    if graph.num_edges != m:
        raise GraphFormatError(
            f"{path}: header promises {m} edges, found {graph.num_edges}"
        )
    return graph


def save_metis(graph: Graph, path: PathLike, *, weighted: bool = False) -> None:
    """Write the graph as a METIS adjacency file."""
    fmt = "001" if weighted else "000"
    rows: List[str] = []
    for u in range(graph.num_vertices):
        parts: List[str] = []
        for v, w in zip(graph.neighbors(u), graph.neighbor_weights(u)):
            parts.append(str(int(v) + 1))
            if weighted:
                parts.append(f"{float(w):.10g}")
        rows.append(" ".join(parts))
    with _open_text(path, "w") as handle:
        handle.write(f"{graph.num_vertices} {graph.num_edges} {fmt}\n")
        handle.write("\n".join(rows))
        handle.write("\n")
